"""Shared fixtures for the figure-reproduction benchmarks.

The primary experiment (a blinded RCT over five schemes) backs Figures 1, 4,
8, 9, 10 and A1, so it is run once per pytest session and cached on disk;
likewise the trained models (Fugu's in-situ TTP, the emulation-trained TTP,
and the Pensieve policy).

Scale knobs (environment variables):

* ``REPRO_BENCH_SESSIONS`` — randomized sessions in the primary trial
  (default 1200; the paper has 337k, so absolute uncertainties here are
  wider, as the statistical benches themselves demonstrate).
* ``REPRO_BENCH_FRESH=1`` — ignore the on-disk cache.
"""

import os
import pickle
from pathlib import Path

import pytest

CACHE_DIR = Path(__file__).parent / ".cache"
BENCH_SESSIONS = int(os.environ.get("REPRO_BENCH_SESSIONS", "1200"))
FRESH = os.environ.get("REPRO_BENCH_FRESH", "0") == "1"


def _cached(name, builder):
    """Build-or-load a pickled artifact keyed by name and scale."""
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{name}-s{BENCH_SESSIONS}.pkl"
    if path.exists() and not FRESH:
        with open(path, "rb") as f:
            return pickle.load(f)
    artifact = builder()
    with open(path, "wb") as f:
        pickle.dump(artifact, f)
    return artifact


@pytest.fixture(scope="session")
def fugu_predictor():
    """Fugu's TTP, trained in situ (bootstrap on BBA/MPC, then on-policy)."""

    def build():
        from repro.experiment import InSituTrainingConfig, train_fugu_in_situ

        return train_fugu_in_situ(
            InSituTrainingConfig(
                bootstrap_streams=120,
                iteration_streams=120,
                iterations=2,
                epochs=12,
                seed=3,
            )
        )

    return _cached("fugu-ttp", build)


@pytest.fixture(scope="session")
def pensieve_model():
    """Pensieve policy trained with RL in the chunk simulator."""

    def build():
        from repro.experiment import train_pensieve_in_simulation

        return train_pensieve_in_simulation(episodes=800, seed=11)

    return _cached("pensieve", build)


@pytest.fixture(scope="session")
def emulation_environment():
    from repro.emulation import EmulationEnvironment

    return EmulationEnvironment(n_traces=25, seed=9)


@pytest.fixture(scope="session")
def emulation_fugu_predictor(emulation_environment):
    """Emulation-trained Fugu's TTP (Fig. 11)."""

    def build():
        from repro.emulation import train_fugu_in_emulation

        return train_fugu_in_emulation(emulation_environment, epochs=12, seed=5)

    return _cached("fugu-emulation-ttp", build)


@pytest.fixture(scope="session")
def primary_trial(fugu_predictor, pensieve_model):
    """The primary randomized experiment (Fig. 1/4/8/9/10/A1)."""

    def build():
        from repro.experiment import (
            RandomizedTrial,
            TrialConfig,
            primary_experiment_schemes,
        )

        specs = primary_experiment_schemes(fugu_predictor, pensieve_model)
        config = TrialConfig(n_sessions=BENCH_SESSIONS, seed=42)
        return RandomizedTrial(specs, config).run()

    return _cached("primary-trial", build)


@pytest.fixture(scope="session")
def scheme_summaries(primary_trial):
    """Fig. 1 rows for every scheme in the primary trial."""
    from repro.analysis import summarize_scheme

    summaries = {}
    for name in primary_trial.scheme_names:
        streams = primary_trial.streams_for(name)
        if streams:
            summaries[name] = summarize_scheme(
                name,
                streams,
                primary_trial.session_durations_for(name),
                n_resamples=500,
                seed=1,
            )
    return summaries

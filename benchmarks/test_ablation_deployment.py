"""§4.6 deployment ablations: point-estimate Fugu, linear Fugu, staleness.

* "we deployed a point-estimate version of Fugu on Puffer ... It performed
  much worse than normal Fugu: the rebuffering ratio was 3–9× worse,
  without significant improvement in SSIM."
* "A linear-regression model ... performs much worse on prediction
  accuracy ... its rebuffering ratio was 2–5× worse."
* Daily retraining vs out-of-date TTPs: "we were not able to detect a
  significant difference in performance between any of these ABR schemes"
  (the deployment environment is close to stationary over months).
"""

import numpy as np
import pytest

from repro.core.fugu import Fugu
from repro.core.train import TtpTrainer, build_ttp_datasets
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.experiment import deploy_and_collect

N_EVAL_STREAMS = 220
EVAL_SEED = 4242


def deploy(abr, seed=EVAL_SEED):
    streams = deploy_and_collect(
        [abr], N_EVAL_STREAMS, seed=seed, watch_time_s=300.0
    )
    stall = sum(s.stall_time for s in streams) / sum(
        s.watch_time for s in streams
    )
    return {
        "stall_pct": stall * 100.0,
        "ssim_db": float(np.mean([s.mean_ssim_db for s in streams])),
    }


@pytest.fixture(scope="module")
def ablated_deployments(fugu_predictor):
    """Deploy full Fugu plus ablated variants trained on the same data."""
    from repro.abr import BBA, MpcHm

    train_streams = deploy_and_collect(
        [BBA(), MpcHm()], 150, seed=31, watch_time_s=240.0
    )

    def trained_variant(**config_kwargs):
        predictor = TransmissionTimePredictor(
            TtpConfig(**config_kwargs), seed=13
        )
        predictor.calibrate_tail(train_streams)
        TtpTrainer(predictor, epochs=12, seed=13).train(
            build_ttp_datasets(train_streams, predictor)
        )
        return predictor

    results = {"fugu": deploy(Fugu(fugu_predictor))}
    point = trained_variant(point_estimate=True)
    results["fugu_point_estimate"] = deploy(
        Fugu(point, name="fugu_point_estimate")
    )
    linear = trained_variant(hidden=())
    results["fugu_linear"] = deploy(Fugu(linear, name="fugu_linear"))
    return results


def test_point_estimate_and_linear_deployments(benchmark, ablated_deployments):
    results = benchmark(lambda: ablated_deployments)
    print("\n§4.6 — deployed ablations")
    for name, row in results.items():
        print(
            f"  {name:<22} stall={row['stall_pct']:.3f}% "
            f"ssim={row['ssim_db']:.2f} dB"
        )

    full = results["fugu"]
    point = results["fugu_point_estimate"]
    linear = results["fugu_linear"]

    # The point-estimate TTP rebuffers several times more than full Fugu
    # (paper: 3–9×) without a meaningful SSIM gain.
    assert point["stall_pct"] > 1.5 * full["stall_pct"], results
    assert point["ssim_db"] < full["ssim_db"] + 0.4, results

    # The linear TTP also rebuffers more (paper: 2–5×).
    assert linear["stall_pct"] > 1.3 * full["stall_pct"], results


def test_staleness_ablation(benchmark):
    """Out-of-date TTPs vs the continuously retrained one (§4.6).

    The paper ran a randomized trial of TTP snapshots from February through
    May against the daily-retrained model during August and "were not able
    to detect a significant difference": the deployment distribution is
    close to stationary over months. Here, a :class:`DailyRetrainer` runs
    for several simulated days; the day-2 snapshot ("February") and the
    final model ("live") are deployed on identical traffic.
    """
    from repro.abr import BBA, MpcHm
    from repro.core.train import DailyRetrainer

    def run():
        predictor = TransmissionTimePredictor(TtpConfig(), seed=17)
        retrainer = DailyRetrainer(predictor, epochs_per_day=5, seed=17)
        snapshot = None
        for day in range(5):
            day_streams = deploy_and_collect(
                [BBA(), MpcHm(), Fugu(predictor)],
                60,
                seed=600 + day,
                watch_time_s=240.0,
            )
            predictor.calibrate_tail(day_streams)
            retrainer.add_day(day_streams)
            retrainer.retrain()
            if day == 1:
                snapshot = retrainer.snapshot()  # the "out-of-date" TTP
        assert snapshot is not None
        stale_result = deploy(Fugu(snapshot, name="fugu"), seed=5555)
        live_result = deploy(Fugu(predictor), seed=5555)
        return stale_result, live_result

    stale, live = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n§4.6 — staleness: live stall={live['stall_pct']:.3f}% "
        f"vs stale stall={stale['stall_pct']:.3f}%; "
        f"live ssim={live['ssim_db']:.2f} vs stale {stale['ssim_db']:.2f}"
    )
    # No significant difference (paper: "daily retraining ... appears to be
    # overkill" in a stationary environment).
    assert stale["ssim_db"] == pytest.approx(live["ssim_db"], abs=0.5)
    assert abs(stale["stall_pct"] - live["stall_pct"]) < max(
        1.0 * live["stall_pct"], 0.25
    )

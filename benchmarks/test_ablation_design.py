"""Design-choice ablations beyond the paper's own (DESIGN.md commitments).

* **Planning horizon** — the paper plans over H = 5 chunks (§4.5). A
  greedy H = 1 controller with the same TTP loses smoothness (the variation
  term cannot see ahead) and/or stalls more.
* **On-policy iteration** — Fugu's telemetry loop retrains on data from its
  own deployment. A TTP trained only on the BBA/MPC bootstrap (off-policy)
  underperforms one that iterated on Fugu's own traffic.
* **Congestion control** — the primary experiment ran on BBR; part of the
  study's traffic used CUBIC (Fig. A1). The streaming stack supports both;
  the loss-based CUBIC shows higher RTT inflation under load.
"""

import numpy as np
import pytest

from repro.core.fugu import Fugu
from repro.experiment import (
    InSituTrainingConfig,
    deploy_and_collect,
    train_fugu_in_situ,
)

N_STREAMS = 150
SEED = 2024


def deploy(abr, seed=SEED, n=N_STREAMS):
    streams = deploy_and_collect([abr], n, seed=seed, watch_time_s=300.0)
    stall = sum(s.stall_time for s in streams) / sum(
        s.watch_time for s in streams
    )
    return {
        "stall_pct": stall * 100.0,
        "ssim_db": float(np.mean([s.mean_ssim_db for s in streams])),
        "var_db": float(np.mean([s.ssim_variation_db for s in streams])),
    }


def test_horizon_ablation(benchmark, fugu_predictor):
    def run():
        full = deploy(Fugu(fugu_predictor, horizon=5))
        greedy = deploy(Fugu(fugu_predictor, horizon=1, name="fugu"))
        return full, greedy

    full, greedy = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nHorizon ablation: H=5 stall={full['stall_pct']:.3f}% "
        f"var={full['var_db']:.3f} | H=1 stall={greedy['stall_pct']:.3f}% "
        f"var={greedy['var_db']:.3f}"
    )
    # The receding horizon must not hurt, and it buys smoothness and/or
    # stall robustness: the H=1 controller is worse on at least one axis
    # and not better on both.
    assert not (
        greedy["stall_pct"] < full["stall_pct"]
        and greedy["var_db"] < full["var_db"]
    ), (full, greedy)
    assert (
        greedy["var_db"] > full["var_db"] * 0.98
        or greedy["stall_pct"] > full["stall_pct"] * 0.98
    )


def test_on_policy_iteration_ablation(benchmark, fugu_predictor):
    def run():
        bootstrap_only = train_fugu_in_situ(
            InSituTrainingConfig(
                bootstrap_streams=120, iteration_streams=0, iterations=0,
                epochs=12, seed=3,
            )
        )
        off_policy = deploy(Fugu(bootstrap_only, name="fugu"))
        on_policy = deploy(Fugu(fugu_predictor))
        return off_policy, on_policy

    off_policy, on_policy = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nIn-situ iteration: bootstrap-only stall="
        f"{off_policy['stall_pct']:.3f}% vs iterated stall="
        f"{on_policy['stall_pct']:.3f}%"
    )
    # Iterating on Fugu's own deployment traffic does not hurt stalls, and
    # typically helps (the predictor sees the sizes Fugu actually sends).
    assert on_policy["stall_pct"] <= off_policy["stall_pct"] * 1.25, (
        off_policy, on_policy,
    )
    assert on_policy["ssim_db"] >= off_policy["ssim_db"] - 0.3


def test_congestion_control_comparison(benchmark):
    """BBR vs CUBIC service daemons (Fig. A1's CUBIC arm)."""
    from repro.abr import BBA
    from repro.net.path import PopulationModel
    from repro.experiment import TrialConfig

    def run():
        results = {}
        for cc_fraction, label in ((0.0, "bbr"), (1.0, "cubic")):
            config = TrialConfig(
                n_sessions=1,
                population=PopulationModel(cubic_fraction=cc_fraction),
            )
            streams = deploy_and_collect(
                [BBA()], 100, seed=77, config=config, watch_time_s=240.0
            )
            stall = sum(s.stall_time for s in streams) / sum(
                s.watch_time for s in streams
            )
            results[label] = {
                "stall_pct": stall * 100.0,
                "ssim_db": float(
                    np.mean([s.mean_ssim_db for s in streams])
                ),
                "rtt_ms": float(
                    np.mean(
                        [
                            r.info_at_send.rtt
                            for s in streams
                            for r in s.records[5:]
                        ]
                    )
                    * 1000.0
                ),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nCC comparison: BBR stall={results['bbr']['stall_pct']:.3f}% "
        f"rtt={results['bbr']['rtt_ms']:.0f}ms | CUBIC stall="
        f"{results['cubic']['stall_pct']:.3f}% "
        f"rtt={results['cubic']['rtt_ms']:.0f}ms"
    )
    # Both stacks stream successfully with sane quality.
    for row in results.values():
        assert row["ssim_db"] > 14.0
        assert row["stall_pct"] < 5.0
    # Loss-based CUBIC fills bottleneck queues: higher mean RTT under load.
    assert results["cubic"]["rtt_ms"] >= results["bbr"]["rtt_ms"]

"""Edge contention tier (`repro.edge`): cache curve and ranking deltas.

Two questions the private-link harness cannot ask:

* **How much QoE does the edge cache buy?**  Sweeping the per-cell LRU
  capacity from 0 (cache disabled, every chunk traverses the shared
  origin path) upward traces a cache-hit-ratio -> QoE curve: hits serve
  in one RTT and leave the bottleneck to the misses, so hit ratio climbs
  with capacity and quality follows.
* **Does correlated contention reorder the schemes?**  The paper's RCT
  compares schemes on *independent* sessions; a real deployment's
  sessions share access networks and CDN edges.  The paired comparison
  below runs the identical workload, trial seed and scheme set through
  the private-link executor and through shared cells, and reports the
  per-scheme deltas plus any rank inversions.

Scale knobs (environment variables):

* ``REPRO_EDGE_BENCH_RATE`` — mean sessions/hour (default 60).
* ``REPRO_EDGE_BENCH_DAYS`` — simulated days (default 0.05).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_edge_contention.py -s``.
"""

import os
from dataclasses import replace

from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm
from repro.edge import EdgeConfig
from repro.experiment.presets import smoke_trial_config
from repro.experiment.schemes import SchemeSpec
from repro.fleet import FleetConfig, WorkloadConfig, run_fleet

RATE = float(os.environ.get("REPRO_EDGE_BENCH_RATE", "60"))
DAYS = float(os.environ.get("REPRO_EDGE_BENCH_DAYS", "0.05"))

CACHE_SWEEP = (0, 8, 64, 512)


def _specs():
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


def _workload():
    return WorkloadConfig(
        days=DAYS, sessions_per_hour=RATE, diurnal_amplitude=0.4,
        peak_hour=20.0, seed=4,
    )


def _fleet_config(edge):
    return FleetConfig(
        workload=_workload(), trial=smoke_trial_config(seed=21),
        chunk_sessions=8, edge=edge,
    )


def _qoe(result):
    """Per-scheme (mean SSIM dB, stall %) from a fleet result."""
    return {
        s.scheme: (s.mean_ssim_db.point, s.stall_percent)
        for s in result.summaries()
    }


def _hit_ratio(result):
    stats = result.edge_stats
    lookups = stats["cache_hits"] + stats["cache_misses"]
    return stats["cache_hits"] / lookups if lookups else 0.0


def test_cache_hit_ratio_qoe_curve():
    """Sweep per-cell cache capacity; hit ratio must climb monotonically
    and the fleet-mean SSIM at the largest cache must beat cache-off."""
    edge = EdgeConfig(mean_cell_sessions=4.0, seed=11)
    points = []
    for chunks in CACHE_SWEEP:
        result = run_fleet(
            _specs(), _fleet_config(replace(edge, cache_chunks=chunks)),
            workers=2,
        )
        qoe = _qoe(result)
        mean_ssim = sum(v[0] for v in qoe.values()) / len(qoe)
        points.append((chunks, _hit_ratio(result), mean_ssim, qoe))

    print("\nEdge cache: hit ratio -> QoE curve")
    print(f"{'Cache chunks':>13}{'Hit ratio':>11}{'Mean SSIM dB':>14}")
    for chunks, ratio, mean_ssim, _ in points:
        print(f"{chunks:>13}{ratio:>11.3f}{mean_ssim:>14.2f}")

    ratios = [ratio for _, ratio, _, _ in points]
    # Capacity 0 disables the cache entirely.
    assert ratios[0] == 0.0, ratios
    # More capacity never evicts anything sooner: the hit ratio is
    # monotone non-decreasing in LRU size, and the sweep must show the
    # cache actually engaging.
    assert all(a <= b for a, b in zip(ratios, ratios[1:])), ratios
    assert ratios[-1] > 0.05, ratios
    # Hits skip the shared bottleneck, so quality improves with them.
    assert points[-1][2] > points[0][2], points


def test_private_vs_shared_ranking_deltas():
    """The Fig.-5-style paired comparison: same workload, same trial
    seed, same schemes — private links vs shared cells — reported as
    per-scheme deltas and a ranking diff."""
    private = run_fleet(_specs(), _fleet_config(None), workers=2)
    shared = run_fleet(
        _specs(),
        _fleet_config(EdgeConfig(mean_cell_sessions=4.0, seed=11)),
        workers=2,
    )

    p, s = _qoe(private), _qoe(shared)
    assert set(p) == set(s)

    print("\nPrivate links vs shared edge cells (paired)")
    print(
        f"{'Scheme':<12}{'SSIM priv':>10}{'SSIM shr':>10}{'dSSIM':>8}"
        f"{'Stall% priv':>12}{'Stall% shr':>11}{'dStall':>8}"
    )
    for name in sorted(p):
        print(
            f"{name:<12}{p[name][0]:>10.2f}{s[name][0]:>10.2f}"
            f"{s[name][0] - p[name][0]:>8.2f}"
            f"{p[name][1]:>12.3f}{s[name][1]:>11.3f}"
            f"{s[name][1] - p[name][1]:>8.3f}"
        )

    rank_private = sorted(p, key=lambda n: p[n][0], reverse=True)
    rank_shared = sorted(s, key=lambda n: s[n][0], reverse=True)
    inversions = [
        (a, b) for a, b in zip(rank_private, rank_shared) if a != b
    ]
    print(
        f"SSIM ranking private: {' > '.join(rank_private)}   "
        f"shared: {' > '.join(rank_shared)}   "
        f"({'stable' if not inversions else f'{len(inversions)} moved'})"
    )

    # The executors genuinely differ: at least one scheme's QoE moves.
    assert any(p[name] != s[name] for name in p), (p, s)
    # Sanity on the shared tier itself.
    stats = shared.edge_stats
    assert stats["shared_cells"] > 0
    assert stats["cache_hits"] > 0
    assert private.edge_stats is None

"""Extension: chunk replacement (§6.2 future work).

The paper notes Fugu does not "replace already-downloaded chunks in the
buffer with higher quality versions [35]". This bench quantifies what that
capability buys in our environment: idle buffer-full time is spent
upgrading queued low-quality chunks, raising played SSIM — at the cost of
re-downloaded (wasted) bytes — without adding stalls.
"""

import numpy as np
import pytest

from repro.abr import BBA
from repro.experiment.harness import TrialConfig
from repro.media.encoder import VbrEncoder
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net.path import PathSampler
from repro.streaming import (
    simulate_stream,
    simulate_stream_with_replacement,
)

N_STREAMS = 80


@pytest.fixture(scope="module")
def replacement_comparison():
    rows = {"plain": [], "replacement": []}
    for i in range(N_STREAMS):
        seed = 3000 + i
        path = PathSampler(seed=seed).next_path()
        for mode in ("plain", "replacement"):
            rng = np.random.default_rng(seed)
            source = VideoSource(DEFAULT_CHANNELS[i % 6], rng=rng)
            encoder = VbrEncoder(rng=rng)
            conn = path.connect(seed=seed)
            if mode == "plain":
                result = simulate_stream(
                    encoder.stream(source), BBA(), conn, watch_time_s=240.0
                )
            else:
                result = simulate_stream_with_replacement(
                    encoder.stream(source), BBA(), conn, watch_time_s=240.0
                )
            rows[mode].append(result)
    return rows


def test_extension_replacement(benchmark, replacement_comparison):
    rows = benchmark(lambda: replacement_comparison)
    plain, upgraded = rows["plain"], rows["replacement"]

    def agg(streams):
        stall = sum(s.stall_time for s in streams) / sum(
            s.watch_time for s in streams
        )
        return (
            float(np.mean([s.mean_ssim_db for s in streams])),
            stall * 100.0,
        )

    plain_ssim, plain_stall = agg(plain)
    up_ssim, up_stall = agg(upgraded)
    total_replacements = sum(s.replacements for s in upgraded)
    wasted_mb = sum(s.wasted_bytes for s in upgraded) / 1e6

    print(
        f"\nChunk replacement extension over BBA ({N_STREAMS} paired streams)"
    )
    print(f"  plain       : ssim={plain_ssim:5.2f} dB stall={plain_stall:.3f}%")
    print(f"  replacement : ssim={up_ssim:5.2f} dB stall={up_stall:.3f}%")
    print(
        f"  {total_replacements} upgrades, {wasted_mb:.1f} MB re-downloaded"
    )

    # The upgrade path actually fires and buys quality.
    assert total_replacements > 0
    assert up_ssim > plain_ssim + 0.05
    # Safety: replacement does not meaningfully worsen stalls.
    assert up_stall <= plain_stall * 1.5 + 0.05

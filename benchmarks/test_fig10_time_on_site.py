"""Figure 10: time on site — CCDF of session durations per scheme.

"Users randomly assigned to Fugu chose to remain on the Puffer video player
about 10%–20% longer, on average, than those assigned to other schemes...
This average difference was driven solely by the upper 5% tail (sessions
lasting more than 2.5 hours)."

Two parts:

1. the RCT's duration CCDF (the figure itself — wide error bars at bench
   scale, reported with bootstrap CIs like the paper);
2. a controlled common-random-numbers experiment isolating the mechanism:
   identical viewers with a QoE-sensitive tail watch each scheme; the
   QoE-sensitive continuation produces longer sessions under better QoE.
"""

import numpy as np
import pytest

from repro.abr import BBA, MpcHm, Pensieve, RobustMpcHm
from repro.analysis import bootstrap_mean_ci, ccdf
from repro.core.fugu import Fugu
from repro.experiment.watch import ViewerModel
from repro.media.encoder import VbrEncoder
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net.path import PathSampler
from repro.streaming.simulator import simulate_stream

TAIL_VIEWER = ViewerModel(
    tail_threshold_s=300.0,
    tail_block_s=150.0,
    tail_continue_base=0.80,
    qoe_stall_sensitivity=12.0,
    qoe_ssim_sensitivity=0.05,
    ssim_reference_db=16.5,
    max_session_s=3600.0,
)

N_VIEWERS = 120


@pytest.fixture(scope="module")
def controlled_durations(fugu_predictor, pensieve_model):
    schemes = {
        "bba": BBA(),
        "mpc_hm": MpcHm(),
        "robust_mpc_hm": RobustMpcHm(),
        "pensieve": Pensieve(pensieve_model),
        "fugu": Fugu(fugu_predictor),
    }
    durations = {name: [] for name in schemes}
    for viewer_i in range(N_VIEWERS):
        base_rng = np.random.default_rng(9000 + viewer_i)
        watch = float(np.exp(base_rng.normal(np.log(250.0), 0.5)))
        for name, abr in schemes.items():
            path = PathSampler(seed=9000 + viewer_i).next_path()
            media_rng = np.random.default_rng(viewer_i)
            source = VideoSource(DEFAULT_CHANNELS[viewer_i % 6], rng=media_rng)
            encoder = VbrEncoder(rng=media_rng)
            hook = TAIL_VIEWER.make_extension_hook(
                np.random.default_rng(7000 + viewer_i)
            )
            result = simulate_stream(
                encoder.stream(source),
                abr,
                path.connect(seed=viewer_i),
                watch_time_s=watch,
                extension_hook=hook,
            )
            durations[name].append(result.total_time)
    return durations


def test_fig10_time_on_site(benchmark, primary_trial, controlled_durations):
    def build():
        return {
            name: ccdf(primary_trial.session_durations_for(name))
            for name in primary_trial.scheme_names
        }

    ccdfs = benchmark(build)

    print("\nFigure 10 — session durations (RCT, bootstrap 95% CI on mean)")
    for name in primary_trial.scheme_names:
        durations = primary_trial.session_durations_for(name)
        ci = bootstrap_mean_ci(durations, n_resamples=400, seed=3)
        print(
            f"  {name:<15} mean {ci.point/60:6.2f} min "
            f"({ci.low/60:.2f}–{ci.high/60:.2f}), n={len(durations)}"
        )

    # CCDFs are valid survival curves spanning a heavy-tailed range.
    for name, (x, p) in ccdfs.items():
        assert np.all(np.diff(x) >= 0)
        assert np.all((p > 0) & (p <= 1))
        assert x[-1] > 10 * np.median(x)  # heavy tail present

    print("\nControlled common-viewer experiment (QoE-sensitive tail)")
    means = {}
    for name, durations in controlled_durations.items():
        means[name] = float(np.mean(durations))
        print(
            f"  {name:<15} mean {means[name]/60:6.2f} min  "
            f"median {np.median(durations)/60:6.2f} min"
        )

    # The mechanism: Fugu's viewers stay longest on average...
    others = {k: v for k, v in means.items() if k != "fugu"}
    assert means["fugu"] >= max(others.values()) * 0.97, means
    assert means["fugu"] > np.mean(list(others.values())), means

    # ...and the difference is a tail phenomenon: medians (the body of the
    # distribution) are nearly identical across schemes.
    medians = {
        k: float(np.median(v)) for k, v in controlled_durations.items()
    }
    spread = max(medians.values()) / min(medians.values())
    assert spread < 1.15, medians

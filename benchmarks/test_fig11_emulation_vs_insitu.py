"""Figure 11: emulation versus the real world.

Left panel: performance in the mahimahi/FCC emulation environment.
Middle panel: performance in the deployment, including Emulation-trained
Fugu — "Compared with the in situ Fugu — or with every other ABR scheme —
the real-world performance of emulation-trained Fugu was horrible."
Right panel: the two environments' throughput distributions differ
drastically.

Shape targets:

* emulation-trained Fugu performs well *in emulation* (it was trained
  there) but markedly worse than in-situ Fugu when deployed;
* the ranking of schemes in emulation differs from the deployment ranking
  ("the emulation results differ markedly from the real world");
* the FCC trace distribution is tame next to the deployment's.
"""

import numpy as np
import pytest

from repro.abr import BBA, MpcHm, Pensieve, RobustMpcHm
from repro.core.fugu import Fugu
from repro.experiment import deploy_and_collect
from repro.traces.stats import summarize_trace


def summarize(streams):
    stall = sum(s.stall_time for s in streams) / sum(
        s.watch_time for s in streams
    )
    return {
        "stall_pct": stall * 100.0,
        "ssim_db": float(np.mean([s.mean_ssim_db for s in streams])),
    }


@pytest.fixture(scope="module")
def fig11_panels(
    emulation_environment,
    emulation_fugu_predictor,
    fugu_predictor,
    pensieve_model,
):
    def schemes():
        return {
            "bba": BBA(),
            "mpc_hm": MpcHm(),
            "robust_mpc_hm": RobustMpcHm(),
            "pensieve": Pensieve(pensieve_model),
            "fugu": Fugu(fugu_predictor),
            "fugu_emulation": Fugu(
                emulation_fugu_predictor, name="fugu_emulation"
            ),
        }

    emulation = {
        name: summarize(emulation_environment.run_scheme(abr, seed=123))
        for name, abr in schemes().items()
    }
    deployment = {
        name: summarize(
            deploy_and_collect([abr], 200, seed=777, watch_time_s=300.0)
        )
        for name, abr in schemes().items()
    }
    return emulation, deployment


def _print_panel(title, panel):
    print(f"\nFigure 11 — {title}")
    print(f"{'Algorithm':<16}{'Stall %':>9}{'SSIM dB':>9}")
    for name, row in sorted(panel.items()):
        print(f"{name:<16}{row['stall_pct']:>9.2f}{row['ssim_db']:>9.2f}")


def test_fig11_emulation_vs_insitu(
    benchmark, fig11_panels, emulation_environment
):
    emulation, deployment = benchmark(lambda: fig11_panels)
    _print_panel("in emulation (mahimahi + FCC traces)", emulation)
    _print_panel("in deployment (the simulated 'real world')", deployment)

    # Emulation-trained Fugu is competitive in its home environment...
    emu_stalls = {k: v["stall_pct"] for k, v in emulation.items()}
    assert emu_stalls["fugu_emulation"] <= np.median(
        list(emu_stalls.values())
    ), emu_stalls

    # ...but collapses relative to in-situ Fugu in deployment.
    dep = deployment
    assert dep["fugu_emulation"]["stall_pct"] > 1.5 * dep["fugu"]["stall_pct"], dep
    # In deployment it is among the most stall-prone schemes.
    worse_count = sum(
        dep["fugu_emulation"]["stall_pct"] >= row["stall_pct"]
        for name, row in dep.items()
        if name != "fugu_emulation"
    )
    assert worse_count >= 3, dep

    # Training in situ, evaluated in situ, wins over training in emulation:
    # in-situ Fugu is no worse on quality and clearly better on stalls.
    assert dep["fugu"]["ssim_db"] >= dep["fugu_emulation"]["ssim_db"] - 0.3

    # The two environments rank schemes differently (compare stall
    # orderings over the five primary schemes).
    primary = ["bba", "mpc_hm", "robust_mpc_hm", "pensieve", "fugu"]
    emu_order = sorted(primary, key=lambda k: emulation[k]["stall_pct"])
    dep_order = sorted(primary, key=lambda k: deployment[k]["stall_pct"])
    assert emu_order != dep_order, (emu_order, dep_order)

    # Quality levels differ wholesale: the FCC band is slow, so emulation
    # SSIM sits several dB below deployment SSIM for every scheme.
    for name in primary:
        assert emulation[name]["ssim_db"] < deployment[name]["ssim_db"] - 2.0

    # Right panel: throughput distributions. The deployment population is
    # faster and heavier-tailed than the FCC traces.
    from repro.net.path import PathSampler

    fcc_epochs = [r for t in emulation_environment.traces for r in t]
    sampler = PathSampler(seed=31)
    deploy_epochs = []
    for _ in range(60):
        link = sampler.next_path().link
        deploy_epochs.extend(link.sample_epochs(60, epoch=1.0))
    fcc_stats = summarize_trace(fcc_epochs)
    dep_stats = summarize_trace(deploy_epochs)
    print(
        f"\nThroughput distributions: FCC median "
        f"{fcc_stats.median_bps/1e6:.2f} Mbps (tail ratio "
        f"{fcc_stats.tail_ratio:.1f}) vs deployment median "
        f"{dep_stats.median_bps/1e6:.2f} Mbps (tail ratio "
        f"{dep_stats.tail_ratio:.1f})"
    )
    assert dep_stats.median_bps > 2 * fcc_stats.median_bps
    assert dep_stats.tail_ratio > fcc_stats.tail_ratio

"""Figure 1: results of the primary experiment (randomized trial).

Paper table (Jan 19–Aug 7 & Aug 30–Sept 12, 2019):

    Algorithm       Time stalled   Mean SSIM   SSIM variation   Mean duration
    Fugu            0.12%          16.9 dB     0.68 dB          32.6 min
    MPC-HM          0.25%          16.8 dB     0.72 dB          27.9 min
    BBA             0.19%          16.8 dB     1.03 dB          29.6 min
    Pensieve        0.17%          16.5 dB     0.97 dB          28.5 min
    RobustMPC-HM    0.10%          16.2 dB     0.90 dB          27.4 min

This bench reproduces the table from the simulated RCT. At bench scale
(~300 considered streams per arm versus the paper's ~90,000) the stall-ratio
confidence intervals are wide — §3.4's central point — so the stall
assertions here are CI-aware; the strict ordering under matched conditions
is asserted by ``test_paired_frontier.py``.
"""

from repro.analysis.summary import results_table

PAPER_FIG1 = {
    "fugu": {"stall_pct": 0.12, "ssim_db": 16.9, "var_db": 0.68, "dur_min": 32.6},
    "mpc_hm": {"stall_pct": 0.25, "ssim_db": 16.8, "var_db": 0.72, "dur_min": 27.9},
    "bba": {"stall_pct": 0.19, "ssim_db": 16.8, "var_db": 1.03, "dur_min": 29.6},
    "pensieve": {"stall_pct": 0.17, "ssim_db": 16.5, "var_db": 0.97, "dur_min": 28.5},
    "robust_mpc_hm": {"stall_pct": 0.10, "ssim_db": 16.2, "var_db": 0.90, "dur_min": 27.4},
}


def _print_table(summaries):
    print("\nFigure 1 — primary experiment results (reproduced | paper)")
    print(
        f"{'Algorithm':<15}{'Stalled %':>14}{'Mean SSIM':>13}"
        f"{'SSIM var':>11}{'Duration min':>14}{'N':>7}"
    )
    for name, s in sorted(summaries.items()):
        paper = PAPER_FIG1[name]
        dur = (
            s.mean_session_duration_s.point / 60.0
            if s.mean_session_duration_s
            else float("nan")
        )
        print(
            f"{name:<15}"
            f"{s.stall_percent:>7.3f}|{paper['stall_pct']:<6.2f}"
            f"{s.mean_ssim_db.point:>6.2f}|{paper['ssim_db']:<6.1f}"
            f"{s.ssim_variation_db:>5.2f}|{paper['var_db']:<5.2f}"
            f"{dur:>7.1f}|{paper['dur_min']:<6.1f}"
            f"{s.n_streams:>6}"
        )


def test_fig1_primary_table(benchmark, scheme_summaries):
    table = benchmark(results_table, list(scheme_summaries.values()))
    _print_table(scheme_summaries)

    assert set(table) == set(PAPER_FIG1), "all five schemes must report"
    ssim = {k: v["mean_ssim_db"] for k, v in table.items()}
    var = {k: scheme_summaries[k].ssim_variation_db for k in table}
    stall_ci = {k: scheme_summaries[k].stall_ratio for k in table}

    # --- Quality (narrow CIs; stable at bench scale) -------------------
    # Fugu's SSIM is at or within a whisker of the best.
    assert ssim["fugu"] >= max(ssim.values()) - 0.25, ssim
    # Pensieve's SSIM is clearly the lowest (bitrate objective, §3.3).
    assert ssim["pensieve"] == min(ssim.values()), ssim
    # RobustMPC trades quality for stall-aversion.
    assert ssim["robust_mpc_hm"] < max(ssim.values()) - 0.2, ssim

    # --- SSIM variation -------------------------------------------------
    # Fugu is smoothest (lowest or tied-lowest within 0.05 dB), and BBA is
    # markedly less smooth than Fugu (paper: 1.03 vs 0.68 dB).
    assert var["fugu"] <= min(var.values()) + 0.05, var
    assert var["bba"] > var["fugu"], var

    # --- Stalls (CI-aware: §3.4 says these margins are wide) ------------
    # MPC-HM is clearly the most stall-prone of the SSIM-optimizing family.
    assert stall_ci["mpc_hm"].point > stall_ci["fugu"].point, {
        k: v.point for k, v in stall_ci.items()
    }
    assert stall_ci["mpc_hm"].point > stall_ci["bba"].point
    # Fugu is statistically compatible with (or better than) every scheme:
    # no arm's entire CI sits below Fugu's.
    for name, ci in stall_ci.items():
        if name == "fugu":
            continue
        assert ci.high >= stall_ci["fugu"].low, (
            f"{name} CI entirely below Fugu's: "
            f"{name}=({ci.low:.5f},{ci.high:.5f}) "
            f"fugu=({stall_ci['fugu'].low:.5f},{stall_ci['fugu'].high:.5f})"
        )

    # --- Headline: the 'simple' scheme holds its own --------------------
    # BBA beats MPC-HM on stalls and is statistically indistinguishable on
    # quality (§5: "old-fashioned buffer-based control performs
    # surprisingly well").
    assert stall_ci["bba"].point < stall_ci["mpc_hm"].point
    assert scheme_summaries["bba"].mean_ssim_db.overlaps(
        scheme_summaries["mpc_hm"].mean_ssim_db
    )

"""Figure 2: CS2P-style discrete throughput states vs. Puffer's reality.

The paper contrasts a CS2P example session — throughput jumping between a
handful of discrete states (Fig. 2a) — with a typical Puffer session of
similar mean throughput, whose evolution is continuous with no discrete
states (Fig. 2b): "we have not observed CS2P and Oboe's observation of
discrete throughput states."

Reproduction: sample 200 six-second epochs (as in the figure) from a
Markov-state link and from the heavy-tailed continuous link, and show the
modality statistic separates them.
"""

import numpy as np

from repro.net.link import HeavyTailLink, MarkovLink
from repro.traces.stats import summarize_trace

N_EPOCHS = 200
EPOCH_S = 6.0  # "Epochs are 6 seconds in both plots."
MEAN_BPS = 2.6e6  # both panels sit near 2.6 Mbit/s


def build_series():
    cs2p_link = MarkovLink(
        states_bps=[2.45e6, 2.7e6, 2.9e6],
        switch_probability=0.04,
        jitter_sigma=0.004,
        epoch=EPOCH_S,
        seed=2,
    )
    puffer_link = HeavyTailLink(
        base_bps=MEAN_BPS, sigma=0.12, reversion=0.05, fade_rate=0.0,
        epoch=EPOCH_S, seed=4,
    )
    return (
        cs2p_link.sample_epochs(N_EPOCHS, epoch=EPOCH_S),
        puffer_link.sample_epochs(N_EPOCHS, epoch=EPOCH_S),
    )


def test_fig2_throughput_states(benchmark):
    cs2p, puffer = benchmark(build_series)
    cs2p_stats = summarize_trace(cs2p)
    puffer_stats = summarize_trace(puffer)

    print("\nFigure 2 — throughput evolution over 200 six-second epochs")
    print(
        f"  CS2P-style session : mean={cs2p_stats.mean_bps/1e6:.2f} Mbps, "
        f"modes={cs2p_stats.modality_score:.0f}, "
        f"CV={cs2p_stats.coefficient_of_variation:.3f}"
    )
    print(
        f"  Puffer-style session: mean={puffer_stats.mean_bps/1e6:.2f} Mbps, "
        f"modes={puffer_stats.modality_score:.0f}, "
        f"CV={puffer_stats.coefficient_of_variation:.3f}"
    )

    # Comparable mean throughput (both panels ~2.4–3.0 Mbit/s).
    assert abs(cs2p_stats.mean_bps - puffer_stats.mean_bps) < 1.0e6

    # The CS2P session shows multiple discrete states; Puffer's does not.
    assert cs2p_stats.modality_score >= 2
    assert puffer_stats.modality_score <= 2
    assert cs2p_stats.modality_score > puffer_stats.modality_score

    # Puffer's evolution is continuous: consecutive-epoch changes are many
    # small moves, not rare jumps. The CS2P trace is the opposite — most
    # epochs are flat (within a state's jitter) with occasional jumps.
    def flat_fraction(series, tolerance=0.02):
        arr = np.asarray(series)
        rel = np.abs(np.diff(arr)) / arr[:-1]
        return float((rel < tolerance).mean())

    assert flat_fraction(cs2p) > 0.6
    assert flat_fraction(puffer) < 0.5

"""Figure 3: VBR encoding variability within a stream.

(a) Chunk sizes vary within a stream at both the 5500 kbps and 200 kbps
    settings — several-fold between quiet and busy content.
(b) Picture quality (SSIM) also varies chunk-by-chunk, spanning several dB
    at a fixed encoder setting.

"Variations in picture quality and chunk size within each stream suggest a
benefit from choosing chunks based on SSIM and size, rather than average
bitrate."
"""

import numpy as np

from repro.media.encoder import encode_clip
from repro.media.source import DEFAULT_CHANNELS

N_CHUNKS = 32  # the figure plots chunk numbers 2..31


def build_menus():
    return encode_clip(DEFAULT_CHANNELS[2], N_CHUNKS, seed=12)


def test_fig3_vbr_variability(benchmark):
    menus = benchmark(build_menus)

    top = [m[-1] for m in menus]  # 5500 kbps rung
    bottom = [m[0] for m in menus]  # 200 kbps rung
    top_sizes_mb = [v.size_bytes / 1e6 for v in top]
    bottom_sizes_mb = [v.size_bytes / 1e6 for v in bottom]
    top_ssims = [v.ssim_db for v in top]
    bottom_ssims = [v.ssim_db for v in bottom]

    print("\nFigure 3a — chunk sizes within one stream (MB)")
    print(
        f"  5500 kbps: min={min(top_sizes_mb):.2f} max={max(top_sizes_mb):.2f} "
        f"mean={np.mean(top_sizes_mb):.2f}"
    )
    print(
        f"  200 kbps : min={min(bottom_sizes_mb):.3f} max={max(bottom_sizes_mb):.3f} "
        f"mean={np.mean(bottom_sizes_mb):.3f}"
    )
    print("Figure 3b — SSIM within one stream (dB)")
    print(
        f"  5500 kbps: min={min(top_ssims):.1f} max={max(top_ssims):.1f}"
    )
    print(
        f"  200 kbps : min={min(bottom_ssims):.1f} max={max(bottom_ssims):.1f}"
    )

    # (a) sizes vary substantially within a stream at each setting.
    assert max(top_sizes_mb) / min(top_sizes_mb) > 1.8
    assert max(bottom_sizes_mb) / min(bottom_sizes_mb) > 1.8
    # The top rung's sizes are in the paper's ballpark (Fig. 3a y-axis
    # reaches ~6 MB for 2 s chunks; mean ~1.4 MB at 5.5 Mbps).
    assert 0.5 < np.mean(top_sizes_mb) < 3.0

    # (b) quality varies chunk to chunk at a fixed setting…
    assert max(top_ssims) - min(top_ssims) > 1.0
    assert max(bottom_ssims) - min(bottom_ssims) > 1.0
    # …and the two settings occupy distinct quality bands (~6-10 dB vs
    # 14-18 dB in the paper's plot).
    assert np.mean(top_ssims) - np.mean(bottom_ssims) > 6.0

    # Size and complexity co-vary: the fattest top-rung chunk is also one
    # of the lowest-SSIM ones (busy content is hard to encode).
    fattest = int(np.argmax(top_sizes_mb))
    assert top_ssims[fattest] < np.mean(top_ssims)

"""Figure 4: average SSIM versus average bitrate, by scheme.

"On Puffer, schemes that maximize average SSIM (MPC-HM, RobustMPC-HM, and
Fugu) delivered higher quality video per byte sent, vs. those that maximize
bitrate directly (Pensieve) or the SSIM of each chunk (BBA)."

In the paper's scatter, BBA has the *highest* bitrate but not the highest
SSIM; Pensieve is second in bitrate with the lowest SSIM; the MPC family
sits up and to the left (more quality from fewer bits).
"""


def build_points(scheme_summaries):
    return {
        name: (s.mean_bitrate_bps / 1e6, s.mean_ssim_db.point)
        for name, s in scheme_summaries.items()
    }


def test_fig4_ssim_vs_bitrate(benchmark, scheme_summaries):
    points = benchmark(build_points, scheme_summaries)

    print("\nFigure 4 — average SSIM vs average bitrate")
    print(f"{'Algorithm':<15}{'Bitrate Mbps':>13}{'SSIM dB':>9}{'dB/Mbps':>9}")
    efficiency = {}
    for name, (bitrate, ssim) in sorted(points.items()):
        efficiency[name] = ssim / bitrate
        print(f"{name:<15}{bitrate:>13.2f}{ssim:>9.2f}{efficiency[name]:>9.2f}")

    ssim = {k: v[1] for k, v in points.items()}
    bitrate = {k: v[0] for k, v in points.items()}

    # The SSIM-maximizing schemes extract more quality per byte than the
    # bitrate-maximizing one (Pensieve never wins on efficiency-adjusted
    # quality: at comparable-or-lower bitrate it has the lowest SSIM).
    assert ssim["pensieve"] == min(ssim.values())
    for scheme in ("fugu", "mpc_hm", "robust_mpc_hm"):
        assert ssim[scheme] > ssim["pensieve"] + 0.5, points

    # BBA spends the most (or nearly the most) bits...
    assert bitrate["bba"] >= max(bitrate.values()) - 0.4, points
    # ...but does not get commensurately more quality than Fugu, which
    # spends no more bits.
    assert bitrate["fugu"] <= bitrate["bba"] + 0.4, points
    assert ssim["fugu"] >= ssim["bba"] - 0.1, points

    # Quality-per-bit: every SSIM-optimizing scheme beats Pensieve.
    for scheme in ("fugu", "mpc_hm", "robust_mpc_hm"):
        assert (
            ssim[scheme] - ssim["pensieve"]
        ) >= 0.3 * (bitrate[scheme] - bitrate["pensieve"]), points

"""Figure 5: distinguishing features of the algorithms under test.

The paper's table:

    Algorithm       Control                Predictor        Goal                       How trained
    BBA             classical (prop.)      n/a              +SSIM s.t. bitrate<limit   n/a
    MPC-HM          classical (MPC)        classical (HM)   +SSIM,-stalls,-dSSIM       n/a
    RobustMPC-HM    classical (robust MPC) classical (HM)   +SSIM,-stalls,-dSSIM       n/a
    Pensieve        learned (DNN)          n/a              +bitrate,-stalls,-dbitrate RL in simulation
    Emu.-trained F. classical (MPC)        learned (DNN)    +SSIM,-stalls,-dSSIM       supervised, emulation
    Fugu            classical (MPC)        learned (DNN)    +SSIM,-stalls,-dSSIM       supervised, in situ
"""

from repro.experiment.schemes import primary_experiment_schemes, scheme_table


def build_table(fugu_predictor, pensieve_model, emulation_fugu_predictor):
    specs = primary_experiment_schemes(
        fugu_predictor,
        pensieve_model,
        emulation_fugu_predictor=emulation_fugu_predictor,
    )
    return specs, scheme_table(specs)


def test_fig5_scheme_registry(
    benchmark, fugu_predictor, pensieve_model, emulation_fugu_predictor
):
    specs, table = benchmark(
        build_table, fugu_predictor, pensieve_model, emulation_fugu_predictor
    )

    print("\nFigure 5 — algorithm feature matrix")
    for name, row in table.items():
        print(
            f"  {name:<15} control={row['control']:<24} "
            f"predictor={row['predictor']:<15} trained={row['how_trained']}"
        )

    assert set(table) == {
        "bba", "mpc_hm", "robust_mpc_hm", "pensieve", "fugu",
        "fugu_emulation",
    }

    # Control column.
    assert "prop. control" in table["bba"]["control"]
    assert table["mpc_hm"]["control"] == "classical (MPC)"
    assert "robust" in table["robust_mpc_hm"]["control"]
    assert table["pensieve"]["control"] == "learned (DNN)"
    assert table["fugu"]["control"] == "classical (MPC)"

    # Predictor column: only the Fugu variants carry a learned predictor.
    assert table["fugu"]["predictor"] == "learned (DNN)"
    assert table["fugu_emulation"]["predictor"] == "learned (DNN)"
    assert table["mpc_hm"]["predictor"] == "classical (HM)"
    assert table["bba"]["predictor"] == "n/a"
    assert table["pensieve"]["predictor"] == "n/a"

    # Training column: the in-situ vs emulation vs RL distinction.
    assert table["fugu"]["how_trained"] == "supervised learning in situ"
    assert table["fugu_emulation"]["how_trained"] == (
        "supervised learning in emulation"
    )
    assert table["pensieve"]["how_trained"] == (
        "reinforcement learning in simulation"
    )
    for classical in ("bba", "mpc_hm", "robust_mpc_hm"):
        assert table[classical]["how_trained"] == "n/a"

    # Every spec builds a working algorithm with the right public name.
    for spec in specs:
        assert spec.build().name == spec.name

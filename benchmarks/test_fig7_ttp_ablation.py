"""Figure 7: ablation study of Fugu's Transmission Time Predictor.

"Removing each of the TTP's inputs, outputs, or features reduced its
ability to predict the transmission time of a video chunk. A
non-probabilistic TTP ('Point Estimate') and one that predicts throughput
without regard to chunk size ('Throughput Predictor') both performed
markedly worse. TCP-layer statistics (RTT, CWND) were also helpful."

Reproduction: train every variant on the same deployment telemetry and
compare held-out prediction error — the mean absolute error of the expected
transmission time — on two views:

* **overall**: every chunk of the held-out streams (architecture and
  output-representation ablations separate clearly here);
* **cold start**: the first chunks of each stream, where there is no
  history and the TCP statistics carry the signal ("The TTP's use of
  low-level TCP statistics was helpful on a cold start", §5) — this is
  where the per-feature TCP ablations and the size-blind throughput
  predictor fall behind.
"""

import numpy as np
import pytest

from repro.abr import BBA, MpcHm
from repro.core.fugu import make_fugu_variant
from repro.core.train import TtpTrainer, build_ttp_datasets
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.experiment import deploy_and_collect

VARIANTS = [
    "full",
    "point_estimate",
    "throughput",
    "linear",
    "no_tcp",
    "no_rtt",
    "no_cwnd",
    "no_in_flight",
    "no_delivery_rate",
    "shallow",
]

COLD_CHUNKS = 2


def expected_abs_errors(predictor, streams, first_only=None):
    """Per-chunk |E[T̂] − T| over held-out telemetry."""
    errors = []
    for stream in streams:
        records = stream.records
        n = len(records) if first_only is None else min(first_only, len(records))
        if n == 0:
            continue
        rows = [
            predictor.masked_features(
                records[:i], records[i].info_at_send,
                np.array([records[i].size_bytes]),
            )[0]
            for i in range(n)
        ]
        probs = predictor.models[0].predict_proba(np.vstack(rows))
        if predictor.config.predict_throughput:
            sizes = np.array([r.size_bytes for r in records[:n]])
            times = sizes[:, None] * 8.0 / predictor._tput_centers[None, :]
        else:
            times = np.tile(predictor._time_centers, (n, 1))
        if predictor.config.point_estimate:
            best = probs.argmax(axis=1)
            expected = times[np.arange(n), best]
        else:
            expected = (probs * times).sum(axis=1)
        actual = np.array(
            [min(r.transmission_time, 60.0) for r in records[:n]]
        )
        errors.extend(np.abs(expected - actual))
    return errors


@pytest.fixture(scope="module")
def ablation_errors():
    train_streams = deploy_and_collect(
        [BBA(), MpcHm()], 120, seed=55, watch_time_s=240.0
    )
    test_streams = deploy_and_collect(
        [BBA(), MpcHm()], 60, seed=66, watch_time_s=240.0
    )
    errors = {}
    for variant in VARIANTS:
        base_predictor, _ = make_fugu_variant(variant, seed=7, horizon=5)
        predictor = TransmissionTimePredictor(
            TtpConfig(
                horizon=1,
                hidden=base_predictor.config.hidden,
                point_estimate=base_predictor.config.point_estimate,
                predict_throughput=base_predictor.config.predict_throughput,
                ablated_features=base_predictor.config.ablated_features,
            ),
            seed=7,
        )
        predictor.calibrate_tail(train_streams)
        datasets = build_ttp_datasets(train_streams, predictor)
        TtpTrainer(predictor, epochs=12, seed=7).train(datasets)
        errors[variant] = {
            "overall": float(
                np.mean(expected_abs_errors(predictor, test_streams))
            ),
            "cold": float(
                np.mean(
                    expected_abs_errors(
                        predictor, test_streams, first_only=COLD_CHUNKS
                    )
                )
            ),
        }
    return errors


def test_fig7_ttp_ablation(benchmark, ablation_errors):
    errors = benchmark(lambda: ablation_errors)
    print("\nFigure 7 — TTP ablation (held-out mean |E[T̂] − T|, seconds)")
    print(f"{'variant':<20}{'overall':>10}{'cold start':>12}")
    for variant in sorted(errors, key=lambda v: errors[v]["overall"]):
        marker = " <- full TTP" if variant == "full" else ""
        print(
            f"{variant:<20}{errors[variant]['overall']:>10.4f}"
            f"{errors[variant]['cold']:>12.4f}{marker}"
        )

    full = errors["full"]

    # Architecture / output-representation ablations: markedly worse
    # overall, as the paper's bar chart shows.
    assert errors["linear"]["overall"] > 1.3 * full["overall"], errors
    assert errors["shallow"]["overall"] > 1.05 * full["overall"], errors
    assert errors["point_estimate"]["overall"] > 1.05 * full["overall"], errors

    # No ablation is materially better than the full TTP overall.
    for variant, err in errors.items():
        assert err["overall"] >= full["overall"] * 0.95, (variant, errors)

    # Cold start: the full TTP has the best (or tied-best) error, the
    # size-blind throughput predictor is markedly worse, and dropping the
    # TCP statistics (jointly or individually: RTT, CWND, in-flight) hurts.
    for variant, err in errors.items():
        assert full["cold"] <= err["cold"] + 0.005, (variant, errors)
    assert errors["throughput"]["cold"] > 1.08 * full["cold"], errors
    for tcp_ablation in ("no_tcp", "no_rtt", "no_cwnd", "no_in_flight"):
        assert errors[tcp_ablation]["cold"] > 1.02 * full["cold"], (
            tcp_ablation, errors,
        )

"""Figure 8: main results — SSIM vs. stall scatter with 95% CIs, for all
paths and for slow paths (< 6 Mbit/s mean delivery rate).

Paper: "'Slow' network paths ... are more likely to require nontrivial
bitrate-adaptation logic. Such streams accounted for 16% of overall viewing
time and 82% of stalls." Each scheme's position carries 95% confidence
intervals (bootstrap on stall ratio, weighted SE on SSIM).
"""

import numpy as np

from repro.analysis import summarize_scheme
from repro.analysis.summary import split_slow_paths


def build_panels(primary_trial):
    panels = {"all": {}, "slow": {}}
    for name in primary_trial.scheme_names:
        streams = primary_trial.streams_for(name)
        if not streams:
            continue
        panels["all"][name] = summarize_scheme(
            name, streams, n_resamples=400, seed=2
        )
        slow, _ = split_slow_paths(streams)
        if len(slow) >= 10:
            panels["slow"][name] = summarize_scheme(
                name, slow, n_resamples=400, seed=2
            )
    return panels


def _print_panel(title, panel):
    print(f"\nFigure 8 — {title}")
    print(f"{'Algorithm':<15}{'Stall % (95% CI)':>24}{'SSIM dB (95% CI)':>26}")
    for name, s in sorted(panel.items()):
        print(
            f"{name:<15}"
            f"{s.stall_percent:>8.3f} ({s.stall_ratio.low*100:.3f}-{s.stall_ratio.high*100:.3f})"
            f"{s.mean_ssim_db.point:>10.2f} ({s.mean_ssim_db.low:.2f}-{s.mean_ssim_db.high:.2f})"
        )


def test_fig8_main_results(benchmark, primary_trial):
    panels = benchmark(build_panels, primary_trial)
    _print_panel("all paths", panels["all"])
    _print_panel("slow paths (<6 Mbit/s)", panels["slow"])

    all_panel = panels["all"]
    slow_panel = panels["slow"]
    assert len(all_panel) == 5
    assert len(slow_panel) >= 4  # slow streams exist for (nearly) all arms

    # Error bars are real: stall CIs have nonzero width everywhere.
    for s in all_panel.values():
        assert s.stall_ratio.width > 0
        assert s.mean_ssim_db.width > 0

    # Slow paths carry the bulk of the stalls (paper: 82% of stalls from
    # 16% of viewing time).
    all_streams = [
        stream
        for name in primary_trial.scheme_names
        for stream in primary_trial.streams_for(name)
    ]
    slow, fast = split_slow_paths(all_streams)
    slow_stall = sum(s.stall_time for s in slow)
    total_stall = slow_stall + sum(s.stall_time for s in fast)
    slow_watch = sum(s.watch_time for s in slow)
    total_watch = slow_watch + sum(s.watch_time for s in fast)
    slow_watch_share = slow_watch / total_watch
    slow_stall_share = slow_stall / max(total_stall, 1e-9)
    print(
        f"\nSlow paths: {slow_watch_share*100:.1f}% of watch time, "
        f"{slow_stall_share*100:.1f}% of stalls "
        f"(paper: 16% and 82%)"
    )
    assert 0.05 < slow_watch_share < 0.35
    assert slow_stall_share > 1.8 * slow_watch_share

    # Quality is lower on slow paths (paper: 13.5–15.5 dB vs 16.2–16.9 dB
    # overall) for every scheme, and clearly lower on average. Our "slow"
    # band (<6 Mbit/s) includes 4–6 Mbit/s paths that still stream near the
    # top rung, so the per-scheme drop is smaller than the paper's.
    for name in slow_panel:
        assert slow_panel[name].mean_ssim_db.point < (
            all_panel[name].mean_ssim_db.point - 0.3
        ), name
    mean_drop = np.mean(
        [
            all_panel[n].mean_ssim_db.point - slow_panel[n].mean_ssim_db.point
            for n in slow_panel
        ]
    )
    assert mean_drop > 0.5, mean_drop
    # On slow paths the samples are few and the CIs wide; Fugu's quality is
    # statistically compatible with the best scheme's (its CI overlaps),
    # and its stall ratio is at or near the panel's floor.
    if "fugu" in slow_panel:
        best_name = max(
            slow_panel, key=lambda k: slow_panel[k].mean_ssim_db.point
        )
        assert slow_panel["fugu"].mean_ssim_db.overlaps(
            slow_panel[best_name].mean_ssim_db
        ), (best_name, slow_panel["fugu"].mean_ssim_db)
        slow_stalls = {
            k: v.stall_ratio.point for k, v in slow_panel.items()
        }
        assert slow_stalls["fugu"] <= 2.0 * min(slow_stalls.values()), (
            slow_stalls
        )

    # Fugu remains statistically compatible-or-better on stalls overall.
    fugu = all_panel["fugu"]
    for name, s in all_panel.items():
        if name == "fugu":
            continue
        assert s.stall_ratio.high >= fugu.stall_ratio.low, (name, s)

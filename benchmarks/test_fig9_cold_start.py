"""Figure 9: cold start — startup delay vs. first-chunk SSIM.

"On a cold start, Fugu's ability to bootstrap ABR decisions from
congestion-control statistics (e.g., RTT) boosts initial quality."

At stream start there is no throughput history; the classical schemes fall
back to a conservative default (BBA's buffer map forces the lowest rung at
an empty buffer; the HM schemes assume a startup throughput), whereas the
TTP reads the handshake RTT and the connection's TCP state — which, in this
population as on the real Internet, correlate with path speed.
"""

import math

import numpy as np


def build_points(primary_trial):
    points = {}
    for name in primary_trial.scheme_names:
        streams = [
            s for s in primary_trial.streams_for(name) if s.records
        ]
        if not streams:
            continue
        points[name] = {
            "startup_delay_s": float(
                np.mean([s.startup_delay for s in streams])
            ),
            "first_chunk_ssim_db": float(
                np.mean([s.first_chunk_ssim_db for s in streams])
            ),
            # Cold starts only: streams that are their session's first.
        }
    return points


def test_fig9_cold_start(benchmark, primary_trial):
    points = benchmark(build_points, primary_trial)

    print("\nFigure 9 — cold start: startup delay vs first-chunk SSIM")
    print(f"{'Algorithm':<15}{'Startup s':>11}{'First-chunk SSIM dB':>21}")
    for name, p in sorted(points.items()):
        print(
            f"{name:<15}{p['startup_delay_s']:>11.3f}"
            f"{p['first_chunk_ssim_db']:>21.2f}"
        )

    first = {k: v["first_chunk_ssim_db"] for k, v in points.items()}
    startup = {k: v["startup_delay_s"] for k, v in points.items()}

    # Fugu's first chunk is higher quality than every classical scheme's —
    # they cannot see the TCP state, so they start at or near the floor.
    for classical in ("bba", "mpc_hm", "robust_mpc_hm"):
        assert first["fugu"] > first[classical] + 1.0, first

    # The classical schemes start from the same conservative place.
    classical_first = [first["bba"], first["mpc_hm"], first["robust_mpc_hm"]]
    assert max(classical_first) - min(classical_first) < 1.0, first

    # The quality boost costs only a modest startup-delay premium (paper:
    # ~0.55 s vs ~0.48 s; here the same sub-second order).
    assert startup["fugu"] < 4 * startup["bba"], startup
    assert startup["fugu"] < 2.0, startup


def test_fig9_continual_cold_start_curve(tmp_path):
    """Continual extension: instead of one frozen Fugu point, the
    in-situ retraining service enrolls a fresh TTP generation at every
    simulated day boundary, so the cold-start plot becomes a *curve* —
    one (startup delay, first-chunk SSIM) point per model generation,
    each measured only on the live traffic that generation served.
    """
    from repro.fleet import (
        FleetConfig,
        ModelRegistry,
        RetrainConfig,
        WorkloadConfig,
        run_fleet_retrain,
    )
    from repro.core.ttp import TtpConfig
    from repro.experiment.presets import smoke_trial_config

    from tests.fleet.conftest import classical_specs

    config = FleetConfig(
        workload=WorkloadConfig(days=2.5, sessions_per_hour=2.0, seed=5),
        trial=smoke_trial_config(seed=11),
        chunk_sessions=8,
    )
    retrain = RetrainConfig(
        ttp=TtpConfig(horizon=2), window_days=3, epochs_per_day=2, seed=0
    )
    result = run_fleet_retrain(
        classical_specs(), config, retrain,
        archive_dir=tmp_path / "archive",
        registry_dir=tmp_path / "registry",
    )
    assert result.completed

    registry = ModelRegistry(tmp_path / "registry")
    assert len(registry) >= 2, "need at least two generations for a curve"

    # Each generation enrolls for the *following* days, so every
    # generation except the last served live traffic.
    curve = []
    for summary in result.summaries():
        if not summary.scheme.startswith("fugu@g"):
            continue
        if summary.n_streams == 0:
            continue
        curve.append(
            (
                summary.scheme,
                summary.startup_delay_s,
                summary.first_chunk_ssim_db,
                summary.n_streams,
            )
        )

    print("\nFigure 9 (continual) — cold start per TTP generation")
    print(f"{'Generation':<12}{'Startup s':>11}{'First SSIM dB':>15}"
          f"{'N':>6}")
    for arm, startup_s, first_db, n in curve:
        print(f"{arm:<12}{startup_s:>11.3f}{first_db:>15.2f}{n:>6}")

    assert len(curve) >= 2, curve
    for arm, startup_s, first_db, n in curve:
        assert n > 0
        assert math.isfinite(startup_s) and startup_s >= 0.0, curve
        assert math.isfinite(first_db), curve

"""Figure 9: cold start — startup delay vs. first-chunk SSIM.

"On a cold start, Fugu's ability to bootstrap ABR decisions from
congestion-control statistics (e.g., RTT) boosts initial quality."

At stream start there is no throughput history; the classical schemes fall
back to a conservative default (BBA's buffer map forces the lowest rung at
an empty buffer; the HM schemes assume a startup throughput), whereas the
TTP reads the handshake RTT and the connection's TCP state — which, in this
population as on the real Internet, correlate with path speed.
"""

import numpy as np


def build_points(primary_trial):
    points = {}
    for name in primary_trial.scheme_names:
        streams = [
            s for s in primary_trial.streams_for(name) if s.records
        ]
        if not streams:
            continue
        points[name] = {
            "startup_delay_s": float(
                np.mean([s.startup_delay for s in streams])
            ),
            "first_chunk_ssim_db": float(
                np.mean([s.first_chunk_ssim_db for s in streams])
            ),
            # Cold starts only: streams that are their session's first.
        }
    return points


def test_fig9_cold_start(benchmark, primary_trial):
    points = benchmark(build_points, primary_trial)

    print("\nFigure 9 — cold start: startup delay vs first-chunk SSIM")
    print(f"{'Algorithm':<15}{'Startup s':>11}{'First-chunk SSIM dB':>21}")
    for name, p in sorted(points.items()):
        print(
            f"{name:<15}{p['startup_delay_s']:>11.3f}"
            f"{p['first_chunk_ssim_db']:>21.2f}"
        )

    first = {k: v["first_chunk_ssim_db"] for k, v in points.items()}
    startup = {k: v["startup_delay_s"] for k, v in points.items()}

    # Fugu's first chunk is higher quality than every classical scheme's —
    # they cannot see the TCP state, so they start at or near the floor.
    for classical in ("bba", "mpc_hm", "robust_mpc_hm"):
        assert first["fugu"] > first[classical] + 1.0, first

    # The classical schemes start from the same conservative place.
    classical_first = [first["bba"], first["mpc_hm"], first["robust_mpc_hm"]]
    assert max(classical_first) - min(classical_first) < 1.0, first

    # The quality boost costs only a modest startup-delay premium (paper:
    # ~0.55 s vs ~0.48 s; here the same sub-second order).
    assert startup["fugu"] < 4 * startup["bba"], startup
    assert startup["fugu"] < 2.0, startup

"""Figure A1: CONSORT-style experimental-flow diagram.

The paper's flow for the primary analysis: 337,170 sessions randomized into
five arms (≈48k sessions, ≈233k streams each); per arm roughly 55–60k
streams never began playing, 79–88k had watch time under 4 s, a few dozen
stalled from a slow video decoder, ~2.5k were truncated by loss of contact,
and ~90k were considered — 458,801 streams and 8.5 client-years in total.

The reproduction checks the flow's *structure*: every stream is accounted
for exactly once, arms are balanced, and the exclusion profile (large
never-began and under-4s shares from channel-surfing viewers, rare decoder
exclusions) matches the paper's.
"""

import numpy as np


def build_flow(primary_trial):
    return primary_trial.consort


def test_figA1_consort_flow(benchmark, primary_trial):
    flow = benchmark(build_flow, primary_trial)

    print("\nFigure A1 — CONSORT flow")
    print(f"  {flow.sessions_randomized} sessions underwent randomization")
    print(f"  {flow.streams_total} streams")
    for name, arm in sorted(flow.arms.items()):
        print(
            f"  {name:<15} sessions={arm.sessions_assigned:<5} "
            f"streams={arm.streams_assigned:<6} "
            f"did_not_begin={arm.did_not_begin:<5} "
            f"under_4s={arm.watch_time_under_4s:<5} "
            f"slow_decoder={arm.slow_video_decoder:<3} "
            f"truncated={arm.truncated_loss_of_contact:<4} "
            f"considered={arm.considered}"
        )
    print(
        f"  {flow.streams_considered} streams considered, "
        f"{flow.considered_watch_years:.4f} stream-years"
    )

    # Structural integrity: every stream is excluded or considered.
    flow.check()
    assert flow.sessions_randomized == len(primary_trial.sessions)

    # All five arms present and roughly balanced (uniform randomization).
    assert len(flow.arms) == 5
    sessions = [arm.sessions_assigned for arm in flow.arms.values()]
    assert max(sessions) < 2 * min(sessions)

    # Sessions contain multiple streams (channel changes), as in the paper
    # (337k sessions -> 1.6M streams, ~4.7 streams per session).
    assert flow.streams_total > 1.5 * flow.sessions_randomized

    for arm in flow.arms.values():
        # The paper's exclusion profile: a large share of streams never
        # began or were watched under 4 s (~60% per arm)...
        exclusion_share = arm.excluded / arm.streams_assigned
        assert 0.3 < exclusion_share < 0.85, arm
        # ...dominated by the never-began and under-4s categories, with
        # slow-decoder exclusions rare.
        assert arm.did_not_begin > 0
        assert arm.watch_time_under_4s > 0
        assert arm.slow_video_decoder <= 0.01 * arm.streams_assigned
        # Truncations are a small minority of considered streams (~3%).
        assert arm.truncated_loss_of_contact <= 0.1 * max(arm.considered, 1)
        # Considered streams carry nearly all the watch time.
        assert arm.considered_watch_time_s > 0

    # Considered watch time is meaningfully large (stream-years scale with
    # the configured bench size).
    assert flow.considered_watch_years > 0

"""Constant-memory scaling of the fleet engine (`repro.fleet`).

The paper's dataset is 14.2 user-years accumulated over months of
continuous operation — no batch harness that retains every stream record
survives that.  The fleet driver's contract is **O(chunk) memory in the
number of sessions**: each committed chunk is folded into exact streaming
sinks and discarded.

This bench measures peak traced memory (``tracemalloc``) for the same
workload at two scales (x``REPRO_FLEET_BENCH_SCALE`` sessions apart)
through two paths:

* ``run_fleet`` — the streaming sinks (should be ~flat);
* the legacy ``RandomizedTrial`` batch harness, which retains every
  stream record for post-hoc analysis (grows linearly by design).

and asserts the fleet path's growth stays far below the legacy path's.
Throughput (sessions/s) is printed alongside so the constant-memory mode
is visibly not paid for in speed.

Scale knobs (environment variables):

* ``REPRO_FLEET_BENCH_SESSIONS`` — target sessions at the small scale
  (default 64).
* ``REPRO_FLEET_BENCH_SCALE`` — multiplier for the large scale (default 4).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_fleet_scale.py -s``.
"""

import os
import time
import tracemalloc
from dataclasses import replace

import pytest

from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm
from repro.experiment.harness import RandomizedTrial
from repro.experiment.presets import smoke_trial_config
from repro.experiment.schemes import SchemeSpec
from repro.fleet import (
    FleetConfig,
    WorkloadConfig,
    WorkloadGenerator,
    run_fleet,
)

BASE_SESSIONS = int(os.environ.get("REPRO_FLEET_BENCH_SESSIONS", "64"))
SCALE = int(os.environ.get("REPRO_FLEET_BENCH_SCALE", "4"))
RATE = 200.0  # sessions/hour; days are derived from the session target


def fleet_specs():
    """Classical schemes only, so the bench times session turnover."""
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


def _workload(target_sessions: int) -> WorkloadConfig:
    return WorkloadConfig(
        days=target_sessions / (RATE * 24.0),
        sessions_per_hour=RATE,
        diurnal_amplitude=0.0,
        seed=7,
    )


def _measure_fleet(target_sessions: int):
    """(sessions, peak bytes, wall seconds, dump bytes) for a fleet run."""
    import json

    workload = _workload(target_sessions)
    config = FleetConfig(
        workload=workload,
        trial=smoke_trial_config(seed=17),
        chunk_sessions=16,
    )
    n = WorkloadGenerator(workload).count()
    tracemalloc.start()
    start = time.perf_counter()
    result = run_fleet(fleet_specs(), config, workers=1)
    wall = time.perf_counter() - start
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    assert result.completed and result.sink.sessions == n
    dump_bytes = len(json.dumps(result.to_dump_dict(), sort_keys=True))
    return n, peak, wall, dump_bytes


def _measure_legacy(n_sessions: int):
    """(peak bytes, wall seconds) for the retain-every-stream harness."""
    config = replace(smoke_trial_config(seed=17), n_sessions=n_sessions)
    tracemalloc.start()
    start = time.perf_counter()
    trial = RandomizedTrial(fleet_specs(), config).run()
    wall = time.perf_counter() - start
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    assert trial is not None  # keep the retained records alive until peak
    return peak, wall


@pytest.fixture(scope="module")
def scaling_measurements():
    small = BASE_SESSIONS
    large = BASE_SESSIONS * SCALE
    n_small, fleet_small, fleet_small_s, dump_small = _measure_fleet(small)
    n_large, fleet_large, fleet_large_s, dump_large = _measure_fleet(large)
    legacy_small, legacy_small_s = _measure_legacy(n_small)
    legacy_large, legacy_large_s = _measure_legacy(n_large)
    return {
        "n_small": n_small, "n_large": n_large,
        "fleet": (fleet_small, fleet_large, fleet_small_s, fleet_large_s),
        "legacy": (legacy_small, legacy_large, legacy_small_s,
                   legacy_large_s),
        "dumps": (dump_small, dump_large),
    }


class TestFleetScale:
    def test_fleet_memory_flat_legacy_linear(self, scaling_measurements):
        m = scaling_measurements
        n_small, n_large = m["n_small"], m["n_large"]
        fleet_small, fleet_large, fleet_small_s, fleet_large_s = m["fleet"]
        legacy_small, legacy_large, legacy_small_s, legacy_large_s = (
            m["legacy"]
        )
        fleet_growth = fleet_large / fleet_small
        legacy_growth = legacy_large / legacy_small
        session_growth = n_large / n_small
        print(
            f"\npeak traced memory, {n_small} -> {n_large} sessions "
            f"({session_growth:.1f}x):"
        )
        print(
            f"  fleet  : {fleet_small / 1e6:7.2f} MB -> "
            f"{fleet_large / 1e6:7.2f} MB  ({fleet_growth:.2f}x)  "
            f"[{n_small / fleet_small_s:.1f} -> "
            f"{n_large / fleet_large_s:.1f} sessions/s]"
        )
        print(
            f"  legacy : {legacy_small / 1e6:7.2f} MB -> "
            f"{legacy_large / 1e6:7.2f} MB  ({legacy_growth:.2f}x)  "
            f"[{n_small / legacy_small_s:.1f} -> "
            f"{n_large / legacy_large_s:.1f} sessions/s]"
        )

        # The tentpole claim: fleet memory is ~independent of run length
        # (generous headroom so allocator noise never flakes CI), while
        # the batch harness pays for every retained stream record.
        assert fleet_growth < 1.6, (
            f"fleet peak grew {fleet_growth:.2f}x over a "
            f"{session_growth:.1f}x longer run — not constant-memory"
        )
        assert legacy_growth > fleet_growth * 1.25, (
            "legacy batch path should grow markedly faster than the "
            f"streaming fleet path ({legacy_growth:.2f}x vs "
            f"{fleet_growth:.2f}x)"
        )
        assert fleet_large < legacy_large, (
            "at the large scale the streaming path must be cheaper than "
            "retaining every stream"
        )

    def test_fleet_dump_size_flat(self, scaling_measurements):
        """The metrics dump is O(schemes), not O(sessions): both scales
        serialize to within a small constant factor of each other."""
        dump_small, dump_large = scaling_measurements["dumps"]
        print(f"\ndump bytes: {dump_small} -> {dump_large}")
        assert dump_large < dump_small * 1.5

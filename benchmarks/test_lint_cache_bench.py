"""Throughput of the lint findings cache (``repro.lint.cache``).

The tier-1 tree-clean gate re-lints every file under ``src/repro`` on each
run; per-file findings are a pure function of (rule-set, path, bytes), so
a warm content-hash cache should collapse the per-file phase to hash +
read.  Measured on the dev container at ~97 files:

* uncached full lint        ~0.84 s
* cold cache (populating)   ~0.90 s  (write-through overhead ≈ 7%)
* warm cache                ~0.007 s (≈ 120x)

This bench asserts the *shape* of that result with generous slack so CI
never flakes: a warm run must beat the uncached run by at least 5x and
must serve every file from cache.  The whole-program purity phase is
deliberately outside the cache (it depends on all files at once), so it
is excluded here.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_lint_cache_bench.py``.
"""

import time
from pathlib import Path

import pytest

from repro.lint.engine import lint_paths

SRC = Path(__file__).resolve().parents[1] / "src"


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LINT_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_LINT_CACHE", raising=False)
    monkeypatch.delenv("CI", raising=False)
    return tmp_path / "cache"


def _timed(use_cache):
    start = time.perf_counter()
    report = lint_paths([str(SRC)], use_cache=use_cache)
    return time.perf_counter() - start, report


class TestCacheSpeedup:
    def test_warm_cache_beats_uncached_by_5x(self, cache_dir):
        uncached_s, uncached = _timed(use_cache=False)
        cold_s, cold = _timed(use_cache=True)
        warm_s, warm = _timed(use_cache=True)

        assert uncached.files_checked == warm.files_checked > 0
        assert cold.cache_misses == cold.files_checked
        assert warm.cache_hits == warm.files_checked
        assert warm.cache_misses == 0
        # Identical findings either way (the cache is an optimization,
        # never a behavior change).
        assert [f.to_dict() for f in warm.findings] == [
            f.to_dict() for f in uncached.findings
        ]
        assert [f.to_dict() for f in warm.suppressed] == [
            f.to_dict() for f in uncached.suppressed
        ]
        assert warm_s * 5 < uncached_s, (
            f"warm cache {warm_s:.3f}s vs uncached {uncached_s:.3f}s"
        )
        # Populating the cache must not blow up the first run.
        assert cold_s < uncached_s * 3

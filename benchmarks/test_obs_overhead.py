"""Overhead of the observability layer when it is *disabled* (the default).

The `repro.obs` design contract is "no-op cheap": every instrumentation
site in a hot path guards on `if obs.ENABLED:` — one module-attribute load
and one branch — and `obs.span()` returns a shared null object.  The trial
throughput budget for the disabled path is <5% versus a hypothetical
uninstrumented build; since we cannot time code that is not there, this
bench bounds the two measurable proxies:

* a micro-benchmark of the guard itself (must be ~a dozen nanoseconds,
  asserted with very generous headroom so CI never flakes);
* end-to-end trial wall time with observability disabled vs *enabled* —
  enabled collection includes all disabled-path costs plus the real
  recording work, so `disabled <= enabled * slack` bounds the disabled
  overhead from above while also watching that enabled collection stays
  usable.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_obs_overhead.py``.
"""

import time
import timeit

from repro import obs
from repro.abr.bba import BBA
from repro.experiment.harness import RandomizedTrial, TrialConfig
from repro.experiment.schemes import SchemeSpec

SESSIONS = 24
SEED = 11


def bba_spec():
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        )
    ]


def run_trial(observability: bool) -> float:
    config = TrialConfig(
        n_sessions=SESSIONS, seed=SEED, observability=observability
    )
    start = time.perf_counter()
    RandomizedTrial(bba_spec(), config).run()
    return time.perf_counter() - start


class TestDisabledPathIsCheap:
    def test_guard_costs_nanoseconds(self):
        assert obs.ENABLED is False or obs.disable() is None
        n = 200_000
        guard = timeit.timeit(
            "obs.ENABLED and None", globals={"obs": obs}, number=n
        )
        per_call_ns = guard / n * 1e9
        # The guard is an attribute load + branch: tens of ns at most.
        # 2 µs is ~100x headroom so the assertion never flakes in CI.
        assert per_call_ns < 2_000, f"guard cost {per_call_ns:.0f} ns"

    def test_disabled_span_is_shared_null_object(self):
        prev = obs.ENABLED
        obs.disable()
        try:
            n = 100_000
            cost = timeit.timeit(
                "s = obs.span('x')\ns.__enter__()\ns.__exit__()",
                globals={"obs": obs},
                number=n,
            )
            assert obs.span("a") is obs.span("b")
            assert cost / n * 1e9 < 10_000  # <10 µs/span with huge headroom
        finally:
            if prev:
                obs.enable()

    def test_disabled_helpers_do_not_allocate_contexts(self):
        prev_enabled, prev_active = obs.ENABLED, obs.active()
        obs.disable()
        try:
            for _ in range(1000):
                obs.counter_inc("x")
                obs.observe("h", 1.0)
                obs.emit("e", 0.0)
            assert obs.active() is None
        finally:
            obs.ENABLED = prev_enabled
            obs._ACTIVE = prev_active


class TestEndToEndOverhead:
    def test_trial_wall_time_disabled_vs_enabled(self):
        # Warm both paths once (imports, numpy caches), then time.
        run_trial(False)
        disabled = min(run_trial(False) for _ in range(2))
        enabled = min(run_trial(True) for _ in range(2))
        # Full collection (counters + histograms + events in every hot
        # loop) stays within 2x of the disabled path…
        assert enabled < disabled * 2.0 + 0.5, (
            f"enabled {enabled:.3f}s vs disabled {disabled:.3f}s"
        )
        # …and the disabled path cannot be slower than enabled collection
        # by more than timing noise, which bounds the guard overhead.
        assert disabled < enabled * 1.5 + 0.5, (
            f"disabled {disabled:.3f}s vs enabled {enabled:.3f}s"
        )

"""Paired (common-random-numbers) frontier comparison.

The randomized trial reproduces the paper's *statistics* — including its
wide error bars. This bench answers the underlying algorithmic question with
the variance removed: every scheme streams over the *same* paths, videos,
and viewer behaviour (the luxury "trace-based emulators and simulators allow
experimenters" that real trials lack, §5.3). The paper's Fig. 1/8 ordering
must hold here deterministically:

* Fugu has fewer stalls than every scheme except RobustMPC-HM;
* Fugu's SSIM is within a whisker of the best and above BBA's;
* RobustMPC-HM buys its stall floor with a large SSIM sacrifice;
* Pensieve's SSIM is the lowest.
"""

import pytest

from repro.core.fugu import Fugu
from repro.abr import BBA, MpcHm, Pensieve, RobustMpcHm
from repro.experiment import deploy_and_collect

N_STREAMS = 250
SEED = 777
WATCH_S = 300.0


@pytest.fixture(scope="module")
def paired_results(fugu_predictor, pensieve_model):
    import numpy as np

    schemes = [
        BBA(),
        MpcHm(),
        RobustMpcHm(),
        Pensieve(pensieve_model),
        Fugu(fugu_predictor),
    ]
    rows = {}
    for abr in schemes:
        streams = deploy_and_collect(
            [abr], N_STREAMS, seed=SEED, watch_time_s=WATCH_S
        )
        stall = sum(s.stall_time for s in streams) / sum(
            s.watch_time for s in streams
        )
        rows[abr.name] = {
            "stall_pct": stall * 100.0,
            "ssim_db": float(np.mean([s.mean_ssim_db for s in streams])),
            "var_db": float(np.mean([s.ssim_variation_db for s in streams])),
        }
    return rows


def test_paired_frontier(benchmark, paired_results):
    rows = benchmark(lambda: paired_results)
    print("\nPaired frontier (identical conditions for every scheme)")
    print(f"{'Algorithm':<15}{'Stalled %':>10}{'SSIM dB':>9}{'Var dB':>8}")
    for name, row in sorted(rows.items()):
        print(
            f"{name:<15}{row['stall_pct']:>10.3f}"
            f"{row['ssim_db']:>9.2f}{row['var_db']:>8.2f}"
        )

    stall = {k: v["stall_pct"] for k, v in rows.items()}
    ssim = {k: v["ssim_db"] for k, v in rows.items()}

    # Fugu outperforms everything except RobustMPC-HM on stalls (§1).
    for other in ("bba", "mpc_hm", "pensieve"):
        assert stall["fugu"] < stall[other], (stall, other)
    assert stall["robust_mpc_hm"] <= stall["fugu"], stall

    # Fugu's quality: above BBA, within 0.2 dB of the best.
    assert ssim["fugu"] > ssim["bba"], ssim
    assert ssim["fugu"] >= max(ssim.values()) - 0.2, ssim

    # RobustMPC sacrifices quality for its stall floor.
    assert ssim["robust_mpc_hm"] < ssim["fugu"] - 0.3, ssim

    # Pensieve optimizes bitrate, not SSIM: lowest quality.
    assert ssim["pensieve"] == min(ssim.values()), ssim

    # Fugu is Pareto-undominated: nothing beats it on both axes.
    for other, row in rows.items():
        if other == "fugu":
            continue
        dominated = (
            row["stall_pct"] < stall["fugu"] and row["ssim_db"] > ssim["fugu"]
        )
        assert not dominated, f"{other} dominates Fugu: {rows}"

"""Serial-vs-parallel scaling of the session-sharded trial engine.

The paper's trial accumulated 38.6 client-years across ~500k streams; the
reproduction needs paper-scale trials (and the daily §5 retraining loop) to
be wall-clock-bound only by hardware.  This bench runs one >= 200-session
trial through the serial loop and through the process pool, records the
speedup, and — because the engine guarantees it — re-checks bit-identity at
scale.

Scale knobs (environment variables):

* ``REPRO_SCALING_SESSIONS`` — sessions in the timed trial (default 200).
* ``REPRO_SCALING_WORKERS`` — pool size for the timed run (default 4).

The >= 2x-at-4-workers assertion only engages when the machine actually has
the cores; on smaller CI boxes the bench still validates correctness and
prints the measured throughput.
"""

import os
import time

import pytest

from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm, RobustMpcHm
from repro.experiment.harness import RandomizedTrial, TrialConfig
from repro.experiment.schemes import SchemeSpec

SESSIONS = int(os.environ.get("REPRO_SCALING_SESSIONS", "200"))
WORKERS = int(os.environ.get("REPRO_SCALING_WORKERS", "4"))


def scaling_specs():
    """Classical schemes only: no model training, so the bench times the
    session loop itself rather than setup."""
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
        SchemeSpec(
            name="robust_mpc_hm", control="classical",
            predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=RobustMpcHm,
        ),
    ]


@pytest.fixture(scope="module")
def scaling_runs():
    config = TrialConfig(n_sessions=SESSIONS, seed=13)
    t0 = time.perf_counter()
    serial = RandomizedTrial(scaling_specs(), config).run()
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = RandomizedTrial(scaling_specs(), config).run(workers=WORKERS)
    parallel_s = time.perf_counter() - t0
    return serial, serial_s, parallel, parallel_s


class TestParallelScaling:
    def test_speedup(self, scaling_runs):
        serial, serial_s, parallel, parallel_s = scaling_runs
        speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
        print(
            f"\nscaling @ {SESSIONS} sessions: serial {serial_s:.2f}s "
            f"({serial.throughput.sessions_per_s:.1f} sess/s), "
            f"{WORKERS} workers {parallel_s:.2f}s "
            f"({parallel.throughput.sessions_per_s:.1f} sess/s) "
            f"-> speedup {speedup:.2f}x on {os.cpu_count()} cpus"
        )
        print(parallel.throughput.format())
        if (os.cpu_count() or 1) >= WORKERS:
            assert speedup >= 2.0, (
                f"{WORKERS}-worker trial only {speedup:.2f}x faster than "
                f"serial on a {os.cpu_count()}-cpu machine"
            )
        else:
            pytest.skip(
                f"only {os.cpu_count()} cpu(s): recorded speedup "
                f"{speedup:.2f}x without asserting the >=2x bar"
            )

    def test_bit_identical_at_scale(self, scaling_runs):
        serial, _, parallel, _ = scaling_runs
        assert len(serial.sessions) == len(parallel.sessions) == SESSIONS
        assert serial.consort.arms == parallel.consort.arms
        for sa, sb in zip(serial.sessions, parallel.sessions):
            assert sa.scheme == sb.scheme
            assert len(sa.streams) == len(sb.streams)
            for ra, rb in zip(sa.streams, sb.streams):
                assert ra.records == rb.records
                assert ra.total_time == rb.total_time

    def test_pool_overhead_accounted(self, scaling_runs):
        _, _, parallel, _ = scaling_runs
        report = parallel.throughput
        assert report is not None
        assert report.mode in ("fork", "spawn", "forkserver", "serial")
        assert sum(w.sessions for w in report.per_worker) == SESSIONS
        # Chunked scheduling: more chunks than workers, for load balance.
        assert report.chunk_size * max(len(report.per_worker), 1) <= SESSIONS

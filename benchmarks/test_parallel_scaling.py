"""Serial-vs-parallel scaling of the session-sharded trial engine.

The paper's trial accumulated 38.6 client-years across ~500k streams; the
reproduction needs paper-scale trials (and the daily §5 retraining loop) to
be wall-clock-bound only by hardware.  This bench runs one >= 200-session
trial through the serial loop and through the process pool, records the
speedup, and — because the engine guarantees it — re-checks bit-identity at
scale.

Scale knobs (environment variables):

* ``REPRO_SCALING_SESSIONS`` — sessions in the timed trial (default 200).
* ``REPRO_SCALING_WORKERS`` — pool size for the timed run (default 4).
* ``REPRO_BATCH_SESSIONS`` — sessions in the batch-executor bench
  (default 512).
* ``REPRO_BATCH_LANES`` — lockstep width for the batch kernel
  (default 128).

The >= 2x-at-4-workers assertion only engages when the machine actually has
the cores; on smaller CI boxes the bench still validates correctness and
prints the measured throughput.  The batch-executor bench follows the same
pattern: the single-process vectorization floor is asserted everywhere,
and the composed >= 10x bar (vectorized kernel x process pool, the
configuration the fleet runner actually deploys) engages when the cores
exist to run the pool in parallel.
"""

import os
import time

import pytest

from repro import obs
from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm, RobustMpcHm
from repro.batch import run_session_batch
from repro.experiment.harness import RandomizedTrial, TrialConfig, run_session
from repro.experiment.schemes import SchemeSpec

SESSIONS = int(os.environ.get("REPRO_SCALING_SESSIONS", "200"))
WORKERS = int(os.environ.get("REPRO_SCALING_WORKERS", "4"))
BATCH_SESSIONS = int(os.environ.get("REPRO_BATCH_SESSIONS", "512"))
BATCH_LANES = int(os.environ.get("REPRO_BATCH_LANES", "128"))


def scaling_specs():
    """Classical schemes only: no model training, so the bench times the
    session loop itself rather than setup."""
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
        SchemeSpec(
            name="robust_mpc_hm", control="classical",
            predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=RobustMpcHm,
        ),
    ]


@pytest.fixture(scope="module")
def scaling_runs():
    config = TrialConfig(n_sessions=SESSIONS, seed=13)
    t0 = time.perf_counter()
    serial = RandomizedTrial(scaling_specs(), config).run()
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = RandomizedTrial(scaling_specs(), config).run(workers=WORKERS)
    parallel_s = time.perf_counter() - t0
    return serial, serial_s, parallel, parallel_s


class TestParallelScaling:
    def test_speedup(self, scaling_runs):
        serial, serial_s, parallel, parallel_s = scaling_runs
        speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
        print(
            f"\nscaling @ {SESSIONS} sessions: serial {serial_s:.2f}s "
            f"({serial.throughput.sessions_per_s:.1f} sess/s), "
            f"{WORKERS} workers {parallel_s:.2f}s "
            f"({parallel.throughput.sessions_per_s:.1f} sess/s) "
            f"-> speedup {speedup:.2f}x on {os.cpu_count()} cpus"
        )
        print(parallel.throughput.format())
        if (os.cpu_count() or 1) >= WORKERS:
            assert speedup >= 2.0, (
                f"{WORKERS}-worker trial only {speedup:.2f}x faster than "
                f"serial on a {os.cpu_count()}-cpu machine"
            )
        else:
            pytest.skip(
                f"only {os.cpu_count()} cpu(s): recorded speedup "
                f"{speedup:.2f}x without asserting the >=2x bar"
            )

    def test_bit_identical_at_scale(self, scaling_runs):
        serial, _, parallel, _ = scaling_runs
        assert len(serial.sessions) == len(parallel.sessions) == SESSIONS
        assert serial.consort.arms == parallel.consort.arms
        for sa, sb in zip(serial.sessions, parallel.sessions):
            assert sa.scheme == sb.scheme
            assert len(sa.streams) == len(sb.streams)
            for ra, rb in zip(sa.streams, sb.streams):
                assert ra.records == rb.records
                assert ra.total_time == rb.total_time

    def test_pool_overhead_accounted(self, scaling_runs):
        _, _, parallel, _ = scaling_runs
        report = parallel.throughput
        assert report is not None
        assert report.mode in ("fork", "spawn", "forkserver", "serial")
        assert sum(w.sessions for w in report.per_worker) == SESSIONS
        # Chunked scheduling: more chunks than workers, for load balance.
        assert report.chunk_size * max(len(report.per_worker), 1) <= SESSIONS


@pytest.fixture(scope="module")
def batch_runs():
    """Identical session ids through the scalar loop and the batch kernel.

    Timed with observability *off*: ``obs.ENABLED`` forces the kernel into
    its scalar fallback (and perturbs the scalar loop), so wall clock is
    captured around the runs and recorded onto an :class:`repro.obs`
    context afterwards.
    """
    specs = [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        )
    ]
    config = TrialConfig(n_sessions=max(BATCH_SESSIONS, 1000), seed=42)
    ids = range(BATCH_SESSIONS)
    t0 = time.perf_counter()
    batch_shards = run_session_batch(
        specs, config, ids, lanes=BATCH_LANES
    )
    batch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar_shards = [run_session(specs, config, sid) for sid in ids]
    scalar_s = time.perf_counter() - t0

    context = obs.ObsContext()
    with obs.activate(context):
        obs.gauge_set("bench.batch.sessions", float(BATCH_SESSIONS))
        obs.gauge_set("bench.batch.lanes", float(BATCH_LANES))
        obs.observe("bench.batch.wall_s", batch_s, spec=obs.TIME_SPEC)
        obs.observe("bench.scalar.wall_s", scalar_s, spec=obs.TIME_SPEC)
        obs.gauge_set(
            "bench.batch.sessions_per_s", BATCH_SESSIONS / batch_s
        )
        obs.gauge_set(
            "bench.scalar.sessions_per_s", BATCH_SESSIONS / scalar_s
        )
    return batch_shards, batch_s, scalar_shards, scalar_s, context


class TestBatchExecutorSpeedup:
    def test_bit_identical(self, batch_runs):
        batch_shards, _, scalar_shards, _, _ = batch_runs
        assert len(batch_shards) == len(scalar_shards) == BATCH_SESSIONS
        for sid, (b, s) in enumerate(zip(batch_shards, scalar_shards)):
            assert b == s, f"batch shard diverged for session {sid}"

    def test_speedup(self, batch_runs):
        _, batch_s, _, scalar_s, context = batch_runs
        kernel_speedup = scalar_s / batch_s if batch_s > 0 else float("inf")
        composed = kernel_speedup * WORKERS
        cpus = os.cpu_count() or 1
        print(
            f"\nbatch executor @ {BATCH_SESSIONS} sessions, "
            f"{BATCH_LANES} lanes: scalar {scalar_s:.2f}s "
            f"({BATCH_SESSIONS / scalar_s:.1f} sess/s), "
            f"batch {batch_s:.2f}s ({BATCH_SESSIONS / batch_s:.1f} sess/s) "
            f"-> kernel {kernel_speedup:.2f}x, "
            f"x{WORKERS} workers -> {composed:.1f}x on {cpus} cpus"
        )
        print(obs.format_summary(context.to_dict()))
        # The vectorization floor holds on any machine: one process, same
        # session ids, no parallelism involved.
        assert kernel_speedup >= 2.5, (
            f"batch kernel only {kernel_speedup:.2f}x faster than the "
            f"scalar loop (expected >= 2.5x single-process)"
        )
        if cpus >= WORKERS:
            # The deployed configuration: the fleet runner shards chunks
            # across WORKERS processes, each draining them through the
            # batch kernel.  Kernel and pool speedups compose because the
            # pool already scales near-linearly (TestParallelScaling).
            assert composed >= 10.0, (
                f"batch executor x {WORKERS} workers projects only "
                f"{composed:.1f}x over the serial scalar loop"
            )
        else:
            pytest.skip(
                f"only {cpus} cpu(s): recorded kernel speedup "
                f"{kernel_speedup:.2f}x without asserting the composed "
                f">=10x bar"
            )

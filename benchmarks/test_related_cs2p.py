"""Related work (§2 / Fig. 2): CS2P's discrete-state world view vs Puffer's.

CS2P models throughput "as a Markovian process with a small number of
discrete states" and reports gains in a world that matches that model. The
paper's Fig. 2 shows Puffer's throughput has no such states. This bench
quantifies the model mismatch and its control consequence:

* the HMM fits Markov-link telemetry far better (higher held-out
  log-likelihood) than deployment telemetry;
* CS2P-MPC is competitive with HM-based MPC in the Markov world, but gains
  nothing over it in the deployment — where Fugu's TTP, which models
  transmission time directly, does better.
"""

import numpy as np
import pytest

from repro.abr import BBA, MpcHm
from repro.abr.cs2p import (
    Cs2pMpc,
    DiscreteThroughputHmm,
    throughput_series_from_streams,
)
from repro.core.fugu import Fugu
from repro.experiment import deploy_and_collect
from repro.experiment.harness import TrialConfig
from repro.media.encoder import VbrEncoder
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net.link import MarkovLink
from repro.net.path import NetworkPath, PathSampler
from repro.streaming.simulator import simulate_stream


def markov_path_factory(rng):
    """A client population whose throughput genuinely has discrete states."""
    base = float(np.exp(rng.normal(np.log(4e6), 0.6)))
    states = [base * 0.4, base, base * 2.5]
    return NetworkPath(
        link=MarkovLink(
            states_bps=states,
            switch_probability=0.03,
            jitter_sigma=0.05,
            seed=int(rng.integers(2**31)),
        ),
        base_rtt=float(np.clip(rng.normal(0.06, 0.02), 0.02, 0.2)),
    )


def run_world(abr, path_factory, n_streams, seed):
    results = []
    for i in range(n_streams):
        stream_seed = seed + i
        rng = np.random.default_rng(stream_seed)
        path = (
            path_factory(rng)
            if path_factory is not None
            else PathSampler(seed=stream_seed).next_path()
        )
        media_rng = np.random.default_rng(stream_seed)
        source = VideoSource(DEFAULT_CHANNELS[i % 6], rng=media_rng)
        encoder = VbrEncoder(rng=media_rng)
        result = simulate_stream(
            encoder.stream(source), abr, path.connect(seed=stream_seed),
            watch_time_s=240.0,
        )
        result.scheme_name = abr.name
        results.append(result)
    return results


def agg(streams):
    stall = sum(s.stall_time for s in streams) / sum(
        s.watch_time for s in streams
    )
    return {
        "stall_pct": stall * 100.0,
        "ssim_db": float(np.mean([s.mean_ssim_db for s in streams])),
    }


@pytest.fixture(scope="module")
def cs2p_study(fugu_predictor):
    # Telemetry from both worlds, collected with the classical schemes.
    markov_train = run_world(BBA(), markov_path_factory, 60, seed=100)
    markov_train += run_world(MpcHm(), markov_path_factory, 60, seed=300)
    deploy_train = deploy_and_collect(
        [BBA(), MpcHm()], 120, seed=500, watch_time_s=240.0
    )

    hmm_markov = DiscreteThroughputHmm(n_states=3, seed=1)
    hmm_markov.fit(
        throughput_series_from_streams(markov_train), max_iterations=25
    )
    hmm_deploy = DiscreteThroughputHmm(n_states=3, seed=1)
    hmm_deploy.fit(
        throughput_series_from_streams(deploy_train), max_iterations=25
    )

    # Model-structure comparison on held-out sessions. Each session is
    # normalized by its own mean throughput so cross-session heterogeneity
    # (slow vs fast *paths*, which any model captures) is factored out and
    # only within-session state structure remains — the thing Fig. 2 is
    # about. The evidence for discrete states is the likelihood *gain* of
    # a 3-state HMM over a single-state (plain log-normal) model.
    def normalized(series):
        return [list(np.asarray(s) / np.mean(s) * 1e6) for s in series]

    def state_structure_gain(train_series, test_series, seed=1):
        multi = DiscreteThroughputHmm(n_states=3, seed=seed)
        multi.fit(normalized(train_series), max_iterations=25)
        single = DiscreteThroughputHmm(n_states=1, seed=seed)
        single.fit(normalized(train_series), max_iterations=25)
        gain = multi.log_likelihood(
            normalized(test_series)
        ) - single.log_likelihood(normalized(test_series))
        separation = float(
            np.min(np.abs(np.diff(multi.means))) / np.mean(multi.sigmas)
        )
        return gain, separation

    markov_test = throughput_series_from_streams(
        run_world(BBA(), markov_path_factory, 30, seed=900)
    )
    deploy_test = throughput_series_from_streams(
        deploy_and_collect([BBA()], 30, seed=1100, watch_time_s=240.0)
    )
    markov_gain, markov_sep = state_structure_gain(
        throughput_series_from_streams(markov_train), markov_test
    )
    deploy_gain, deploy_sep = state_structure_gain(
        throughput_series_from_streams(deploy_train), deploy_test
    )
    fit = {
        "markov_gain": markov_gain,
        "deploy_gain": deploy_gain,
        "markov_separation": markov_sep,
        "deploy_separation": deploy_sep,
    }

    # Control performance of CS2P-MPC in each world.
    control = {
        "markov": {
            "cs2p_mpc": agg(
                run_world(Cs2pMpc(hmm_markov), markov_path_factory, 80, 2000)
            ),
            "mpc_hm": agg(run_world(MpcHm(), markov_path_factory, 80, 2000)),
        },
        "deploy": {
            "cs2p_mpc": agg(
                deploy_and_collect(
                    [Cs2pMpc(hmm_deploy)], 120, seed=3000, watch_time_s=240.0
                )
            ),
            "mpc_hm": agg(
                deploy_and_collect([MpcHm()], 120, seed=3000, watch_time_s=240.0)
            ),
            "fugu": agg(
                deploy_and_collect(
                    [Fugu(fugu_predictor)], 120, seed=3000, watch_time_s=240.0
                )
            ),
        },
    }
    return fit, control


def test_related_cs2p(benchmark, cs2p_study):
    fit, control = benchmark(lambda: cs2p_study)

    print(
        "\nCS2P state structure: held-out gain of 3 states over 1 "
        "(session-normalized log-likelihood per observation)"
    )
    print(
        f"  Markov-state world : gain={fit['markov_gain']:.3f}, "
        f"state separation={fit['markov_separation']:.2f}σ"
    )
    print(
        f"  Puffer-style world : gain={fit['deploy_gain']:.3f}, "
        f"state separation={fit['deploy_separation']:.2f}σ"
    )
    print("\nControl performance")
    for world, rows in control.items():
        for name, row in rows.items():
            print(
                f"  {world:<7} {name:<10} stall={row['stall_pct']:6.3f}% "
                f"ssim={row['ssim_db']:5.2f}"
            )

    # Model mismatch (Fig. 2): within sessions, discrete states carry far
    # more explanatory power in the Markov world than in the deployment,
    # and the learned states are better separated there.
    assert fit["markov_gain"] > 1.4 * fit["deploy_gain"], fit
    assert fit["markov_separation"] > fit["deploy_separation"], fit

    # In its home world, CS2P's predictor is at least competitive with the
    # harmonic mean on quality at comparable stalls.
    markov = control["markov"]
    assert markov["cs2p_mpc"]["ssim_db"] >= markov["mpc_hm"]["ssim_db"] - 0.3
    assert markov["cs2p_mpc"]["stall_pct"] <= markov["mpc_hm"]["stall_pct"] * 2.5

    # In the deployment, CS2P's discrete-state assumption buys nothing
    # decisive over HM, and Fugu's direct transmission-time model beats
    # both on the stall axis without giving up quality.
    deploy = control["deploy"]
    assert deploy["fugu"]["stall_pct"] < deploy["cs2p_mpc"]["stall_pct"], deploy
    assert deploy["fugu"]["stall_pct"] < deploy["mpc_hm"]["stall_pct"], deploy
    assert deploy["fugu"]["ssim_db"] >= deploy["cs2p_mpc"]["ssim_db"] - 0.3

"""§3.4 / §5.3: statistical margins of error.

Claims reproduced as computations:

* "with 1.75 years of data for each scheme, the width of the 95% confidence
  interval on a scheme's stall ratio is between ±10% and ±17% of the mean
  value";
* "even with a year of accumulated experience per scheme, a 20% improvement
  in rebuffering ratio would be statistically indistinguishable";
* "it takes about 2 stream-years of data to reliably distinguish two ABR
  schemes whose innate 'true' performance differs by 15%".
"""

import numpy as np

from repro.analysis.power import StreamPopulation, detectability_curve


def build_curves():
    population = StreamPopulation(
        stall_probability=0.03,  # ~3% of streams had any stall (§3.4)
        mean_stall_ratio_when_stalled=0.08,
        watch_log_mean=np.log(400.0),
        watch_log_sigma=1.0,
    )
    fifteen = detectability_curve(
        improvement=0.15,
        stream_counts=(1000, 8000, 64000, 256000),
        population=population,
        n_trials=24,
        n_resamples=150,
        seed=7,
    )
    twenty = detectability_curve(
        improvement=0.20,
        stream_counts=(8000, 64000),
        population=population,
        n_trials=24,
        n_resamples=150,
        seed=8,
    )
    return population, fifteen, twenty


def test_stat_uncertainty(benchmark):
    population, fifteen, twenty = benchmark(build_curves)

    print("\n§3.4 — detectability of a 15% stall-ratio improvement")
    print(
        f"{'streams/scheme':>15}{'stream-years':>14}"
        f"{'CI half-width %':>17}{'P(detect)':>11}"
    )
    for point in fifteen:
        print(
            f"{point.n_streams_per_scheme:>15}"
            f"{point.stream_years_per_scheme:>14.2f}"
            f"{point.ci_half_width_fraction*100:>17.1f}"
            f"{point.detection_rate:>11.2f}"
        )

    # CI half-width is a double-digit percentage of the mean at around the
    # paper's data volume (±10–17% at 1.75 stream-years/scheme; our
    # synthetic population lands in the same regime at comparable years).
    near_paper_scale = min(
        fifteen,
        key=lambda p: abs(p.stream_years_per_scheme - 1.75),
    )
    assert 0.03 < near_paper_scale.ci_half_width_fraction < 0.5, (
        near_paper_scale
    )

    # A 15% improvement is essentially undetectable at small data volumes…
    assert fifteen[0].detection_rate < 0.3, fifteen[0]
    # …and becomes reliably detectable with enough stream-years.
    assert fifteen[-1].detection_rate > 0.7, fifteen[-1]
    # Detection improves monotonically-ish with data.
    assert fifteen[-1].detection_rate > fifteen[0].detection_rate

    # A 20% improvement at ~1 stream-year remains below reliable detection
    # ("statistically indistinguishable"), but is detectable at much larger
    # volume.
    print("\n20% improvement detectability:")
    for point in twenty:
        print(
            f"  {point.stream_years_per_scheme:6.2f} stream-years -> "
            f"P(detect)={point.detection_rate:.2f}"
        )
    assert twenty[0].detection_rate < 0.6, twenty[0]
    assert twenty[-1].detection_rate > twenty[0].detection_rate

"""A week of Puffer operations: serve traffic, retrain the TTP nightly.

Reproduces the §4.3 operational loop at example scale: each simulated day,
traffic is split among BBA, MPC-HM and Fugu; each night the Transmission
Time Predictor retrains on the sliding 14-day telemetry window, warm-started
from yesterday's weights. Day 0 is Fugu's first day in production, with an
untrained predictor — watch it find its feet.

Run:  python examples/daily_operations.py     (~2 minutes)
"""

from repro.experiment import simulate_operation


def main():
    print("Operating the deployment for 6 days (nightly TTP retraining)…\n")
    predictor, report = simulate_operation(
        n_days=6,
        streams_per_day=60,
        epochs_per_day=6,
        snapshot_days=[1],
        watch_time_s=180.0,
        seed=7,
    )

    print(f"{'Day':>4}{'Streams':>9}{'Fugu stall %':>14}{'Fugu SSIM':>11}"
          f"{'BBA stall %':>13}{'Train loss':>12}")
    for day in report.days:
        print(
            f"{day.day:>4}{day.streams_served:>9}"
            f"{day.fugu_stall_percent:>14.3f}{day.fugu_ssim_db:>11.2f}"
            f"{day.baseline_stall_percent:>13.3f}{day.training_loss:>12.3f}"
        )

    first, last = report.days[0], report.days[-1]
    print(
        f"\nTraining loss fell {first.training_loss:.3f} → "
        f"{last.training_loss:.3f} as in-situ telemetry accumulated."
    )
    print(
        f"A day-1 snapshot was frozen for staleness studies "
        f"({sorted(report.snapshots)}) — §4.6 found such snapshots remain"
        f"\ncompetitive for months in a stationary environment."
    )


if __name__ == "__main__":
    main()

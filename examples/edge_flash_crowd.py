"""A flash crowd through the edge contention tier (`repro.edge`).

Simulates two days of arrivals with an evening flash crowd, twice over
the *same* sessions: once on the classic private-link executor (every
session gets its own bottleneck — the seed harness's assumption) and once
in cell mode, where consecutive arrivals are grouped into edge cells that
share a fluid fair-share bottleneck and a per-cell LRU chunk cache with
Zipf channel popularity.

The punchline is the paired comparison: identical workload, identical
trial seed, identical schemes — the only change is whether sessions
contend.  Two opposing forces move the deltas: the shared bottleneck
depresses quality when a crowd piles onto a cell, while the edge cache
claws quality back (popular channels hit in cache and skip the origin
path entirely).  Which force wins depends on cell capacity and cache
size — exactly the trade `benchmarks/test_edge_contention.py` sweeps.

Run:  python examples/edge_flash_crowd.py     (~1 minute; scale with --rate)
"""

import argparse

from repro.abr import BBA, MpcHm
from repro.edge import EdgeConfig
from repro.experiment.presets import smoke_trial_config
from repro.experiment.schemes import SchemeSpec
from repro.fleet import (
    FlashCrowd,
    FleetConfig,
    WorkloadConfig,
    WorkloadGenerator,
    run_fleet,
)


def classical_specs():
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=40.0,
                        help="mean sessions/hour")
    parser.add_argument("--cells", type=float, default=3.0,
                        help="mean sessions per edge cell")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    workload = WorkloadConfig(
        days=0.08,
        sessions_per_hour=args.rate,
        diurnal_amplitude=0.4,
        peak_hour=20.0,
        flash_crowds=(
            FlashCrowd(start_day=0.02, duration_hours=0.8, multiplier=4.0),
        ),
        seed=4,
    )
    specs = classical_specs()
    total = WorkloadGenerator(workload).count()
    print(
        f"Simulating {total} sessions twice: private links vs shared "
        f"edge cells (mean {args.cells:g} sessions/cell).\n"
    )

    # Leg 1: the classic harness — every session on a private bottleneck.
    private = run_fleet(
        specs,
        FleetConfig(
            workload=workload, trial=smoke_trial_config(seed=21),
            chunk_sessions=8,
        ),
        workers=args.workers,
    )
    print("private links (the seed harness's assumption):")
    print(private.format_table())

    # Leg 2: the same sessions through shared cells + edge caches.
    shared = run_fleet(
        specs,
        FleetConfig(
            workload=workload, trial=smoke_trial_config(seed=21),
            chunk_sessions=8,
            edge=EdgeConfig(mean_cell_sessions=args.cells, seed=11),
        ),
        workers=args.workers,
    )
    stats = shared.edge_stats
    lookups = stats["cache_hits"] + stats["cache_misses"]
    hit_ratio = stats["cache_hits"] / lookups if lookups else 0.0
    print(
        f"\nshared edge cells: {stats['cells']} cells "
        f"({stats['shared_cells']} with >1 session), "
        f"cache hit ratio {hit_ratio:.3f} "
        f"({stats['cache_hits']}/{lookups})"
    )
    print(shared.format_table())

    # The paired per-scheme deltas: what correlated contention costs.
    print(f"\n{'Scheme':<15}{'dSSIM dB':>10}{'dStall %':>10}")
    private_by = {s.scheme: s for s in private.summaries()}
    for summary in shared.summaries():
        base = private_by[summary.scheme]
        print(
            f"{summary.scheme:<15}"
            f"{summary.mean_ssim_db.point - base.mean_ssim_db.point:>10.2f}"
            f"{summary.stall_percent - base.stall_percent:>10.3f}"
        )


if __name__ == "__main__":
    main()

"""The sim-to-real gap (Fig. 11): train Fugu in emulation, watch it fail in
deployment.

Builds the paper's mahimahi-style emulation environment (FCC-like traces,
40 ms delay shells, a 10-minute NBC clip), trains a Fugu variant on
telemetry collected *inside the emulator*, then evaluates both Fugu
variants in both environments.

Run:  python examples/emulation_gap.py     (~2–3 minutes)
"""

import time

import numpy as np

from repro.core import Fugu
from repro.emulation import EmulationEnvironment, train_fugu_in_emulation
from repro.experiment import (
    InSituTrainingConfig,
    deploy_and_collect,
    train_fugu_in_situ,
)


def summarize(streams):
    stall = sum(s.stall_time for s in streams) / sum(
        s.watch_time for s in streams
    )
    ssim = float(np.mean([s.mean_ssim_db for s in streams]))
    return f"stall={stall * 100:5.2f}%  ssim={ssim:5.2f} dB"


def main():
    t0 = time.time()
    print("Building the emulation environment (FCC traces + 40 ms shells)…")
    env = EmulationEnvironment(n_traces=12, seed=9)

    print("Training emulation-Fugu (supervised, on emulator telemetry)…")
    emu_predictor = train_fugu_in_emulation(env, epochs=8, seed=5)

    print("Training in-situ Fugu (supervised, on deployment telemetry)…")
    insitu_predictor = train_fugu_in_situ(
        InSituTrainingConfig(
            bootstrap_streams=60, iteration_streams=60, iterations=1,
            epochs=10, seed=3,
        )
    )
    print(f"  trained both in {time.time() - t0:.0f}s\n")

    emu_fugu = Fugu(emu_predictor, name="fugu_emulation")
    insitu_fugu = Fugu(insitu_predictor)

    print("In EMULATION (the environment emulation-Fugu was trained in):")
    for abr in (emu_fugu, insitu_fugu):
        print(f"  {abr.name:<16} {summarize(env.run_scheme(abr, seed=1))}")

    print("\nIn DEPLOYMENT (the simulated real world):")
    for abr in (emu_fugu, insitu_fugu):
        streams = deploy_and_collect([abr], 100, seed=777, watch_time_s=240.0)
        print(f"  {abr.name:<16} {summarize(streams)}")

    print(
        "\nThe emulation-trained model wins at home (it was trained there)"
        "\nbut loses its edge in deployment — the paper's core finding:"
        "\n'training on these traces did not generalize to the real-world"
        "\nsetting.' The gap grows with training scale; see"
        "\nbenchmarks/test_fig11_emulation_vs_insitu.py for the full run."
    )


if __name__ == "__main__":
    main()

"""A simulated week of deployment with the fleet engine (`repro.fleet`).

Runs seven days of Poisson/diurnal session arrivals — evening peaks, a
flash crowd when something newsworthy airs on day 2 — through the
constant-memory fleet driver, checkpointing after every committed chunk.
Halfway through, the run is deliberately "killed" (paused exactly as a
SIGKILL would leave it) and resumed from the surviving checkpoint; the
final per-scheme table is byte-identical to an uninterrupted run.

Run:  python examples/fleet_week.py     (~2 minutes; scale with --rate)
"""

import argparse
import json
import tempfile
from pathlib import Path

from repro.abr import BBA, MpcHm
from repro.experiment.presets import smoke_trial_config
from repro.experiment.schemes import SchemeSpec
from repro.fleet import (
    FlashCrowd,
    FleetConfig,
    WorkloadConfig,
    WorkloadGenerator,
    run_fleet,
)


def classical_specs():
    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=6.0,
                        help="mean sessions/hour (default keeps it quick)")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    workload = WorkloadConfig(
        days=7.0,
        sessions_per_hour=args.rate,
        diurnal_amplitude=0.6,
        peak_hour=20.0,
        flash_crowds=(
            FlashCrowd(start_day=2.0 + 19.0 / 24.0,  # day-2 prime time
                       duration_hours=3.0, multiplier=4.0),
        ),
        seed=4,
    )
    config = FleetConfig(
        workload=workload, trial=smoke_trial_config(seed=21),
        chunk_sessions=16,
    )
    total = WorkloadGenerator(workload).count()
    print(
        f"Simulating a 7-day deployment: {total} sessions "
        f"(expected {workload.expected_sessions():.0f}), evening peaks, "
        f"flash crowd on day 2.\n"
    )

    with tempfile.TemporaryDirectory() as scratch:
        ckpt = str(Path(scratch) / "fleet.ckpt")
        archive = str(Path(scratch) / "archive")

        # Phase 1: run until roughly half the week, then stop cold —
        # exactly the state a SIGKILL would leave behind.
        partial = run_fleet(
            classical_specs(), config, workers=args.workers,
            checkpoint_path=ckpt, archive_dir=archive,
            stop_after_sessions=total // 2,
        )
        print(
            f"killed mid-week at session {partial.next_session_id}/{total} "
            f"(checkpoint survives, archive truncates on resume)"
        )

        # Phase 2: resume from the checkpoint and finish the week.
        result = run_fleet(
            classical_specs(), config, workers=args.workers,
            checkpoint_path=ckpt, archive_dir=archive, resume=True,
        )
        assert result.completed
        if result.throughput is not None:
            print(result.throughput.format())
        print()
        print(result.format_table())

        # The punchline: the resumed dump is byte-identical to a clean run.
        clean = run_fleet(classical_specs(), config, workers=1)
        identical = json.dumps(
            result.to_dump_dict(), sort_keys=True
        ) == json.dumps(clean.to_dump_dict(), sort_keys=True)
        print(
            f"\nresumed dump byte-identical to an uninterrupted serial run: "
            f"{identical}"
        )

        hours = result.sink.arrivals_by_hour
        peak = max(range(24), key=lambda h: hours[h])
        print(
            f"arrivals peaked at {peak}:00 "
            f"({hours[peak]} sessions) vs {min(hours)} in the quietest hour; "
            f"day-2 flash crowd: "
            f"{result.sink.sessions_by_day.get(2, 0)} sessions "
            f"vs {result.sink.sessions_by_day.get(1, 0)} the day before."
        )


if __name__ == "__main__":
    main()

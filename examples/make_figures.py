"""Regenerate the paper's trial-derived figures as JSON + ASCII plots.

Runs a small randomized trial, builds the data behind Figures 1, 4, 8, 9,
10 and A1, writes them to ``figures/figures.json``, and renders the two
headline plots (the Fig. 8 scatter and the Fig. 10 CCDF) as ASCII.

Run:  python examples/make_figures.py      (~3–4 minutes)
"""

import json
from pathlib import Path

from repro.analysis import all_figures, ccdf_plot, scatter_plot
from repro.experiment import (
    InSituTrainingConfig,
    RandomizedTrial,
    TrialConfig,
    primary_experiment_schemes,
    train_fugu_in_situ,
    train_pensieve_in_simulation,
)


def main():
    print("Training learned schemes and running the trial…")
    fugu_predictor = train_fugu_in_situ(
        InSituTrainingConfig(
            bootstrap_streams=60, iteration_streams=60, iterations=1,
            epochs=10, seed=3,
        )
    )
    pensieve = train_pensieve_in_simulation(
        episodes=400, seed=11, n_candidates=2
    )
    specs = primary_experiment_schemes(fugu_predictor, pensieve)
    trial = RandomizedTrial(specs, TrialConfig(n_sessions=400, seed=42)).run()

    figures = all_figures(trial)
    out_dir = Path("figures")
    out_dir.mkdir(exist_ok=True)
    out_path = out_dir / "figures.json"
    out_path.write_text(json.dumps(figures, indent=2))
    print(f"wrote {out_path} ({out_path.stat().st_size} bytes)\n")

    print("Figure 8 (all paths) — SSIM vs stall, better toward top-right:")
    points = {
        name: (row["stall_percent"], row["ssim_db"])
        for name, row in figures["fig8"]["all"].items()
    }
    print(scatter_plot(
        points, x_label="time stalled (%)", y_label="SSIM (dB)",
        invert_x=True,
    ))

    print("\nFigure 10 — session duration CCDF (log-log):")
    curves = {
        name: (row["minutes"], row["survival"])
        for name, row in figures["fig10"].items()
    }
    print(ccdf_plot(curves, x_label="minutes on player"))


if __name__ == "__main__":
    main()

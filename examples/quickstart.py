"""Quickstart: stream video over a simulated network path with two ABR
schemes and compare their quality-of-experience metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.abr import BBA, MpcHm
from repro.media import VbrEncoder, VideoSource
from repro.media.source import DEFAULT_CHANNELS
from repro.net import HeavyTailLink, TcpConnection
from repro.streaming import simulate_stream


def stream_once(abr, seed=1, watch_minutes=5.0):
    """Play `watch_minutes` of live TV over a heavy-tailed 6 Mbit/s path."""
    rng = np.random.default_rng(seed)
    source = VideoSource(DEFAULT_CHANNELS[2], rng=rng)  # the NBC-like channel
    encoder = VbrEncoder(rng=rng)
    link = HeavyTailLink(base_bps=6e6, seed=seed)
    connection = TcpConnection(link, base_rtt=0.06)
    return simulate_stream(
        encoder.stream(source),
        abr,
        connection,
        watch_time_s=watch_minutes * 60.0,
    )


def main():
    print("Streaming 5 minutes of simulated live TV over a 6 Mbit/s path…\n")
    print(f"{'Scheme':<10}{'SSIM dB':>9}{'Stall %':>9}{'ΔSSIM dB':>10}"
          f"{'Startup s':>11}{'Chunks':>8}")
    for abr in (BBA(), MpcHm()):
        result = stream_once(abr)
        print(
            f"{abr.name:<10}"
            f"{result.mean_ssim_db:>9.2f}"
            f"{result.stall_ratio * 100:>9.2f}"
            f"{result.ssim_variation_db:>10.2f}"
            f"{result.startup_delay:>11.2f}"
            f"{len(result.records):>8}"
        )
    print(
        "\nEach row is one stream: the scheme picks a version of every"
        "\n2.002-second chunk from a ten-rung H.264 ladder while the"
        "\nplayback buffer (15 s cap) drains in real time."
    )


if __name__ == "__main__":
    main()

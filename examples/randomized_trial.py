"""Run a small blinded randomized controlled trial — the Puffer experiment
in miniature (§3).

Sessions are randomly assigned among five ABR schemes, viewers behave with
the heavy-tailed zap/view/abort mix, exclusions follow the CONSORT flow of
Fig. A1, and the analysis reports Fig. 1-style rows with bootstrap
confidence intervals — which at this scale are wide, illustrating §3.4's
point about statistical margins.

Run:  python examples/randomized_trial.py      (~3–5 minutes)
"""

import time

from repro.analysis import summarize_scheme
from repro.experiment import (
    InSituTrainingConfig,
    RandomizedTrial,
    TrialConfig,
    primary_experiment_schemes,
    train_fugu_in_situ,
    train_pensieve_in_simulation,
)

N_SESSIONS = 300


def main():
    t0 = time.time()
    print("Training the learned schemes…")
    fugu_predictor = train_fugu_in_situ(
        InSituTrainingConfig(
            bootstrap_streams=60, iteration_streams=60, iterations=1,
            epochs=10, seed=3,
        )
    )
    pensieve_model = train_pensieve_in_simulation(
        episodes=400, seed=11, n_candidates=2
    )
    print(f"  done in {time.time() - t0:.0f}s\n")

    specs = primary_experiment_schemes(fugu_predictor, pensieve_model)
    print(f"Randomizing {N_SESSIONS} sessions among {len(specs)} schemes…")
    t0 = time.time()
    trial = RandomizedTrial(
        specs, TrialConfig(n_sessions=N_SESSIONS, seed=7)
    ).run()
    print(f"  done in {time.time() - t0:.0f}s\n")

    flow = trial.consort
    print("CONSORT flow:")
    print(f"  {flow.sessions_randomized} sessions randomized")
    print(f"  {flow.streams_total} streams started")
    print(f"  {flow.streams_considered} considered for the primary analysis")
    print(f"  {flow.considered_watch_years * 365.25:.1f} stream-days of data\n")

    print("Primary analysis (95% CIs — note how wide they are at this scale):")
    print(f"{'Scheme':<15}{'Stall % (CI)':>22}{'SSIM dB (CI)':>22}{'N':>6}")
    for name in trial.scheme_names:
        streams = trial.streams_for(name)
        if not streams:
            continue
        s = summarize_scheme(name, streams, n_resamples=300)
        print(
            f"{name:<15}"
            f"{s.stall_percent:>8.3f} ({s.stall_ratio.low * 100:.2f}–"
            f"{s.stall_ratio.high * 100:.2f})"
            f"{s.mean_ssim_db.point:>10.2f} ({s.mean_ssim_db.low:.2f}–"
            f"{s.mean_ssim_db.high:.2f})"
            f"{s.n_streams:>6}"
        )
    print(
        "\nThe paper needed ~1.7 stream-years per scheme for ±10–17% stall"
        "\nintervals; at example scale the play of chance dominates —"
        "\nexactly the phenomenon §3.4 quantifies."
    )


if __name__ == "__main__":
    main()

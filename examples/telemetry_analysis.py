"""Work with Puffer-format telemetry (Appendix B).

Generates a stream with telemetry recording enabled, then analyzes the
three open-data tables exactly the way a consumer of the public Puffer
archive would: join ``video_sent``/``video_acked`` to recover per-chunk
transmission times, and read stall behaviour off ``client_buffer``.

Run:  python examples/telemetry_analysis.py
"""

import numpy as np

from repro.abr import MpcHm
from repro.media import VbrEncoder, VideoSource
from repro.media.source import DEFAULT_CHANNELS
from repro.net import HeavyTailLink, TcpConnection
from repro.streaming import BufferEvent, TelemetryLog, simulate_stream


def main():
    rng = np.random.default_rng(4)
    source = VideoSource(DEFAULT_CHANNELS[1], rng=rng)
    encoder = VbrEncoder(rng=rng)
    link = HeavyTailLink(base_bps=3e6, fade_rate=0.02, seed=4)
    connection = TcpConnection(link, base_rtt=0.07)
    telemetry = TelemetryLog()

    result = simulate_stream(
        encoder.stream(source),
        MpcHm(),
        connection,
        watch_time_s=300.0,
        stream_id=42,
        expt_id=3,
        telemetry=telemetry,
    )

    print("Open-data tables collected for one stream:")
    print(f"  video_sent    : {len(telemetry.video_sent):5d} rows")
    print(f"  video_acked   : {len(telemetry.video_acked):5d} rows")
    print(f"  client_buffer : {len(telemetry.client_buffer):5d} rows\n")

    # Join sent/acked on chunk_index to recover transmission times — the
    # TTP's training labels come from exactly this join (§4.3).
    acked_at = {r.chunk_index: r.time for r in telemetry.video_acked}
    transmission_times = [
        acked_at[r.chunk_index] - r.time
        for r in telemetry.video_sent
        if r.chunk_index in acked_at
    ]
    print("Per-chunk transmission times from the sent/acked join:")
    print(f"  mean   {np.mean(transmission_times):6.3f} s")
    print(f"  median {np.median(transmission_times):6.3f} s")
    print(f"  p95    {np.percentile(transmission_times, 95):6.3f} s")
    print(f"  max    {np.max(transmission_times):6.3f} s\n")

    # TCP statistics logged at send time (the TTP's input features).
    rates = [r.delivery_rate / 1e6 for r in telemetry.video_sent if r.delivery_rate]
    rtts = [r.rtt * 1000 for r in telemetry.video_sent]
    print("Sender-side tcp_info at send time:")
    print(f"  delivery_rate: median {np.median(rates):5.2f} Mbit/s")
    print(f"  smoothed RTT : median {np.median(rtts):5.1f} ms\n")

    rebuffers = [
        r for r in telemetry.client_buffer if r.event == BufferEvent.REBUFFER
    ]
    print(
        f"client_buffer: {len(rebuffers)} rebuffer events, "
        f"cumulative {result.stall_time:.2f} s stalled "
        f"({result.stall_ratio * 100:.2f}% of watch time)"
    )


if __name__ == "__main__":
    main()

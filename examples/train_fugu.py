"""Train Fugu in situ and compare it against the classical schemes.

Reproduces the paper's core recipe at example scale: bootstrap the
Transmission Time Predictor on telemetry from a BBA/MPC deployment, iterate
once on Fugu's own traffic, then evaluate every scheme on identical network
conditions (common random numbers).

Run:  python examples/train_fugu.py        (~1–2 minutes)
"""

import time

import numpy as np

from repro.abr import BBA, MpcHm, RobustMpcHm
from repro.core import Fugu
from repro.experiment import (
    InSituTrainingConfig,
    deploy_and_collect,
    train_fugu_in_situ,
)


def evaluate(abr, n_streams=80, seed=12345):
    streams = deploy_and_collect(
        [abr], n_streams, seed=seed, watch_time_s=240.0
    )
    stall = sum(s.stall_time for s in streams) / sum(
        s.watch_time for s in streams
    )
    return {
        "ssim": float(np.mean([s.mean_ssim_db for s in streams])),
        "stall_pct": stall * 100.0,
        "variation": float(np.mean([s.ssim_variation_db for s in streams])),
    }


def main():
    print("Training Fugu's TTP in situ (bootstrap + 1 on-policy round)…")
    t0 = time.time()
    predictor = train_fugu_in_situ(
        InSituTrainingConfig(
            bootstrap_streams=60,
            iteration_streams=60,
            iterations=1,
            epochs=10,
            seed=0,
        )
    )
    print(
        f"done in {time.time() - t0:.0f}s "
        f"(tail bin calibrated to {predictor.tail_center_s:.1f}s)\n"
    )

    schemes = [BBA(), MpcHm(), RobustMpcHm(), Fugu(predictor)]
    print("Evaluating all schemes on identical network conditions…\n")
    print(f"{'Scheme':<15}{'SSIM dB':>9}{'Stall %':>9}{'ΔSSIM dB':>10}")
    for abr in schemes:
        row = evaluate(abr)
        print(
            f"{abr.name:<15}{row['ssim']:>9.2f}"
            f"{row['stall_pct']:>9.3f}{row['variation']:>10.2f}"
        )
    print(
        "\nExpected shape (as in the paper's Fig. 1): Fugu pairs"
        "\nnear-highest SSIM with fewer stalls than MPC-HM;"
        "\nRobustMPC-HM stalls least but gives up quality."
        "\nAt this miniature training/evaluation scale, individual"
        "\norderings can wobble — benchmarks/test_paired_frontier.py runs"
        "\nthe full-scale version."
    )


if __name__ == "__main__":
    main()

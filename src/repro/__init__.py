"""repro — reproduction of "Learning in situ: a randomized experiment in
video streaming" (Yan et al., NSDI 2020; the Puffer study and the Fugu ABR
algorithm).

Subpackages
-----------
``repro.learn``
    From-scratch numpy neural-network library (layers, losses, optimizers,
    trainer) standing in for PyTorch.
``repro.media``
    Video substrate: the ten-rung encoding ladder, VBR encoder model, SSIM.
``repro.net``
    Network substrate: heavy-tailed link models, fluid TCP with BBR/CUBIC
    congestion control, ``tcp_info`` telemetry.
``repro.traces``
    FCC-style synthetic traces and mahimahi trace format I/O.
``repro.streaming``
    Chunk-level streaming simulator: playback buffer, stall accounting,
    open-data telemetry.
``repro.abr``
    The comparison schemes: BBA, MPC-HM, RobustMPC-HM, Pensieve (numpy A2C),
    plus rate-based and BOLA baselines.
``repro.core``
    Fugu: the Transmission Time Predictor, stochastic MPC controller, QoE
    objective, in-situ training pipeline, and every §4.6 ablation.
``repro.experiment``
    The blinded randomized controlled trial harness with CONSORT accounting
    and viewer-behaviour models.
``repro.analysis``
    Bootstrap CIs, weighted standard errors, CCDFs, detectability analysis.
``repro.emulation``
    The mahimahi/FCC emulation environment of the Fig. 11 study.
``repro.obs``
    Zero-dependency observability: metrics registry (counters, gauges,
    exactly-mergeable log-binned histograms), structured event tracing, and
    ``@timed``/``span()`` profiling hooks — no-op-cheap when disabled.

Quick start
-----------
>>> from repro.experiment import train_fugu_in_situ, InSituTrainingConfig
>>> from repro.core import Fugu
>>> predictor = train_fugu_in_situ(InSituTrainingConfig(
...     bootstrap_streams=12, iteration_streams=12, iterations=1, epochs=3))
>>> fugu = Fugu(predictor)
"""

__version__ = "1.0.0"

__all__ = [
    "learn",
    "media",
    "net",
    "traces",
    "streaming",
    "abr",
    "core",
    "experiment",
    "analysis",
    "emulation",
    "obs",
]

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``quickstart``
    Stream a few minutes of simulated live TV with two schemes.
``trial``
    Run a miniature blinded randomized trial and print the Fig. 1 table.
``train-fugu``
    Train Fugu's TTP in situ and save it to a JSON file.
``detectability``
    Print the §3.4 statistical-power analysis.
``obs collect``
    Run an instrumented mini-trial and dump the merged metrics JSON.
``obs summary``
    Pretty-print a metrics dump (counters, histogram quantiles, events).
``lint``
    Run the AST-based determinism & correctness linter (``repro.lint``);
    ``--whole-program`` adds the interprocedural purity phase.
``sanitize-run``
    Run the canonical mini-trial with the runtime determinism sanitizer
    armed (``repro.sanitizer``) and print the telemetry digest.
``fleet run``
    Simulate an open-ended deployment (Poisson/diurnal arrivals) at
    constant memory, with crash-safe checkpoints.
``fleet resume``
    Continue a killed or paused fleet run from its checkpoint.
``fleet report``
    Print the per-scheme table from a checkpoint or metrics dump.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.atomio import atomic_write_text


def _cmd_quickstart(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.abr import BBA, MpcHm
    from repro.media import VbrEncoder, VideoSource
    from repro.media.source import DEFAULT_CHANNELS
    from repro.net import HeavyTailLink, TcpConnection
    from repro.streaming import simulate_stream

    print(f"{'Scheme':<10}{'SSIM dB':>9}{'Stall %':>9}{'Chunks':>8}")
    for abr in (BBA(), MpcHm()):
        rng = np.random.default_rng(args.seed)
        source = VideoSource(DEFAULT_CHANNELS[2], rng=rng)
        encoder = VbrEncoder(rng=rng)
        conn = TcpConnection(
            HeavyTailLink(base_bps=args.mbps * 1e6, seed=args.seed),
            base_rtt=0.06,
        )
        result = simulate_stream(
            encoder.stream(source), abr, conn,
            watch_time_s=args.minutes * 60.0,
        )
        print(
            f"{abr.name:<10}{result.mean_ssim_db:>9.2f}"
            f"{result.stall_ratio * 100:>9.2f}{len(result.records):>8}"
        )
    return 0


def _cmd_trial(args: argparse.Namespace) -> int:
    from repro.analysis import summarize_scheme
    from repro.experiment import (
        InSituTrainingConfig,
        RandomizedTrial,
        TrialConfig,
        primary_experiment_schemes,
        train_fugu_in_situ,
        train_pensieve_in_simulation,
    )

    print("training learned schemes…", file=sys.stderr)
    fugu_predictor = train_fugu_in_situ(
        InSituTrainingConfig(
            bootstrap_streams=60, iteration_streams=60, iterations=1,
            epochs=8, seed=args.seed, workers=args.workers,
        )
    )
    pensieve = train_pensieve_in_simulation(
        episodes=300, seed=args.seed, n_candidates=2
    )
    specs = primary_experiment_schemes(fugu_predictor, pensieve)
    print(
        f"randomizing {args.sessions} sessions"
        f" across {args.workers} worker(s)…",
        file=sys.stderr,
    )
    trial = RandomizedTrial(
        specs,
        TrialConfig(
            n_sessions=args.sessions,
            seed=args.seed,
            observability=args.metrics_out is not None,
        ),
    ).run(workers=args.workers)
    if trial.throughput is not None:
        print(trial.throughput.format(), file=sys.stderr)
    if args.metrics_out is not None:
        trial.dump_metrics(args.metrics_out)
        print(f"wrote metrics dump to {trial.metrics_path}", file=sys.stderr)
    print(f"{'Scheme':<15}{'Stall %':>9}{'SSIM dB':>9}{'N':>6}")
    for name in trial.scheme_names:
        streams = trial.streams_for(name)
        if not streams:
            continue
        s = summarize_scheme(name, streams, n_resamples=200)
        print(
            f"{name:<15}{s.stall_percent:>9.3f}"
            f"{s.mean_ssim_db.point:>9.2f}{s.n_streams:>6}"
        )
    return 0


def _cmd_train_fugu(args: argparse.Namespace) -> int:
    from repro.experiment import InSituTrainingConfig, train_fugu_in_situ

    predictor = train_fugu_in_situ(
        InSituTrainingConfig(
            bootstrap_streams=args.streams,
            iteration_streams=args.streams,
            iterations=args.iterations,
            epochs=args.epochs,
            seed=args.seed,
            workers=args.workers,
        )
    )
    atomic_write_text(args.output, json.dumps(predictor.state_dict()))
    print(f"saved trained TTP to {args.output}")
    return 0


def _cmd_detectability(args: argparse.Namespace) -> int:
    from repro.analysis import detectability_curve

    points = detectability_curve(
        improvement=args.improvement,
        stream_counts=tuple(args.streams),
        n_trials=args.trials,
        seed=args.seed,
    )
    print(
        f"{'streams':>10}{'stream-years':>14}{'CI ±%':>8}{'P(detect)':>11}"
    )
    for p in points:
        print(
            f"{p.n_streams_per_scheme:>10}"
            f"{p.stream_years_per_scheme:>14.2f}"
            f"{p.ci_half_width_fraction * 100:>8.1f}"
            f"{p.detection_rate:>11.2f}"
        )
    return 0


def _obs_collect_specs():
    """Cheap classical schemes for the ``obs collect`` mini-trial."""
    from repro.abr import BBA, MpcHm
    from repro.experiment.schemes import SchemeSpec

    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


def _cmd_obs_collect(args: argparse.Namespace) -> int:
    from repro.experiment import RandomizedTrial, TrialConfig
    from repro.obs import format_summary

    trial = RandomizedTrial(
        _obs_collect_specs(),
        TrialConfig(
            n_sessions=args.sessions, seed=args.seed, observability=True
        ),
    ).run(workers=args.workers)
    trial.dump_metrics(args.out, include_wallclock=not args.deterministic)
    if trial.throughput is not None:
        print(trial.throughput.format(), file=sys.stderr)
    print(format_summary(trial.obs.to_dict()))
    print(f"wrote metrics dump to {trial.metrics_path}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_crash_matrix(args: argparse.Namespace) -> int:
    """Enumerate every crash point of a mini fleet run and prove recovery.

    Dynamic counterpart of ``repro lint --whole-program --durability``:
    the static DUR rules claim every durable write is crash-safe; this
    harness kills a real run at each registered crash point, resumes
    from the survivor state, and byte-compares the durable outputs
    against an uninterrupted reference run.
    """
    import tempfile

    from repro.crashpoints import (
        CrashMatrixError,
        format_report,
        run_crash_matrix,
    )

    modes = ["retrain", "edge", "run"] if args.mode == "all" else [args.mode]
    points = None
    if args.points:
        points = [int(part) for part in args.points.split(",") if part.strip()]
    failed = False
    for mode in modes:
        if args.workdir is not None:
            workdir = Path(args.workdir) / mode
        else:
            workdir = Path(tempfile.mkdtemp(prefix=f"crash-matrix-{mode}-"))
        try:
            report = run_crash_matrix(
                workdir,
                mode=mode,
                days=args.days,
                rate=args.rate,
                chunk_size=args.chunk_size,
                points=points,
                progress=lambda message: print(message, file=sys.stderr),
            )
        except CrashMatrixError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_report(report))
        failed = failed or not report.ok
    return 1 if failed else 0


def _cmd_sanitize_run(args: argparse.Namespace) -> int:
    """Run a mini-trial with every runtime determinism tripwire armed.

    The dynamic counterpart of ``repro lint --whole-program``: wall-clock
    reads, hidden-global-RNG draws, environment writes and module-state
    mutation inside the session path raise instead of passing silently.
    Exit 0 prints the telemetry digest (comparable across worker counts
    and against an unsanitized run); a violation exits 1.
    """
    import hashlib
    import os

    from repro import sanitizer
    from repro.experiment import RandomizedTrial, TrialConfig

    snapshot = list(sanitizer.DEFAULT_SNAPSHOT_MODULES)
    try:
        from repro.lint.purity import PurityConfig, default_config_path

        config_path = default_config_path()
        if config_path.is_file():
            loaded = PurityConfig.load(config_path)
            if loaded.snapshot_modules:
                snapshot = list(loaded.snapshot_modules)
    except (OSError, ValueError) as exc:
        print(
            f"warning: ignoring purity-roots config: {exc}", file=sys.stderr
        )
    # Arm this process and let pool workers (fork or spawn) self-arm.
    os.environ[sanitizer.ENV_FLAG] = "1"
    sanitizer.install(snapshot)
    print(
        f"sanitizer armed (hash canary {sanitizer.hash_canary()})",
        file=sys.stderr,
    )
    try:
        trial = RandomizedTrial(
            _obs_collect_specs(),
            TrialConfig(
                n_sessions=args.sessions,
                seed=args.seed,
                collect_telemetry=True,
            ),
        ).run(workers=args.workers)
    except sanitizer.SanitizerViolation as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return 1
    telemetry = trial.telemetry
    assert telemetry is not None
    digest = hashlib.sha256()
    rows = 0
    for table in ("video_sent", "video_acked", "client_buffer"):
        for record in getattr(telemetry, table):
            digest.update(
                json.dumps(record.to_dict(), sort_keys=True).encode()
            )
            digest.update(b"\n")
            rows += 1
    print(
        f"{args.sessions} session(s) sanitized clean: "
        f"{rows} telemetry rows, digest {digest.hexdigest()[:16]}"
    )
    return 0


# ---------------------------------------------------------------------------
# fleet: open-ended deployment simulation (repro.fleet)
# ---------------------------------------------------------------------------
_FLEET_SCHEME_REGISTRY = ("bba", "mpc_hm", "robust_mpc_hm", "bola")


def _fleet_specs(names):
    """Classical (untrained) scheme registry for fleet runs.

    Fleet runs measure the *deployment machinery* — arrivals, streaming
    aggregation, checkpoint/resume — so they use cheap classical schemes
    rather than paying to train learned models first.
    """
    from repro.abr import BBA, Bola, MpcHm, RobustMpcHm
    from repro.experiment.schemes import SchemeSpec

    registry = {
        "bba": SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        "mpc_hm": SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
        "robust_mpc_hm": SchemeSpec(
            name="robust_mpc_hm", control="classical",
            predictor="classical (HM, conservative)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=RobustMpcHm,
        ),
        "bola": SchemeSpec(
            name="bola", control="classical", predictor="n/a",
            optimization_goal="+utility (Lyapunov)",
            how_trained="n/a", factory=Bola,
        ),
    }
    specs = []
    for name in names:
        if name not in registry:
            raise SystemExit(
                f"unknown scheme {name!r}; choose from "
                f"{', '.join(sorted(registry))}"
            )
        specs.append(registry[name])
    return specs


def _parse_flash_crowd(text: str):
    """Parse ``START_DAY:DURATION_HOURS:MULTIPLIER`` (e.g. ``2:3:5``)."""
    from repro.fleet import FlashCrowd

    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            "flash crowd must be START_DAY:DURATION_HOURS:MULTIPLIER"
        )
    return FlashCrowd(
        start_day=float(parts[0]),
        duration_hours=float(parts[1]),
        multiplier=float(parts[2]),
    )


def _fleet_cli_args(args: argparse.Namespace) -> dict:
    """The run parameters recorded in the checkpoint for ``fleet resume``."""
    return {
        "days": args.days,
        "rate": args.rate,
        "diurnal_amplitude": args.diurnal_amplitude,
        "peak_hour": args.peak_hour,
        "flash_crowds": [
            [c.start_day, c.duration_hours, c.multiplier]
            for c in args.flash_crowd
        ],
        "seed": args.seed,
        "trial_seed": args.trial_seed,
        "schemes": list(args.schemes),
        "chunk_size": args.chunk_size,
        "archive_dir": args.archive_dir,
        "executor": args.executor,
        "batch_lanes": args.batch_lanes,
        "cells": args.cells,
        "cell_dist": args.cell_dist,
        "cell_capacity_bps": args.cell_capacity_bps,
        "cache_chunks": args.cache_chunks,
        "zipf_alpha": args.zipf_alpha,
        "edge_seed": args.edge_seed,
    }


def _fleet_config_from_args(args: argparse.Namespace):
    from repro.edge import EdgeConfig
    from repro.experiment.presets import smoke_trial_config
    from repro.fleet import FleetConfig, WorkloadConfig

    workload = WorkloadConfig(
        days=args.days,
        sessions_per_hour=args.rate,
        diurnal_amplitude=args.diurnal_amplitude,
        peak_hour=args.peak_hour,
        flash_crowds=tuple(args.flash_crowd),
        seed=args.seed,
    )
    trial = smoke_trial_config(seed=args.trial_seed)
    edge = None
    if args.cells is not None:
        edge = EdgeConfig(
            mean_cell_sessions=args.cells,
            cell_size_dist=args.cell_dist,
            cell_capacity_bps=args.cell_capacity_bps,
            cache_chunks=args.cache_chunks,
            zipf_alpha=args.zipf_alpha,
            seed=args.edge_seed,
        )
    return _fleet_specs(args.schemes), FleetConfig(
        workload=workload,
        trial=trial,
        chunk_sessions=args.chunk_size,
        executor=args.executor,
        batch_lanes=args.batch_lanes,
        edge=edge,
    )


def _print_fleet_result(result, args: argparse.Namespace) -> int:
    if result.throughput is not None:
        print(result.throughput.format(), file=sys.stderr)
    if result.edge_stats is not None:
        stats = result.edge_stats
        served = stats["cache_hits"] + stats["cache_misses"]
        ratio = stats["cache_hits"] / served if served else 0.0
        print(
            f"edge tier: {stats['cells']} cells "
            f"({stats['shared_cells']} shared), cache hit ratio "
            f"{ratio:.3f} ({stats['cache_hits']}/{served})",
            file=sys.stderr,
        )
    print(result.format_table())
    if not result.completed:
        print(
            f"paused at session {result.next_session_id}; continue with: "
            f"repro fleet resume --checkpoint {args.checkpoint}",
            file=sys.stderr,
        )
    if args.out is not None:
        result.dump(args.out)
        print(f"wrote metrics dump to {args.out}", file=sys.stderr)
    return 0


def _run_fleet_from_args(args: argparse.Namespace, resume: bool) -> int:
    from repro.fleet import run_fleet

    specs, config = _fleet_config_from_args(args)
    result = run_fleet(
        specs,
        config,
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        resume=resume,
        archive_dir=args.archive_dir,
        stop_after_sessions=args.stop_after,
        cli_args=_fleet_cli_args(args),
    )
    return _print_fleet_result(result, args)


def _retrain_config_from_args(args: argparse.Namespace):
    from repro.core.ttp import TtpConfig
    from repro.fleet import RetrainConfig

    return RetrainConfig(
        ttp=TtpConfig(horizon=args.ttp_horizon),
        window_days=args.window_days,
        recency_decay=args.recency_decay,
        epochs_per_day=args.epochs_per_day,
        seed=args.retrain_seed,
        arm_prefix=args.arm_prefix,
    )


def _fleet_retrain_cli_args(args: argparse.Namespace) -> dict:
    """Retrain-run parameters recorded for ``repro fleet resume``."""
    recorded = _fleet_cli_args(args)
    recorded.update(
        {
            "mode": "retrain",
            "registry_dir": args.registry,
            "window_days": args.window_days,
            "recency_decay": args.recency_decay,
            "epochs_per_day": args.epochs_per_day,
            "retrain_seed": args.retrain_seed,
            "ttp_horizon": args.ttp_horizon,
            "arm_prefix": args.arm_prefix,
        }
    )
    return recorded


def _run_fleet_retrain_from_args(args: argparse.Namespace, resume: bool) -> int:
    from repro.fleet import run_fleet_retrain

    specs, config = _fleet_config_from_args(args)
    result = run_fleet_retrain(
        specs,
        config,
        _retrain_config_from_args(args),
        archive_dir=args.archive_dir,
        registry_dir=args.registry,
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        resume=resume,
        stop_after_sessions=args.stop_after,
        cli_args=_fleet_retrain_cli_args(args),
    )
    status = _print_fleet_result(result, args)
    print(
        f"model registry: {args.registry} (inspect with: "
        f"repro fleet models {args.registry})",
        file=sys.stderr,
    )
    return status


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint")
    return _run_fleet_from_args(args, resume=args.resume)


def _cmd_fleet_retrain(args: argparse.Namespace) -> int:
    if args.resume and args.checkpoint is None:
        raise SystemExit("--resume requires --checkpoint")
    if args.cells is not None:
        raise SystemExit(
            "--cells is not supported with retrain (the continual-training "
            "driver runs the classic private-link fleet)"
        )
    return _run_fleet_retrain_from_args(args, resume=args.resume)


def _cmd_fleet_models(args: argparse.Namespace) -> int:
    from repro.fleet import ModelRegistry

    registry = ModelRegistry(args.registry)
    print(registry.format_table())
    return 0


def _cmd_fleet_resume(args: argparse.Namespace) -> int:
    from repro.fleet import CheckpointManager, FlashCrowd

    manager = CheckpointManager(args.checkpoint)
    if not manager.exists():
        raise SystemExit(f"no checkpoint at {args.checkpoint}")
    checkpoint = manager.load()
    if checkpoint.completed and args.out is None:
        print("checkpointed run is already complete", file=sys.stderr)
    stored = checkpoint.cli_args
    if stored is None:
        raise SystemExit(
            "checkpoint was written by an API run (no recorded CLI "
            "parameters); resume it with `repro fleet run --resume` and the "
            "original flags, or via repro.fleet.run_fleet(resume=True)"
        )
    run_args = argparse.Namespace(
        days=float(stored["days"]),
        rate=float(stored["rate"]),
        diurnal_amplitude=float(stored["diurnal_amplitude"]),
        peak_hour=float(stored["peak_hour"]),
        flash_crowd=[
            FlashCrowd(
                start_day=float(c[0]),
                duration_hours=float(c[1]),
                multiplier=float(c[2]),
            )
            for c in stored["flash_crowds"]
        ],
        seed=int(stored["seed"]),
        trial_seed=int(stored["trial_seed"]),
        schemes=list(stored["schemes"]),
        chunk_size=int(stored["chunk_size"]),
        archive_dir=stored["archive_dir"],
        executor=str(stored.get("executor", "auto")),
        batch_lanes=int(stored.get("batch_lanes", 64)),
        cells=(
            float(stored["cells"])
            if stored.get("cells") is not None
            else None
        ),
        cell_dist=str(stored.get("cell_dist", "geometric")),
        cell_capacity_bps=float(stored.get("cell_capacity_bps", 60e6)),
        cache_chunks=int(stored.get("cache_chunks", 256)),
        zipf_alpha=float(stored.get("zipf_alpha", 1.1)),
        edge_seed=int(stored.get("edge_seed", 0)),
        checkpoint=args.checkpoint,
        workers=args.workers,
        stop_after=args.stop_after,
        out=args.out,
    )
    if stored.get("mode") == "retrain":
        run_args.registry = str(stored["registry_dir"])
        run_args.window_days = int(stored["window_days"])
        run_args.recency_decay = float(stored["recency_decay"])
        run_args.epochs_per_day = int(stored["epochs_per_day"])
        run_args.retrain_seed = int(stored["retrain_seed"])
        run_args.ttp_horizon = int(stored["ttp_horizon"])
        run_args.arm_prefix = str(stored["arm_prefix"])
        return _run_fleet_retrain_from_args(run_args, resume=True)
    return _run_fleet_from_args(run_args, resume=True)


def _cmd_fleet_report(args: argparse.Namespace) -> int:
    from repro.fleet import FleetSink, format_sink_table

    with open(args.file) as f:
        data = json.load(f)
    if "sink" not in data:
        raise SystemExit(
            f"{args.file}: neither a fleet checkpoint nor a metrics dump "
            "(no 'sink' key)"
        )
    sink = FleetSink.from_dict(data["sink"])
    kind = "checkpoint" if "fingerprint" in data else "dump"
    state = "complete" if data.get("completed") else "in progress"
    print(
        f"{kind}: next_session_id={data.get('next_session_id')} [{state}]",
        file=sys.stderr,
    )
    print(format_sink_table(sink))
    return 0


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    from repro.obs import format_summary

    with open(args.file) as f:
        dump = json.load(f)
    print(format_summary(dump, max_events=args.events))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Learning in situ' (Puffer/Fugu, NSDI 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quick = sub.add_parser("quickstart", help="stream with two schemes")
    quick.add_argument("--minutes", type=float, default=5.0)
    quick.add_argument("--mbps", type=float, default=6.0)
    quick.add_argument("--seed", type=int, default=1)
    quick.set_defaults(func=_cmd_quickstart)

    trial = sub.add_parser("trial", help="run a miniature randomized trial")
    trial.add_argument("--sessions", type=int, default=200)
    trial.add_argument("--seed", type=int, default=0)
    trial.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the session loop (results are "
        "bit-identical at any worker count)",
    )
    trial.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="collect observability metrics and dump the merged JSON here",
    )
    trial.set_defaults(func=_cmd_trial)

    train = sub.add_parser("train-fugu", help="train the TTP in situ")
    train.add_argument("--streams", type=int, default=60)
    train.add_argument("--iterations", type=int, default=1)
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for telemetry collection",
    )
    train.add_argument("--output", default="fugu_ttp.json")
    train.set_defaults(func=_cmd_train_fugu)

    power = sub.add_parser(
        "detectability", help="statistical power analysis (§3.4)"
    )
    power.add_argument("--improvement", type=float, default=0.15)
    power.add_argument(
        "--streams", type=int, nargs="+", default=[1000, 8000, 64000]
    )
    power.add_argument("--trials", type=int, default=20)
    power.add_argument("--seed", type=int, default=0)
    power.set_defaults(func=_cmd_detectability)

    obs_parser = sub.add_parser(
        "obs", help="observability: collect and inspect metrics dumps"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    collect = obs_sub.add_parser(
        "collect", help="run an instrumented mini-trial and dump metrics"
    )
    collect.add_argument("--sessions", type=int, default=32)
    collect.add_argument("--seed", type=int, default=0)
    collect.add_argument("--workers", type=int, default=1)
    collect.add_argument("--out", default="metrics.json")
    collect.add_argument(
        "--deterministic", action="store_true",
        help="exclude wall-clock (profile.*) metrics from the dump — the "
        "surface that is bit-identical at any worker count",
    )
    collect.set_defaults(func=_cmd_obs_collect)
    summary = obs_sub.add_parser(
        "summary", help="pretty-print a metrics dump"
    )
    summary.add_argument("file")
    summary.add_argument(
        "--events", type=int, default=5,
        help="number of trailing trace events to show",
    )
    summary.set_defaults(func=_cmd_obs_summary)

    fleet = sub.add_parser(
        "fleet",
        help="open-ended deployment simulation at constant memory",
        description=(
            "Simulate a continuously-operating deployment: seeded "
            "Poisson/diurnal session arrivals, streaming exact-merge "
            "aggregation (O(1) memory in run length), and crash-safe "
            "checkpoints — the metrics dump is byte-identical at any "
            "worker count and across kill/resume."
        ),
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    def add_fleet_run_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--days", type=float, default=1.0,
            help="simulated calendar days of arrivals",
        )
        p.add_argument(
            "--rate", type=float, default=60.0,
            help="mean session arrivals per hour",
        )
        p.add_argument(
            "--diurnal-amplitude", type=float, default=0.6,
            help="relative depth of the day/night cycle in [0, 1]",
        )
        p.add_argument(
            "--peak-hour", type=float, default=20.0,
            help="hour of day (0-24) at which arrivals peak",
        )
        p.add_argument(
            "--flash-crowd", type=_parse_flash_crowd, action="append",
            default=[], metavar="DAY:HOURS:MULT",
            help="add a flash crowd (start day : duration hours : rate "
            "multiplier); repeatable",
        )
        p.add_argument(
            "--seed", type=int, default=0, help="workload (arrival) seed"
        )
        p.add_argument(
            "--trial-seed", type=int, default=0,
            help="per-session simulation seed",
        )
        p.add_argument(
            "--schemes", nargs="+", default=["bba", "mpc_hm"],
            choices=list(_FLEET_SCHEME_REGISTRY),
            help="classical schemes to randomize between",
        )
        p.add_argument(
            "--workers", type=int, default=1,
            help="worker processes (the dump is byte-identical at any "
            "count)",
        )
        p.add_argument(
            "--chunk-size", type=int, default=16,
            help="sessions per commit/checkpoint (does not affect results)",
        )
        p.add_argument(
            "--executor", choices=["auto", "batch", "scalar"],
            default="auto",
            help="chunk executor: the vectorized batch kernel, the scalar "
            "session loop, or auto-select (the dump is byte-identical "
            "either way)",
        )
        p.add_argument(
            "--batch-lanes", type=int, default=64,
            help="lockstep width of the batch executor (does not affect "
            "results)",
        )
        p.add_argument(
            "--cells", type=float, default=None, metavar="MEAN",
            help="enable the edge-contention tier: partition arrivals into "
            "shared-bottleneck cells with this mean size (sessions); "
            "omit for the classic private-link fleet",
        )
        p.add_argument(
            "--cell-dist", choices=["fixed", "geometric"],
            default="geometric",
            help="cell-size distribution around --cells (fixed rounds the "
            "mean; geometric is seeded per cell)",
        )
        p.add_argument(
            "--cell-capacity-bps", type=float, default=60e6,
            help="median shared bottleneck capacity per cell (bits/s)",
        )
        p.add_argument(
            "--cache-chunks", type=int, default=256,
            help="edge cache capacity per cell in chunks (0 disables)",
        )
        p.add_argument(
            "--zipf-alpha", type=float, default=1.1,
            help="Zipf exponent of within-cell channel popularity",
        )
        p.add_argument(
            "--edge-seed", type=int, default=0,
            help="seed of the edge tier (cell sizes, capacities, "
            "popularity permutations)",
        )
        p.add_argument(
            "--checkpoint", default=None, metavar="PATH",
            help="crash-safe checkpoint file (enables kill + resume)",
        )
        p.add_argument(
            "--resume", action="store_true",
            help="continue from --checkpoint if it exists",
        )
        p.add_argument(
            "--stop-after", type=int, default=None, metavar="N",
            help="pause once N sessions are committed (resume later)",
        )
        p.add_argument(
            "--out", default=None, metavar="PATH",
            help="write the canonical metrics dump JSON here",
        )

    fleet_run = fleet_sub.add_parser(
        "run", help="run a deployment simulation"
    )
    add_fleet_run_arguments(fleet_run)
    fleet_run.add_argument(
        "--archive-dir", default=None, metavar="DIR",
        help="stream the Appendix-B open-data CSV archive here",
    )
    fleet_run.set_defaults(func=_cmd_fleet_run)

    fleet_retrain = fleet_sub.add_parser(
        "retrain",
        help="deployment simulation with continual in-situ TTP retraining",
        description=(
            "Run the paper's learning-in-situ loop as a service: the fleet "
            "streams telemetry to the open-data archive, the TTP is "
            "retrained at every simulated day boundary on the archived "
            "window (recency-weighted, warm-started), each generation is "
            "committed to a versioned model registry with hash-chained "
            "lineage, and every generation enrolls as a fresh RCT arm. "
            "Registry, archive, and dump are byte-identical at any worker "
            "count, either executor, and across kill -9 + resume."
        ),
    )
    add_fleet_run_arguments(fleet_retrain)
    fleet_retrain.add_argument(
        "--archive-dir", required=True, metavar="DIR",
        help="telemetry archive directory (mandatory: it is the training "
        "set)",
    )
    fleet_retrain.add_argument(
        "--registry", required=True, metavar="DIR",
        help="versioned model-registry directory (one gen-NNNN.json per "
        "committed generation)",
    )
    fleet_retrain.add_argument(
        "--window-days", type=int, default=14,
        help="sliding training window in simulated days (§4.3)",
    )
    fleet_retrain.add_argument(
        "--recency-decay", type=float, default=0.9,
        help="per-day-of-age multiplier on sample weights",
    )
    fleet_retrain.add_argument(
        "--epochs-per-day", type=int, default=8,
        help="training epochs per daily retraining",
    )
    fleet_retrain.add_argument(
        "--retrain-seed", type=int, default=0,
        help="base training seed (day d trains with seed + d)",
    )
    fleet_retrain.add_argument(
        "--ttp-horizon", type=int, default=5,
        help="TTP lookahead horizon (networks per generation)",
    )
    fleet_retrain.add_argument(
        "--arm-prefix", default="fugu",
        help="generation g enrolls as arm PREFIX@gNNN",
    )
    fleet_retrain.set_defaults(func=_cmd_fleet_retrain)

    fleet_models = fleet_sub.add_parser(
        "models",
        help="print the lineage table of a model registry",
    )
    fleet_models.add_argument("registry", metavar="DIR")
    fleet_models.set_defaults(func=_cmd_fleet_models)

    fleet_resume = fleet_sub.add_parser(
        "resume",
        help="continue a killed/paused run from its checkpoint",
    )
    fleet_resume.add_argument("--checkpoint", required=True, metavar="PATH")
    fleet_resume.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the continuation (any count reproduces "
        "the same dump)",
    )
    fleet_resume.add_argument(
        "--stop-after", type=int, default=None, metavar="N",
        help="pause again once N total sessions are committed",
    )
    fleet_resume.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the canonical metrics dump JSON here",
    )
    fleet_resume.set_defaults(func=_cmd_fleet_resume)

    fleet_report = fleet_sub.add_parser(
        "report",
        help="print the per-scheme table from a checkpoint or dump",
    )
    fleet_report.add_argument("file")
    fleet_report.set_defaults(func=_cmd_fleet_report)

    lint = sub.add_parser(
        "lint",
        help="AST-based determinism & correctness linter",
        description=(
            "Statically enforce the determinism contract: seeded RNG only "
            "(DET001), no wall-clock in simulation paths (DET002), no "
            "hash-order iteration (DET003), no float equality in simulator "
            "branches (SIM001), guarded metric emission (OBS001), no "
            "mutable default arguments (API001).  With --whole-program, "
            "also run the interprocedural purity phase (PURE001-PURE003) "
            "over the declared purity roots."
        ),
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)

    sanitize = sub.add_parser(
        "sanitize-run",
        help="run a mini-trial with runtime determinism tripwires armed",
        description=(
            "Dynamic counterpart of `repro lint --whole-program`: runs the "
            "classical-scheme mini-trial under REPRO_SANITIZE=1, where "
            "wall-clock reads, hidden-global-RNG draws, environment writes "
            "and module-state mutation on the session path raise instead "
            "of passing silently."
        ),
    )
    sanitize.add_argument("--sessions", type=int, default=8)
    sanitize.add_argument("--seed", type=int, default=0)
    sanitize.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (the digest is identical at any count)",
    )
    sanitize.set_defaults(func=_cmd_sanitize_run)

    matrix = sub.add_parser(
        "crash-matrix",
        help="kill a mini fleet run at every crash point and prove recovery",
        description=(
            "Dynamic counterpart of `repro lint --whole-program "
            "--durability`: runs a reference mini fleet, enumerates every "
            "registered crash point, then for each point kills a fresh run "
            "exactly there, resumes from the survivor state, and "
            "byte-compares dump/registry/archive against the reference."
        ),
    )
    matrix.add_argument(
        "--mode",
        choices=["retrain", "edge", "run", "all"],
        default="retrain",
        help="fleet scenario to enumerate (default: retrain)",
    )
    matrix.add_argument(
        "--days", type=float, default=1.15,
        help="simulated fleet days per run (default: 1.15)",
    )
    matrix.add_argument(
        "--rate", type=float, default=3.0,
        help="session arrival rate per day (default: 3.0)",
    )
    matrix.add_argument(
        "--chunk-size", type=int, default=16,
        help="sessions per checkpointed chunk (default: 16)",
    )
    matrix.add_argument(
        "--points", default=None, metavar="N,N,...",
        help="comma-separated crash-point indices (default: all)",
    )
    matrix.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="keep run artifacts under DIR/<mode> (default: temp dir)",
    )
    matrix.set_defaults(func=_cmd_crash_matrix)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

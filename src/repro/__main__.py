"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``quickstart``
    Stream a few minutes of simulated live TV with two schemes.
``trial``
    Run a miniature blinded randomized trial and print the Fig. 1 table.
``train-fugu``
    Train Fugu's TTP in situ and save it to a JSON file.
``detectability``
    Print the §3.4 statistical-power analysis.
``obs collect``
    Run an instrumented mini-trial and dump the merged metrics JSON.
``obs summary``
    Pretty-print a metrics dump (counters, histogram quantiles, events).
``lint``
    Run the AST-based determinism & correctness linter (``repro.lint``).
"""

from __future__ import annotations

import argparse
import json
import sys


def _cmd_quickstart(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.abr import BBA, MpcHm
    from repro.media import VbrEncoder, VideoSource
    from repro.media.source import DEFAULT_CHANNELS
    from repro.net import HeavyTailLink, TcpConnection
    from repro.streaming import simulate_stream

    print(f"{'Scheme':<10}{'SSIM dB':>9}{'Stall %':>9}{'Chunks':>8}")
    for abr in (BBA(), MpcHm()):
        rng = np.random.default_rng(args.seed)
        source = VideoSource(DEFAULT_CHANNELS[2], rng=rng)
        encoder = VbrEncoder(rng=rng)
        conn = TcpConnection(
            HeavyTailLink(base_bps=args.mbps * 1e6, seed=args.seed),
            base_rtt=0.06,
        )
        result = simulate_stream(
            encoder.stream(source), abr, conn,
            watch_time_s=args.minutes * 60.0,
        )
        print(
            f"{abr.name:<10}{result.mean_ssim_db:>9.2f}"
            f"{result.stall_ratio * 100:>9.2f}{len(result.records):>8}"
        )
    return 0


def _cmd_trial(args: argparse.Namespace) -> int:
    from repro.analysis import summarize_scheme
    from repro.experiment import (
        InSituTrainingConfig,
        RandomizedTrial,
        TrialConfig,
        primary_experiment_schemes,
        train_fugu_in_situ,
        train_pensieve_in_simulation,
    )

    print("training learned schemes…", file=sys.stderr)
    fugu_predictor = train_fugu_in_situ(
        InSituTrainingConfig(
            bootstrap_streams=60, iteration_streams=60, iterations=1,
            epochs=8, seed=args.seed, workers=args.workers,
        )
    )
    pensieve = train_pensieve_in_simulation(
        episodes=300, seed=args.seed, n_candidates=2
    )
    specs = primary_experiment_schemes(fugu_predictor, pensieve)
    print(
        f"randomizing {args.sessions} sessions"
        f" across {args.workers} worker(s)…",
        file=sys.stderr,
    )
    trial = RandomizedTrial(
        specs,
        TrialConfig(
            n_sessions=args.sessions,
            seed=args.seed,
            observability=args.metrics_out is not None,
        ),
    ).run(workers=args.workers)
    if trial.throughput is not None:
        print(trial.throughput.format(), file=sys.stderr)
    if args.metrics_out is not None:
        trial.dump_metrics(args.metrics_out)
        print(f"wrote metrics dump to {trial.metrics_path}", file=sys.stderr)
    print(f"{'Scheme':<15}{'Stall %':>9}{'SSIM dB':>9}{'N':>6}")
    for name in trial.scheme_names:
        streams = trial.streams_for(name)
        if not streams:
            continue
        s = summarize_scheme(name, streams, n_resamples=200)
        print(
            f"{name:<15}{s.stall_percent:>9.3f}"
            f"{s.mean_ssim_db.point:>9.2f}{s.n_streams:>6}"
        )
    return 0


def _cmd_train_fugu(args: argparse.Namespace) -> int:
    from repro.experiment import InSituTrainingConfig, train_fugu_in_situ

    predictor = train_fugu_in_situ(
        InSituTrainingConfig(
            bootstrap_streams=args.streams,
            iteration_streams=args.streams,
            iterations=args.iterations,
            epochs=args.epochs,
            seed=args.seed,
            workers=args.workers,
        )
    )
    with open(args.output, "w") as f:
        json.dump(predictor.state_dict(), f)
    print(f"saved trained TTP to {args.output}")
    return 0


def _cmd_detectability(args: argparse.Namespace) -> int:
    from repro.analysis import detectability_curve

    points = detectability_curve(
        improvement=args.improvement,
        stream_counts=tuple(args.streams),
        n_trials=args.trials,
        seed=args.seed,
    )
    print(
        f"{'streams':>10}{'stream-years':>14}{'CI ±%':>8}{'P(detect)':>11}"
    )
    for p in points:
        print(
            f"{p.n_streams_per_scheme:>10}"
            f"{p.stream_years_per_scheme:>14.2f}"
            f"{p.ci_half_width_fraction * 100:>8.1f}"
            f"{p.detection_rate:>11.2f}"
        )
    return 0


def _obs_collect_specs():
    """Cheap classical schemes for the ``obs collect`` mini-trial."""
    from repro.abr import BBA, MpcHm
    from repro.experiment.schemes import SchemeSpec

    return [
        SchemeSpec(
            name="bba", control="classical", predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a", factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm", control="classical", predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a", factory=MpcHm,
        ),
    ]


def _cmd_obs_collect(args: argparse.Namespace) -> int:
    from repro.experiment import RandomizedTrial, TrialConfig
    from repro.obs import format_summary

    trial = RandomizedTrial(
        _obs_collect_specs(),
        TrialConfig(
            n_sessions=args.sessions, seed=args.seed, observability=True
        ),
    ).run(workers=args.workers)
    trial.dump_metrics(args.out, include_wallclock=not args.deterministic)
    if trial.throughput is not None:
        print(trial.throughput.format(), file=sys.stderr)
    print(format_summary(trial.obs.to_dict()))
    print(f"wrote metrics dump to {trial.metrics_path}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    from repro.obs import format_summary

    with open(args.file) as f:
        dump = json.load(f)
    print(format_summary(dump, max_events=args.events))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Learning in situ' (Puffer/Fugu, NSDI 2020)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quick = sub.add_parser("quickstart", help="stream with two schemes")
    quick.add_argument("--minutes", type=float, default=5.0)
    quick.add_argument("--mbps", type=float, default=6.0)
    quick.add_argument("--seed", type=int, default=1)
    quick.set_defaults(func=_cmd_quickstart)

    trial = sub.add_parser("trial", help="run a miniature randomized trial")
    trial.add_argument("--sessions", type=int, default=200)
    trial.add_argument("--seed", type=int, default=0)
    trial.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the session loop (results are "
        "bit-identical at any worker count)",
    )
    trial.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="collect observability metrics and dump the merged JSON here",
    )
    trial.set_defaults(func=_cmd_trial)

    train = sub.add_parser("train-fugu", help="train the TTP in situ")
    train.add_argument("--streams", type=int, default=60)
    train.add_argument("--iterations", type=int, default=1)
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for telemetry collection",
    )
    train.add_argument("--output", default="fugu_ttp.json")
    train.set_defaults(func=_cmd_train_fugu)

    power = sub.add_parser(
        "detectability", help="statistical power analysis (§3.4)"
    )
    power.add_argument("--improvement", type=float, default=0.15)
    power.add_argument(
        "--streams", type=int, nargs="+", default=[1000, 8000, 64000]
    )
    power.add_argument("--trials", type=int, default=20)
    power.add_argument("--seed", type=int, default=0)
    power.set_defaults(func=_cmd_detectability)

    obs_parser = sub.add_parser(
        "obs", help="observability: collect and inspect metrics dumps"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    collect = obs_sub.add_parser(
        "collect", help="run an instrumented mini-trial and dump metrics"
    )
    collect.add_argument("--sessions", type=int, default=32)
    collect.add_argument("--seed", type=int, default=0)
    collect.add_argument("--workers", type=int, default=1)
    collect.add_argument("--out", default="metrics.json")
    collect.add_argument(
        "--deterministic", action="store_true",
        help="exclude wall-clock (profile.*) metrics from the dump — the "
        "surface that is bit-identical at any worker count",
    )
    collect.set_defaults(func=_cmd_obs_collect)
    summary = obs_sub.add_parser(
        "summary", help="pretty-print a metrics dump"
    )
    summary.add_argument("file")
    summary.add_argument(
        "--events", type=int, default=5,
        help="number of trailing trace events to show",
    )
    summary.set_defaults(func=_cmd_obs_summary)

    lint = sub.add_parser(
        "lint",
        help="AST-based determinism & correctness linter",
        description=(
            "Statically enforce the determinism contract: seeded RNG only "
            "(DET001), no wall-clock in simulation paths (DET002), no "
            "hash-order iteration (DET003), no float equality in simulator "
            "branches (SIM001), guarded metric emission (OBS001), no "
            "mutable default arguments (API001)."
        ),
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""ABR algorithms evaluated in the Puffer study (Fig. 5), plus extensions.

* :class:`BBA` — buffer-based control [17], the "simple" scheme that proved
  hard to beat in the wild;
* :class:`MpcHm` / :class:`RobustMpcHm` — control-theoretic MPC with a
  harmonic-mean throughput predictor [43];
* :class:`Pensieve` — reinforcement-learned policy trained in simulation
  [23];
* :class:`RateBased` and :class:`Bola` — additional classical baselines;
* :class:`Cs2pMpc` — CS2P-style discrete-state HMM throughput prediction
  feeding the shared MPC controller [38];
* :class:`OboeRobustMpc` — Oboe-style per-network-state auto-tuning of
  RobustMPC [2].

Fugu itself lives in :mod:`repro.core` since it is the paper's contribution.
"""

from repro.abr.base import (
    AbrAlgorithm,
    AbrContext,
    ChunkRecord,
    harmonic_mean_throughput,
)
from repro.abr.bba import BBA
from repro.abr.cs2p import Cs2pMpc, DiscreteThroughputHmm
from repro.abr.bola import Bola
from repro.abr.mpc import HarmonicMeanPredictor, MpcHm, RobustMpcHm
from repro.abr.oboe import OboeConfigMap, OboeRobustMpc, build_config_map
from repro.abr.pensieve import ActorCritic, Pensieve, PensieveTrainer, SimpleChunkEnv
from repro.abr.rate_based import RateBased

__all__ = [
    "AbrAlgorithm",
    "AbrContext",
    "ChunkRecord",
    "harmonic_mean_throughput",
    "BBA",
    "Bola",
    "Cs2pMpc",
    "DiscreteThroughputHmm",
    "OboeRobustMpc",
    "OboeConfigMap",
    "build_config_map",
    "MpcHm",
    "RobustMpcHm",
    "HarmonicMeanPredictor",
    "RateBased",
    "Pensieve",
    "ActorCritic",
    "PensieveTrainer",
    "SimpleChunkEnv",
]

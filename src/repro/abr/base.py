"""ABR algorithm interface.

Every scheme in the study — BBA, MPC-HM, RobustMPC-HM, Pensieve, Fugu and
its ablations — implements :class:`AbrAlgorithm`. The server-side placement
of Puffer's ABR (§3.2) means a scheme may observe the sender's TCP state and
the SSIM of every candidate version of upcoming chunks; schemes that cannot
use those inputs (Pensieve optimizes bitrate) simply ignore them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.media.chunk import ChunkMenu
from repro.net.tcp import TcpInfo


@dataclass(frozen=True)
class ChunkRecord:
    """What the server learns after one chunk is sent and acknowledged —
    the join of a ``video_sent`` and ``video_acked`` record."""

    chunk_index: int
    rung: int
    size_bytes: float
    ssim_db: float
    transmission_time: float
    info_at_send: TcpInfo
    send_time: float

    @property
    def observed_throughput_bps(self) -> float:
        """Throughput implied by this chunk's transfer."""
        return self.size_bytes * 8.0 / max(self.transmission_time, 1e-9)


@dataclass
class AbrContext:
    """Everything the ABR scheme may consult when choosing the next chunk.

    Attributes
    ----------
    lookahead:
        Menus for the next chunks, ``lookahead[0]`` being the chunk to choose
        now. Live encoding runs a few chunks ahead of the playhead, so MPC
        variants see their full horizon.
    buffer_s:
        Client playback buffer level in seconds.
    tcp_info:
        Sender-side TCP statistics at decision time.
    history:
        Completed chunks of this stream, oldest first.
    last_ssim_db:
        SSIM of the previously chosen version (None at stream start).
    startup:
        True until the first chunk has been chosen.
    """

    lookahead: Sequence[ChunkMenu]
    buffer_s: float
    tcp_info: TcpInfo
    history: List[ChunkRecord] = field(default_factory=list)
    last_ssim_db: Optional[float] = None
    startup: bool = False

    @property
    def menu(self) -> ChunkMenu:
        """The menu for the chunk being decided."""
        return self.lookahead[0]


class AbrAlgorithm:
    """Base class for bitrate-selection schemes.

    Subclasses must implement :meth:`choose`; the other hooks default to
    no-ops. A single instance may serve many streams sequentially — the
    simulator calls :meth:`begin_stream` before each stream.
    """

    name = "abstract"

    def begin_stream(self) -> None:
        """Reset per-stream state. Called once before each stream."""

    def choose(self, context: AbrContext) -> int:
        """Return the ladder index of the version to send next."""
        raise NotImplementedError

    def on_chunk_complete(self, record: ChunkRecord) -> None:
        """Observe the outcome of a sent chunk (for predictor updates)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"


def harmonic_mean_throughput(
    history: Sequence[ChunkRecord], window: int = 5
) -> Optional[float]:
    """Harmonic mean of the last ``window`` throughput samples (bits/s).

    This is the "HM" predictor of MPC-HM and RobustMPC-HM (Fig. 5): the
    harmonic mean of the last five chunk-level throughput observations.
    Returns None when there is no history yet.
    """
    recent = list(history)[-window:]
    if not recent:
        return None
    inverse_sum = sum(1.0 / r.observed_throughput_bps for r in recent)
    return len(recent) / inverse_sum

"""BBA — buffer-based adaptation (Huang et al., SIGCOMM 2014 [17]).

The scheme maps the current buffer occupancy to a maximum sustainable rate
through a piecewise-linear function with a *reservoir* (below it, always pick
the lowest rung) and a *cushion* (above it, always pick the highest). Puffer
"used the formula in the original paper to choose reservoir values consistent
with a 15-second maximum buffer" (§3.3) and gives BBA the SSIM objective:
pick the highest-SSIM version whose bitrate fits under the rate map
("+SSIM s.t. bitrate < limit", Fig. 5).
"""

from __future__ import annotations

from repro.abr.base import AbrAlgorithm, AbrContext
from repro.streaming.buffer import MAX_BUFFER_S


class BBA(AbrAlgorithm):
    """Buffer-based control with an SSIM objective.

    Parameters
    ----------
    reservoir_fraction:
        Below this fraction of the buffer cap, stream the lowest rung. The
        original paper's formula scaled to a 15 s buffer puts it at ~25%.
    upper_reservoir_fraction:
        At or above this fraction, stream the highest rung. The default
        gives BBA the aggressive profile it exhibits on Puffer, where it
        delivered the highest average bitrate of all five schemes (Fig. 4).
    """

    name = "bba"

    def __init__(
        self,
        max_buffer_s: float = MAX_BUFFER_S,
        reservoir_fraction: float = 0.25,
        upper_reservoir_fraction: float = 0.75,
    ) -> None:
        if not 0.0 < reservoir_fraction < upper_reservoir_fraction <= 1.0:
            raise ValueError("need 0 < reservoir < upper reservoir <= 1")
        self.max_buffer_s = max_buffer_s
        self.reservoir_s = reservoir_fraction * max_buffer_s
        self.upper_reservoir_s = upper_reservoir_fraction * max_buffer_s

    def rate_limit(self, buffer_s: float, min_rate: float, max_rate: float) -> float:
        """The chunk-bitrate ceiling the buffer map allows."""
        if buffer_s <= self.reservoir_s:
            return min_rate
        if buffer_s >= self.upper_reservoir_s:
            return max_rate
        fraction = (buffer_s - self.reservoir_s) / (
            self.upper_reservoir_s - self.reservoir_s
        )
        return min_rate + fraction * (max_rate - min_rate)

    def choose(self, context: AbrContext) -> int:
        menu = context.menu
        rates = [v.bitrate for v in menu]
        limit = self.rate_limit(context.buffer_s, min(rates), max(rates))
        best = 0
        best_ssim = float("-inf")
        for i, version in enumerate(menu):
            if version.bitrate <= limit + 1e-9 and version.ssim_db > best_ssim:
                best = i
                best_ssim = version.ssim_db
        return best

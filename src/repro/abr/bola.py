"""BOLA — Lyapunov-based buffer control (Spiteri et al., INFOCOM 2016 [36]).

Cited by the paper as another buffer-based scheme; included as an extension
beyond the five primary-experiment algorithms. BOLA-BASIC picks, at each
decision, the version maximizing

    (V * (utility_m + gamma_p) - Q) / S_m

where Q is the buffer level in chunks, S_m the chunk size, ``utility_m`` a
concave utility of the version, and V, gamma_p control the buffer operating
point. We use the SSIM gain over the lowest rung as the utility so BOLA
competes on the same objective as Puffer's other schemes.
"""

from __future__ import annotations

import numpy as np

from repro.abr.base import AbrAlgorithm, AbrContext
from repro.streaming.buffer import MAX_BUFFER_S


class Bola(AbrAlgorithm):
    """BOLA-BASIC with an SSIM utility."""

    name = "bola"

    def __init__(
        self,
        max_buffer_s: float = MAX_BUFFER_S,
        target_buffer_fraction: float = 0.6,
    ) -> None:
        if not 0.0 < target_buffer_fraction <= 1.0:
            raise ValueError("target buffer fraction must lie in (0, 1]")
        self.max_buffer_s = max_buffer_s
        self.target_buffer_fraction = target_buffer_fraction

    def choose(self, context: AbrContext) -> int:
        menu = context.menu
        duration = menu.duration
        q_chunks = context.buffer_s / duration
        q_max = self.max_buffer_s / duration
        ssims = np.asarray(menu.ssims_db)
        sizes = np.asarray(menu.sizes)
        utilities = ssims - ssims[0]
        # Choose gamma_p so the score for the lowest rung crosses zero at
        # the target buffer level, and V to match the buffer scale
        # (BOLA-BASIC parameterization adapted to a finite buffer).
        gamma_p = self.target_buffer_fraction * q_max
        utility_span = max(float(utilities[-1]), 1e-9)
        v = (q_max - 1.0) / (utility_span + gamma_p)
        scores = (v * (utilities + gamma_p) - q_chunks) / sizes
        if float(scores.max()) <= 0.0:
            # All scores negative means the buffer is past BOLA's operating
            # point and the algorithm would pause downloads. The server
            # paces separately (it waits for buffer room), so the sensible
            # action when asked for a chunk anyway is the highest utility.
            return len(menu) - 1
        return int(np.argmax(scores))

"""CS2P-style throughput prediction (Sun et al., SIGCOMM 2016 [38]).

CS2P "models ... evolving throughput as a Markovian process with a small
number of discrete states" (§2) and feeds the prediction to an MPC
controller. This module implements that related-work system:

* :class:`DiscreteThroughputHmm` — a hidden Markov model over K discrete
  throughput states with log-normal emissions, trained by Baum–Welch (EM)
  on per-session chunk-throughput sequences;
* :class:`Cs2pPredictor` — forward-algorithm state tracking that turns the
  HMM into a transmission-time model for the shared MPC controller;
* :class:`Cs2pMpc` — the assembled ABR scheme.

The paper's Fig. 2 point — "we have not observed CS2P and Oboe's
observation of discrete throughput states" on Puffer — shows up here as a
model-mismatch: the HMM fits Markov-link worlds far better than the
heavy-tailed continuous evolution of the deployment (see the related-work
benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.abr.base import AbrAlgorithm, AbrContext
from repro.core.controller import TimeDistribution, ValueIterationController
from repro.core.qoe import DEFAULT_QOE, QoeParams

_LOG_FLOOR = 1e-12
_MIN_THROUGHPUT = 1e3


@dataclass
class HmmFit:
    """Training diagnostics from Baum–Welch."""

    log_likelihood: float
    iterations: int
    converged: bool


class DiscreteThroughputHmm:
    """HMM over discrete throughput states with log-normal emissions.

    Observations are chunk-level throughput samples in bits/s; internally
    everything works on ``log(throughput)``.
    """

    def __init__(self, n_states: int = 3, seed: int = 0) -> None:
        if n_states < 1:
            raise ValueError("need at least one state")
        self.n_states = n_states
        rng = np.random.default_rng(seed)
        self.initial = np.full(n_states, 1.0 / n_states)
        # Sticky transitions: states persist (CS2P's dwell behaviour).
        self.transition = np.full((n_states, n_states), 0.1 / max(n_states - 1, 1))
        np.fill_diagonal(self.transition, 0.9)
        if n_states == 1:
            self.transition = np.ones((1, 1))
        # Spread initial means over a plausible log-throughput range.
        self.means = np.sort(rng.uniform(np.log(5e5), np.log(5e7), n_states))
        self.sigmas = np.full(n_states, 0.5)

    # ------------------------------------------------------------------
    # Inference primitives
    # ------------------------------------------------------------------
    def _emission_logpdf(self, log_obs: np.ndarray) -> np.ndarray:
        """log p(obs | state): shape (T, K)."""
        diff = log_obs[:, None] - self.means[None, :]
        return (
            -0.5 * (diff / self.sigmas[None, :]) ** 2
            - np.log(self.sigmas[None, :])
            - 0.5 * np.log(2 * np.pi)
        )

    def _forward(self, log_obs: np.ndarray):
        """Scaled forward pass; returns (alpha, scales, log_likelihood)."""
        T = len(log_obs)
        emissions = np.exp(self._emission_logpdf(log_obs))
        alpha = np.zeros((T, self.n_states))
        scales = np.zeros(T)
        alpha[0] = self.initial * emissions[0]
        scales[0] = alpha[0].sum() + _LOG_FLOOR
        alpha[0] /= scales[0]
        for t in range(1, T):
            alpha[t] = (alpha[t - 1] @ self.transition) * emissions[t]
            scales[t] = alpha[t].sum() + _LOG_FLOOR
            alpha[t] /= scales[t]
        return alpha, scales, float(np.log(scales).sum())

    def _backward(self, log_obs: np.ndarray, scales: np.ndarray) -> np.ndarray:
        T = len(log_obs)
        emissions = np.exp(self._emission_logpdf(log_obs))
        beta = np.zeros((T, self.n_states))
        beta[-1] = 1.0
        for t in range(T - 2, -1, -1):
            beta[t] = self.transition @ (emissions[t + 1] * beta[t + 1])
            beta[t] /= scales[t + 1]
        return beta

    def log_likelihood(self, series: Sequence[Sequence[float]]) -> float:
        """Mean per-observation log-likelihood across sequences."""
        total, count = 0.0, 0
        for seq in series:
            log_obs = np.log(np.maximum(np.asarray(seq, float), _MIN_THROUGHPUT))
            if len(log_obs) == 0:
                continue
            _, __, ll = self._forward(log_obs)
            total += ll
            count += len(log_obs)
        if count == 0:
            raise ValueError("no observations")
        return total / count

    # ------------------------------------------------------------------
    # Training (Baum–Welch)
    # ------------------------------------------------------------------
    def fit(
        self,
        series: Sequence[Sequence[float]],
        max_iterations: int = 40,
        tolerance: float = 1e-4,
    ) -> HmmFit:
        """EM over a set of per-session throughput sequences."""
        sequences = [
            np.log(np.maximum(np.asarray(s, float), _MIN_THROUGHPUT))
            for s in series
            if len(s) >= 2
        ]
        if not sequences:
            raise ValueError("need at least one sequence of length >= 2")
        previous_ll = -np.inf
        iterations = 0
        converged = False
        for iterations in range(1, max_iterations + 1):
            total_ll = 0.0
            gamma_sum = np.zeros(self.n_states)
            gamma_obs_sum = np.zeros(self.n_states)
            gamma_obs_sq = np.zeros(self.n_states)
            xi_sum = np.zeros((self.n_states, self.n_states))
            initial_sum = np.zeros(self.n_states)
            for log_obs in sequences:
                T = len(log_obs)
                emissions = np.exp(self._emission_logpdf(log_obs))
                alpha, scales, ll = self._forward(log_obs)
                beta = self._backward(log_obs, scales)
                total_ll += ll
                gamma = alpha * beta
                gamma /= gamma.sum(axis=1, keepdims=True) + _LOG_FLOOR
                initial_sum += gamma[0]
                gamma_sum += gamma.sum(axis=0)
                gamma_obs_sum += gamma.T @ log_obs
                gamma_obs_sq += gamma.T @ log_obs**2
                for t in range(T - 1):
                    xi = (
                        alpha[t][:, None]
                        * self.transition
                        * (emissions[t + 1] * beta[t + 1])[None, :]
                    )
                    xi /= xi.sum() + _LOG_FLOOR
                    xi_sum += xi
            # M step.
            self.initial = initial_sum / (initial_sum.sum() + _LOG_FLOOR)
            row_sums = xi_sum.sum(axis=1, keepdims=True) + _LOG_FLOOR
            self.transition = xi_sum / row_sums
            self.means = gamma_obs_sum / (gamma_sum + _LOG_FLOOR)
            variance = gamma_obs_sq / (gamma_sum + _LOG_FLOOR) - self.means**2
            self.sigmas = np.sqrt(np.maximum(variance, 1e-4))
            if abs(total_ll - previous_ll) < tolerance * max(abs(previous_ll), 1.0):
                converged = True
                previous_ll = total_ll
                break
            previous_ll = total_ll
        order = np.argsort(self.means)
        self.means = self.means[order]
        self.sigmas = self.sigmas[order]
        self.initial = self.initial[order]
        self.transition = self.transition[np.ix_(order, order)]
        return HmmFit(
            log_likelihood=float(previous_ll),
            iterations=iterations,
            converged=converged,
        )

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def state_belief(self, observations: Sequence[float]) -> np.ndarray:
        """Posterior over states given a session's recent throughputs."""
        if not len(observations):
            return self.initial.copy()
        log_obs = np.log(
            np.maximum(np.asarray(observations, float), _MIN_THROUGHPUT)
        )
        alpha, _, __ = self._forward(log_obs)
        return alpha[-1]

    def predict_throughput(
        self, belief: np.ndarray, steps_ahead: int = 1
    ) -> float:
        """Expected throughput ``steps_ahead`` transitions into the future."""
        if steps_ahead < 1:
            raise ValueError("steps_ahead must be positive")
        future = belief @ np.linalg.matrix_power(self.transition, steps_ahead)
        state_means = np.exp(self.means + 0.5 * self.sigmas**2)
        return float(future @ state_means)


class Cs2pPredictor:
    """TransmissionTimeModel adapter around the HMM.

    The HMM's forward belief is propagated ``step + 1`` transitions ahead
    and handed to the stochastic controller as a *mixture*: one
    transmission-time outcome per hidden state, weighted by the future
    state distribution. A mixed belief (e.g., 50/50 slow/fast) then
    penalizes risky rungs through the expected-stall term instead of being
    flattened into an optimistic mean throughput.
    """

    def __init__(self, hmm: DiscreteThroughputHmm, window: int = 20) -> None:
        self.hmm = hmm
        self.window = window

    def predict(
        self, context: AbrContext, step: int, sizes_bytes: np.ndarray
    ) -> TimeDistribution:
        observations = [
            r.observed_throughput_bps
            for r in list(context.history)[-self.window :]
        ]
        belief = self.hmm.state_belief(observations)
        future = belief @ np.linalg.matrix_power(
            self.hmm.transition, step + 1
        )
        future = future / (future.sum() + _LOG_FLOOR)
        state_rates = np.maximum(
            np.exp(self.hmm.means + 0.5 * self.hmm.sigmas**2),
            _MIN_THROUGHPUT,
        )
        sizes = np.asarray(sizes_bytes, float)
        times = sizes[:, None] * 8.0 / state_rates[None, :]
        probs = np.tile(future, (len(sizes), 1))
        return TimeDistribution(times=times, probs=probs)


class Cs2pMpc(AbrAlgorithm):
    """MPC driven by the CS2P-style HMM throughput predictor."""

    name = "cs2p_mpc"

    def __init__(
        self,
        hmm: DiscreteThroughputHmm,
        qoe: QoeParams = DEFAULT_QOE,
        horizon: int = 5,
    ) -> None:
        self.controller = ValueIterationController(qoe=qoe, horizon=horizon)
        self.predictor = Cs2pPredictor(hmm)

    def choose(self, context: AbrContext) -> int:
        return self.controller.plan(context, self.predictor)


def throughput_series_from_streams(
    streams: Sequence,
) -> List[List[float]]:
    """Extract per-session chunk-throughput sequences for HMM training."""
    series = []
    for stream in streams:
        seq = [r.observed_throughput_bps for r in stream.records]
        if len(seq) >= 2:
            series.append(seq)
    return series

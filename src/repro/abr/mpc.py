"""MPC-HM and RobustMPC-HM (Yin et al., SIGCOMM 2015 [43]).

Both use the same stochastic value-iteration controller as Fugu (§4.4 — on
Puffer, "MPC and Fugu even share most of their codebase") but with the
classical harmonic-mean throughput predictor: transmission time of a
candidate chunk is its size divided by the harmonic mean of the last five
chunk-level throughput samples, as a *point estimate* (a degenerate
one-outcome distribution).

RobustMPC divides the throughput estimate by ``1 + max recent relative
prediction error``, the lower-bound discounting of the original paper, which
trades video quality for fewer stalls — visible in Fig. 1/8 where
RobustMPC-HM has the lowest stall rate and markedly lower SSIM.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.abr.base import (
    AbrAlgorithm,
    AbrContext,
    ChunkRecord,
    harmonic_mean_throughput,
)
from repro.core.controller import (
    TimeDistribution,
    ValueIterationController,
)
from repro.core.qoe import DEFAULT_QOE, QoeParams

DEFAULT_STARTUP_THROUGHPUT_BPS = 1.3e6
"""Assumed throughput before the first sample — deliberately conservative;
unlike Fugu, the HM predictor cannot read path quality off TCP statistics
on a cold start (Fig. 9)."""

_HM_WINDOW = 5


class HarmonicMeanPredictor:
    """Point-estimate transmission-time model from HM throughput.

    Also tracks per-chunk relative prediction errors for RobustMPC's
    discounting.
    """

    def __init__(
        self,
        robust: bool = False,
        window: int = _HM_WINDOW,
        startup_throughput_bps: float = DEFAULT_STARTUP_THROUGHPUT_BPS,
        conservatism: float = 1.0,
    ) -> None:
        if conservatism <= 0:
            raise ValueError("conservatism must be positive")
        self.robust = robust
        self.window = window
        self.startup_throughput_bps = startup_throughput_bps
        self.conservatism = conservatism
        self._errors: Deque[float] = deque(maxlen=window)
        self._last_estimate_bps: Optional[float] = None

    def reset(self) -> None:
        self._errors.clear()
        self._last_estimate_bps = None

    def throughput_estimate(self, context: AbrContext) -> float:
        estimate = harmonic_mean_throughput(context.history, self.window)
        if estimate is None:
            estimate = self.startup_throughput_bps
        if self.robust and self._errors:
            estimate /= 1.0 + self.conservatism * max(self._errors)
        return estimate

    def predict(
        self, context: AbrContext, step: int, sizes_bytes: np.ndarray
    ) -> TimeDistribution:
        estimate = self.throughput_estimate(context)
        self._last_estimate_bps = estimate
        times = np.asarray(sizes_bytes, dtype=float) * 8.0 / estimate
        return TimeDistribution.point_mass(times)

    def observe(self, record: ChunkRecord) -> None:
        """Record the relative error of the last prediction (RobustMPC)."""
        if self._last_estimate_bps is None:
            return
        actual = record.observed_throughput_bps
        if actual <= 0:
            return
        self._errors.append(abs(self._last_estimate_bps - actual) / actual)


class MpcHm(AbrAlgorithm):
    """MPC with the harmonic-mean predictor and the Eq. 1 SSIM objective."""

    name = "mpc_hm"

    def __init__(
        self,
        qoe: QoeParams = DEFAULT_QOE,
        horizon: int = 5,
        robust: bool = False,
        startup_throughput_bps: float = DEFAULT_STARTUP_THROUGHPUT_BPS,
    ) -> None:
        self.controller = ValueIterationController(qoe=qoe, horizon=horizon)
        self.predictor = HarmonicMeanPredictor(
            robust=robust, startup_throughput_bps=startup_throughput_bps
        )

    def begin_stream(self) -> None:
        self.predictor.reset()

    def choose(self, context: AbrContext) -> int:
        return self.controller.plan(context, self.predictor)

    def on_chunk_complete(self, record: ChunkRecord) -> None:
        self.predictor.observe(record)


class RobustMpcHm(MpcHm):
    """RobustMPC: HM predictor with worst-case error discounting.

    ``conservatism`` scales the error discount; the default > 1 reflects
    RobustMPC's position in the paper as the most stall-averse scheme
    (lowest stall rate of all five, at a considerable cost in quality,
    Fig. 1/8).
    """

    name = "robust_mpc_hm"

    def __init__(
        self,
        qoe: QoeParams = DEFAULT_QOE,
        horizon: int = 5,
        startup_throughput_bps: float = DEFAULT_STARTUP_THROUGHPUT_BPS,
        conservatism: float = 3.0,
    ) -> None:
        super().__init__(
            qoe=qoe,
            horizon=horizon,
            robust=True,
            startup_throughput_bps=startup_throughput_bps,
        )
        self.predictor.conservatism = conservatism

"""Oboe-style auto-tuning (Akhtar et al., SIGCOMM 2018 [2]).

Oboe "auto-tun[es] video ABR algorithms to network conditions": offline, it
simulates a tunable ABR (RobustMPC) over synthetic stationary network
states — parameterized by throughput mean and variability — and records the
best-performing configuration per state; online, it detects network state
changes and applies the stored configuration. Like CS2P it assumes
"the network path has changed state" is a meaningful, detectable event (§2)
— the discrete-state world view Fig. 2 shows Puffer does not exhibit.

This implementation tunes RobustMPC's ``conservatism`` (the error-discount
multiplier) per (log-mean throughput, coefficient-of-variation) bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import AbrAlgorithm, AbrContext, ChunkRecord
from repro.abr.mpc import RobustMpcHm
from repro.core.qoe import DEFAULT_QOE, QoeParams, chunk_qoe
from repro.media.encoder import VbrEncoder
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net.link import HeavyTailLink
from repro.net.tcp import TcpConnection
from repro.streaming.simulator import simulate_stream

DEFAULT_CONSERVATISM_CANDIDATES = (0.5, 1.0, 3.0, 6.0)
DEFAULT_MEAN_EDGES_BPS = (1e6, 4e6, 16e6)
"""Bucket edges on mean throughput: <1, 1–4, 4–16, >16 Mbit/s."""

DEFAULT_CV_EDGE = 0.4
"""Buckets split into 'steady' vs 'variable' at this coefficient of
variation, as Oboe distinguishes throughput stability."""


def classify_state(
    mean_bps: float,
    cv: float,
    mean_edges: Sequence[float] = DEFAULT_MEAN_EDGES_BPS,
    cv_edge: float = DEFAULT_CV_EDGE,
) -> Tuple[int, int]:
    """Map a (mean, coefficient-of-variation) pair to a state bucket."""
    if mean_bps <= 0:
        raise ValueError("mean throughput must be positive")
    mean_bucket = int(np.searchsorted(mean_edges, mean_bps))
    cv_bucket = 0 if cv < cv_edge else 1
    return mean_bucket, cv_bucket


@dataclass
class OboeConfigMap:
    """Offline-tuned configuration per network-state bucket."""

    table: Dict[Tuple[int, int], float] = field(default_factory=dict)
    default_conservatism: float = 3.0
    mean_edges: Tuple[float, ...] = DEFAULT_MEAN_EDGES_BPS
    cv_edge: float = DEFAULT_CV_EDGE

    def lookup(self, mean_bps: float, cv: float) -> float:
        key = classify_state(mean_bps, cv, self.mean_edges, self.cv_edge)
        return self.table.get(key, self.default_conservatism)


def _mean_chunk_qoe(result, qoe: QoeParams) -> float:
    """Cumulative Eq. 1 QoE per chunk for an offline-simulated stream."""
    if not result.records:
        return -np.inf
    total = 0.0
    prev: Optional[float] = None
    buffer = 0.0
    for record in result.records:
        total += chunk_qoe(
            qoe, record.ssim_db, prev, record.transmission_time, buffer
        )
        buffer = min(max(buffer - record.transmission_time, 0.0) + 2.002, 15.0)
        prev = record.ssim_db
    return total / len(result.records)


def build_config_map(
    candidates: Sequence[float] = DEFAULT_CONSERVATISM_CANDIDATES,
    traces_per_state: int = 4,
    chunks_per_trace: float = 120.0,
    qoe: QoeParams = DEFAULT_QOE,
    seed: int = 0,
) -> OboeConfigMap:
    """Oboe's offline stage: per synthetic stationary state, pick the
    RobustMPC conservatism maximizing mean chunk QoE."""
    config_map = OboeConfigMap()
    mean_levels = [5e5, 2e6, 8e6, 3e7]  # representative of each bucket
    cv_levels = [(0.15, 0), (0.7, 1)]
    for mean_i, mean_bps in enumerate(mean_levels):
        for sigma, cv_bucket in cv_levels:
            scores = {c: 0.0 for c in candidates}
            for trace_i in range(traces_per_state):
                # Tuple seeds, domain-separated per RNG family: the media
                # generator and the link previously shared one arithmetic
                # seed and so drew identical streams.  Both are rebuilt
                # inside the conservatism loop on purpose — every
                # candidate replays the exact same synthetic state.
                media_seed = (seed, 0x0B0E, mean_i, cv_bucket, trace_i)
                link_seed = (seed, 0x117C, mean_i, cv_bucket, trace_i)
                for conservatism in candidates:
                    rng = np.random.default_rng(media_seed)
                    source = VideoSource(DEFAULT_CHANNELS[0], rng=rng)
                    encoder = VbrEncoder(rng=rng)
                    link = HeavyTailLink(
                        base_bps=mean_bps, sigma=sigma, fade_rate=0.0,
                        seed=link_seed,
                    )
                    connection = TcpConnection(link, base_rtt=0.05)
                    result = simulate_stream(
                        encoder.stream(source),
                        RobustMpcHm(conservatism=conservatism),
                        connection,
                        watch_time_s=chunks_per_trace * 2.002,
                    )
                    scores[conservatism] += _mean_chunk_qoe(result, qoe)
            best = max(scores, key=scores.get)
            config_map.table[(mean_i, cv_bucket)] = best
    return config_map


class OboeRobustMpc(AbrAlgorithm):
    """RobustMPC with Oboe-style per-state configuration switching.

    Online, the scheme estimates the current network state from a window of
    observed chunk throughputs; when the state's bucket changes (Oboe's
    change-point event), the controller's conservatism is re-looked-up.
    """

    name = "oboe_robust_mpc"

    def __init__(
        self,
        config_map: OboeConfigMap,
        qoe: QoeParams = DEFAULT_QOE,
        window: int = 10,
    ) -> None:
        if window < 2:
            raise ValueError("need a window of at least 2 samples")
        self.config_map = config_map
        self.window = window
        self._inner = RobustMpcHm(qoe=qoe)
        self._state: Optional[Tuple[int, int]] = None

    @property
    def current_conservatism(self) -> float:
        return self._inner.predictor.conservatism

    def begin_stream(self) -> None:
        self._inner.begin_stream()
        self._state = None

    def _update_state(self, history: Sequence[ChunkRecord]) -> None:
        recent = list(history)[-self.window :]
        if len(recent) < 2:
            return
        throughputs = np.array(
            [r.observed_throughput_bps for r in recent]
        )
        mean = float(throughputs.mean())
        cv = float(throughputs.std() / mean) if mean > 0 else 1.0
        state = classify_state(
            mean, cv, self.config_map.mean_edges, self.config_map.cv_edge
        )
        if state != self._state:
            self._state = state
            self._inner.predictor.conservatism = self.config_map.lookup(
                mean, cv
            )

    def choose(self, context: AbrContext) -> int:
        self._update_state(context.history)
        return self._inner.choose(context)

    def on_chunk_complete(self, record: ChunkRecord) -> None:
        self._inner.on_chunk_complete(record)

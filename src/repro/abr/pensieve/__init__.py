"""Pensieve — RL-based ABR (Mao et al., SIGCOMM 2017 [23]).

Unlike Fugu, Pensieve's neural network makes *decisions* rather than
predictions, so it must be trained with reinforcement learning against a
training environment (§2). Following the paper's deployment notes (§3.3):

* the policy optimizes a bitrate-based QoE (it "considers the average
  bitrate of each Puffer stream", not per-chunk sizes or SSIM);
* it is trained in simulation over FCC-style traces (the original used the
  FCC and Norway trace sets in a chunk-level simulator);
* the multi-video model treats the stream as never-ending (the paper sets
  ``video_num_chunks`` to 24 hours of video).

The actor-critic (A2C) trainer lives in :mod:`repro.abr.pensieve.train`;
the deployable :class:`Pensieve` ABR wrapper in
:mod:`repro.abr.pensieve.policy`.
"""

from repro.abr.pensieve.model import ActorCritic, PENSIEVE_STATE_DIM
from repro.abr.pensieve.policy import Pensieve
from repro.abr.pensieve.train import (
    PensieveTrainer,
    PensieveTrainingConfig,
    SimpleChunkEnv,
)

__all__ = [
    "ActorCritic",
    "PENSIEVE_STATE_DIM",
    "Pensieve",
    "PensieveTrainer",
    "PensieveTrainingConfig",
    "SimpleChunkEnv",
]

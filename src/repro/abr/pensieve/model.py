"""Pensieve's actor-critic networks and state encoding.

The original uses 1-D convolutions over history; at our state sizes a dense
network is equivalent in capacity and far simpler, so both heads are MLPs
over a flat state vector:

* bitrate of the last selected version (normalized),
* current buffer level,
* throughput and download time of the past 8 chunks,
* the ladder's (average) bitrates — Pensieve on Puffer sees average
  bitrates, not per-chunk sizes (§3.3),
* a "chunks remaining" slot pinned to 1.0 (endless live video).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.abr.base import ChunkRecord
from repro.learn.network import MLP

HISTORY_LEN = 8
_BITRATE_SCALE = 6e6  # bits/s; top of the Puffer ladder
_BUFFER_SCALE = 10.0  # seconds
_THROUGHPUT_SCALE = 1.2e7  # bits/s; the 12 Mbit/s cap of the training traces
_TIME_SCALE = 10.0  # seconds

# Observations are clipped to the range the policy saw in training (the
# FCC-style traces are capped at 12 Mbit/s); without this, the fat paths of
# the real deployment put the network far outside its training manifold and
# its behaviour degenerates.
_FEATURE_CLIP = 1.0

PENSIEVE_STATE_DIM = 2 + 2 * HISTORY_LEN + 10 + 1


def encode_state(
    last_rung_bitrate_bps: Optional[float],
    buffer_s: float,
    history: Sequence[ChunkRecord],
    ladder_bitrates_bps: Sequence[float],
) -> np.ndarray:
    """Build Pensieve's flat state vector."""
    if len(ladder_bitrates_bps) != 10:
        raise ValueError("Pensieve's Puffer deployment uses a 10-rung ladder")
    throughputs = np.zeros(HISTORY_LEN)
    times = np.zeros(HISTORY_LEN)
    recent = list(history)[-HISTORY_LEN:]
    offset = HISTORY_LEN - len(recent)
    for i, record in enumerate(recent):
        throughputs[offset + i] = min(
            record.observed_throughput_bps / _THROUGHPUT_SCALE, _FEATURE_CLIP
        )
        times[offset + i] = min(
            record.transmission_time / _TIME_SCALE, _FEATURE_CLIP
        )
    last_bitrate = (
        0.0
        if last_rung_bitrate_bps is None
        else last_rung_bitrate_bps / _BITRATE_SCALE
    )
    return np.concatenate(
        [
            [last_bitrate, buffer_s / _BUFFER_SCALE],
            throughputs,
            times,
            np.asarray(ladder_bitrates_bps) / _BITRATE_SCALE,
            [1.0],  # endless live stream: "chunks remaining" saturated
        ]
    )


class ActorCritic:
    """Policy and value networks sharing the state encoding."""

    def __init__(
        self,
        n_actions: int = 10,
        hidden: Sequence[int] = (64, 64),
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.n_actions = n_actions
        self.actor = MLP(PENSIEVE_STATE_DIM, list(hidden), n_actions, rng=rng)
        self.critic = MLP(PENSIEVE_STATE_DIM, list(hidden), 1, rng=rng)

    def action_probabilities(self, states: np.ndarray) -> np.ndarray:
        """π(a | s) for a batch of states."""
        return self.actor.predict_proba(np.atleast_2d(states))

    def values(self, states: np.ndarray) -> np.ndarray:
        """V(s) for a batch of states."""
        return self.critic.predict(np.atleast_2d(states)).ravel()

    def act(
        self,
        state: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        greedy: bool = False,
    ) -> int:
        """Sample (training) or argmax (deployment) an action."""
        probs = self.action_probabilities(state)[0]
        if greedy or rng is None:
            return int(np.argmax(probs))
        return int(rng.choice(self.n_actions, p=probs))

    def state_dict(self) -> dict:
        return {
            "actor": self.actor.state_dict(),
            "critic": self.critic.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.actor.load_state_dict(state["actor"])
        self.critic.load_state_dict(state["critic"])

    def copy(self) -> "ActorCritic":
        clone = ActorCritic(n_actions=self.n_actions)
        # Architectures may differ from defaults; rebuild from state dicts.
        clone.actor = MLP(
            self.actor.in_features, self.actor.hidden, self.actor.out_features
        )
        clone.critic = MLP(
            self.critic.in_features, self.critic.hidden, self.critic.out_features
        )
        clone.load_state_dict(self.state_dict())
        return clone


def ladder_average_bitrates(ladder_bitrates_bps: Sequence[float]) -> List[float]:
    """Average bitrates per rung — the only size signal Pensieve receives."""
    return [float(b) for b in ladder_bitrates_bps]

"""Deployable Pensieve ABR wrapper.

Maps the live :class:`AbrContext` into Pensieve's state vector and executes
the trained policy greedily (the released Pensieve does the same at
inference: argmax over the policy head). Pensieve ignores SSIM and per-chunk
sizes — its Puffer deployment "considers the average bitrate of each Puffer
stream" (§3.3) — so its state uses only the ladder's nominal bitrates.
"""

from __future__ import annotations

from typing import Optional

from repro.abr.base import AbrAlgorithm, AbrContext
from repro.abr.pensieve.model import ActorCritic, encode_state
from repro.media.ladder import PUFFER_LADDER, EncodingLadder


class Pensieve(AbrAlgorithm):
    """Greedy execution of a trained Pensieve actor."""

    name = "pensieve"

    def __init__(
        self,
        model: ActorCritic,
        ladder: EncodingLadder = PUFFER_LADDER,
    ) -> None:
        if model.n_actions != len(ladder):
            raise ValueError(
                "policy action space must match the ladder size "
                f"({model.n_actions} != {len(ladder)})"
            )
        self.model = model
        self.ladder = ladder
        self._last_rung: Optional[int] = None

    def begin_stream(self) -> None:
        self._last_rung = None

    def choose(self, context: AbrContext) -> int:
        last_bitrate = (
            None
            if self._last_rung is None
            else self.ladder[self._last_rung].target_bitrate
        )
        state = encode_state(
            last_bitrate,
            context.buffer_s,
            context.history,
            self.ladder.bitrates,
        )
        action = self.model.act(state, greedy=True)
        self._last_rung = action
        return action

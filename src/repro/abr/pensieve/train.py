"""A2C training of Pensieve in a chunk-level simulator.

The original Pensieve trains in its own crude simulator: download time of a
chunk is its size over the trace's current throughput plus a latency term,
the buffer drains at 1 s/s, and the agent receives the bitrate-based QoE as
reward:

    r_i = bitrate_i [Mbps] - mu * rebuffer_i [s] - lam * |bitrate_i - bitrate_{i-1}|

with mu = 4.3 and lam = 1 for the QoE-lin metric. We reproduce that setup —
*including* its unfaithfulness to the real network path (no slow start, no
idle restart, no heavy tails when trained on FCC-style traces), which is the
mechanism behind Pensieve's sim-to-real gap in Fig. 8/11.

Training uses advantage actor-critic with entropy regularization; the paper
notes the Pensieve authors advised tuning the entropy parameter over a long
multi-video training run, which we mirror with a linear entropy decay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.abr.base import ChunkRecord
from repro.abr.pensieve.model import ActorCritic, encode_state
from repro.learn.optim import Adam
from repro.media.chunk import ChunkMenu
from repro.media.encoder import VbrEncoder
from repro.media.ladder import PUFFER_LADDER, EncodingLadder
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net.tcp import TcpInfo

REBUFFER_PENALTY = 4.3
"""QoE-lin rebuffering weight (Mbps-equivalents per stall second)."""

SMOOTHNESS_PENALTY = 1.0

_IDLE_INFO = TcpInfo(cwnd=10, in_flight=0, min_rtt=0.04, rtt=0.04, delivery_rate=0.0)


class SimpleChunkEnv:
    """Pensieve's training environment: trace playback + buffer arithmetic.

    Deliberately cruder than :mod:`repro.streaming`: download time is
    ``size / throughput + latency`` with no congestion-control dynamics.
    """

    def __init__(
        self,
        traces: Sequence[Sequence[float]],
        ladder: EncodingLadder = PUFFER_LADDER,
        latency_s: float = 0.08,
        max_buffer_s: float = 15.0,
        chunks_per_episode: int = 120,
        seed: int = 0,
    ) -> None:
        if not traces:
            raise ValueError("need at least one training trace")
        self.traces = [list(t) for t in traces]
        self.ladder = ladder
        self.latency_s = latency_s
        self.max_buffer_s = max_buffer_s
        self.chunks_per_episode = chunks_per_episode
        self.rng = np.random.default_rng(seed)
        self._menus: List[ChunkMenu] = []
        self._trace: List[float] = []
        self._trace_pos = 0.0
        self._chunk_i = 0
        self.buffer_s = 0.0
        self.history: List[ChunkRecord] = []
        self.last_bitrate: Optional[float] = None
        self._ramp_next = True

    def reset(self) -> np.ndarray:
        """Start a new episode on a random trace and fresh video."""
        self._trace = self.traces[int(self.rng.integers(len(self.traces)))]
        self._trace_pos = float(self.rng.uniform(0, len(self._trace)))
        channel = DEFAULT_CHANNELS[int(self.rng.integers(len(DEFAULT_CHANNELS)))]
        source = VideoSource(channel, rng=self.rng)
        encoder = VbrEncoder(ladder=self.ladder, rng=self.rng)
        self._menus = encoder.encode_source(source, self.chunks_per_episode)
        self._chunk_i = 0
        self.buffer_s = 0.0
        self.history = []
        self.last_bitrate = None
        self._ramp_next = True  # fresh connection: first chunk slow-starts
        return self._state()

    def _state(self) -> np.ndarray:
        return encode_state(
            self.last_bitrate,
            self.buffer_s,
            self.history,
            self.ladder.bitrates,
        )

    def _throughput_at(self, pos: float) -> float:
        return self._trace[int(pos) % len(self._trace)]

    def step(self, action: int) -> Tuple[np.ndarray, float, bool]:
        """Send the chosen version of the next chunk; returns
        (next_state, reward, done)."""
        menu = self._menus[self._chunk_i]
        version = menu[action]
        # Integrate the trace (1-second epochs) over the download. After an
        # idle period (server paused on a full buffer) the congestion
        # window has decayed, so the next chunk pays a slow-start ramp of a
        # few RTTs — matching the TCP model's idle-restart behaviour.
        # Back-to-back chunks ride the warm window and skip the ramp.
        remaining_bits = version.size_bits
        elapsed = self.latency_s
        if self._ramp_next:
            initial_window_bits = 10 * 1460 * 8.0
            ramp_rounds = max(
                0.0, np.log2(max(version.size_bits / initial_window_bits, 1.0))
            )
            elapsed += min(ramp_rounds, 8.0) * self.latency_s
        pos = self._trace_pos + self.latency_s
        guard = 0
        while remaining_bits > 0:
            guard += 1
            if guard > 100_000:
                raise RuntimeError("download did not terminate")
            tput = max(self._throughput_at(pos), 1e3)
            epoch_left = 1.0 - (pos - int(pos))
            bits_this_epoch = tput * epoch_left
            if bits_this_epoch >= remaining_bits:
                dt = remaining_bits / tput
                pos += dt
                elapsed += dt
                remaining_bits = 0.0
            else:
                remaining_bits -= bits_this_epoch
                pos += epoch_left
                elapsed += epoch_left
        self._trace_pos = pos
        rebuffer = max(elapsed - self.buffer_s, 0.0)
        self.buffer_s = max(self.buffer_s - elapsed, 0.0) + version.duration
        wait = max(self.buffer_s - self.max_buffer_s, 0.0)
        self._ramp_next = wait > 0.5  # idle long enough for window decay
        if wait > 0:
            self.buffer_s -= wait
            self._trace_pos += wait
        bitrate_mbps = version.profile.target_bitrate / 1e6
        last_mbps = (
            bitrate_mbps if self.last_bitrate is None else self.last_bitrate / 1e6
        )
        reward = (
            bitrate_mbps
            - REBUFFER_PENALTY * rebuffer
            - SMOOTHNESS_PENALTY * abs(bitrate_mbps - last_mbps)
        )
        self.history.append(
            ChunkRecord(
                chunk_index=self._chunk_i,
                rung=action,
                size_bytes=version.size_bytes,
                ssim_db=version.ssim_db,
                transmission_time=elapsed,
                info_at_send=_IDLE_INFO,
                send_time=0.0,
            )
        )
        self.last_bitrate = version.profile.target_bitrate
        self._chunk_i += 1
        done = self._chunk_i >= len(self._menus)
        return self._state(), float(reward), done


@dataclass
class PensieveTrainingConfig:
    """A2C hyperparameters."""

    episodes: int = 500
    gamma: float = 0.99
    actor_lr: float = 1e-3
    critic_lr: float = 2e-3
    entropy_start: float = 0.2
    entropy_end: float = 0.01
    seed: int = 0


@dataclass
class EpisodeStats:
    total_reward: float
    mean_bitrate_mbps: float
    rebuffer_s: float


class PensieveTrainer:
    """Advantage actor-critic with entropy regularization."""

    def __init__(
        self,
        model: ActorCritic,
        env: SimpleChunkEnv,
        config: PensieveTrainingConfig = PensieveTrainingConfig(),
    ) -> None:
        self.model = model
        self.env = env
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.actor_opt = Adam(model.actor, lr=config.actor_lr)
        self.critic_opt = Adam(model.critic, lr=config.critic_lr)
        self.history: List[EpisodeStats] = []

    def _entropy_weight(self, episode: int) -> float:
        c = self.config
        frac = episode / max(c.episodes - 1, 1)
        return c.entropy_start + frac * (c.entropy_end - c.entropy_start)

    def run_episode(self, entropy_weight: float) -> EpisodeStats:
        states: List[np.ndarray] = []
        actions: List[int] = []
        rewards: List[float] = []
        state = self.env.reset()
        done = False
        while not done:
            action = self.model.act(state, rng=self.rng)
            next_state, reward, done = self.env.step(action)
            states.append(state)
            actions.append(action)
            rewards.append(reward)
            state = next_state

        x = np.vstack(states)
        acts = np.asarray(actions)
        # Discounted returns, clipped so a single catastrophic stall does
        # not produce an exploding gradient (the environment's stall
        # penalties are unbounded).
        clipped_rewards = np.clip(rewards, -50.0, 50.0)
        returns = np.zeros(len(rewards))
        acc = 0.0
        for i in range(len(rewards) - 1, -1, -1):
            acc = clipped_rewards[i] + self.config.gamma * acc
            returns[i] = acc

        # Critic update (MSE toward returns).
        values = self.model.critic.forward(x).ravel()
        advantages = returns - values
        std = advantages.std()
        if std > 1e-6:
            advantages = (advantages - advantages.mean()) / std
        self.critic_opt.zero_grad()
        grad_v = (2.0 * (values - returns) / len(returns)).reshape(-1, 1)
        grad_v = np.clip(grad_v, -10.0, 10.0)
        self.model.critic.backward(grad_v)
        self.critic_opt.step()

        # Actor update: policy gradient + entropy bonus.
        logits = self.model.actor.forward(x)
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        n = len(acts)
        one_hot = np.zeros_like(probs)
        one_hot[np.arange(n), acts] = 1.0
        log_probs = np.log(probs + 1e-12)
        entropy = -(probs * log_probs).sum(axis=1, keepdims=True)
        # d/dlogits of -A log pi(a) is A (pi - onehot);
        # d/dlogits of -beta H is beta * pi * (log pi + H).
        grad = advantages[:, None] * (probs - one_hot)
        grad += entropy_weight * probs * (log_probs + entropy)
        grad /= n
        self.actor_opt.zero_grad()
        self.model.actor.backward(grad)
        self.actor_opt.step()

        bitrates = [
            self.env.ladder[a].target_bitrate / 1e6 for a in actions
        ]
        # Negative reward beyond the bitrate/smoothness range means stalls;
        # recover the stall seconds from the reward decomposition.
        rebuffer = sum(max(-r, 0.0) for r in rewards) / REBUFFER_PENALTY
        return EpisodeStats(
            total_reward=float(sum(rewards)),
            mean_bitrate_mbps=float(np.mean(bitrates)),
            rebuffer_s=float(rebuffer),
        )

    def train(self, episodes: Optional[int] = None) -> List[EpisodeStats]:
        n = episodes if episodes is not None else self.config.episodes
        for ep in range(n):
            stats = self.run_episode(self._entropy_weight(ep))
            self.history.append(stats)
        return self.history

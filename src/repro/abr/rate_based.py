"""Rate-based ABR baseline.

The classic "match the video bitrate to the network throughput" family
(§2: FESTIVE and friends [18, 21, 25]): estimate throughput with the
harmonic mean of recent samples and pick the highest rung whose bitrate
fits under a safety-discounted estimate. Not part of the primary experiment
but a useful reference point and regression anchor for the test suite.
"""

from __future__ import annotations

from repro.abr.base import AbrAlgorithm, AbrContext, harmonic_mean_throughput

DEFAULT_STARTUP_THROUGHPUT_BPS = 1.3e6
"""Conservative assumption before any throughput sample exists."""


class RateBased(AbrAlgorithm):
    """Highest rung whose actual chunk bitrate fits the predicted rate."""

    name = "rate_based"

    def __init__(
        self,
        safety_factor: float = 0.85,
        window: int = 5,
        startup_throughput_bps: float = DEFAULT_STARTUP_THROUGHPUT_BPS,
    ) -> None:
        if not 0.0 < safety_factor <= 1.0:
            raise ValueError("safety factor must lie in (0, 1]")
        if window <= 0:
            raise ValueError("window must be positive")
        self.safety_factor = safety_factor
        self.window = window
        self.startup_throughput_bps = startup_throughput_bps

    def choose(self, context: AbrContext) -> int:
        estimate = harmonic_mean_throughput(context.history, self.window)
        if estimate is None:
            estimate = self.startup_throughput_bps
        budget = estimate * self.safety_factor
        menu = context.menu
        choice = 0
        for i, version in enumerate(menu):
            if version.size_bits / version.duration <= budget:
                choice = i
        return choice

"""Statistical analysis: bootstrap CIs, weighted errors, summaries, power.

Implements the paper's uncertainty machinery (§3.4): bootstrap confidence
intervals on rebuffering ratio, duration-weighted standard errors on SSIM,
CCDFs of watch time, and the detectability analysis behind "it takes about
2 stream-years of data to reliably distinguish two ABR schemes whose innate
'true' performance differs by 15%".
"""

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    aggregate_stall_ratio,
    bootstrap_mean_ci,
    bootstrap_stall_ratio_ci,
)
from repro.analysis.power import (
    DetectabilityPoint,
    StreamPopulation,
    detectability_curve,
    stall_ratio_ci_width,
)
from repro.analysis.stats import (
    ccdf,
    stream_years,
    weighted_mean,
    weighted_mean_ci,
    weighted_standard_error,
)
from repro.analysis.figures import all_figures
from repro.analysis.plotting import ccdf_plot, scatter_plot
from repro.analysis.qoe_metrics import mean_qoe, qoe_lin, ssim_qoe, stream_qoe
from repro.analysis.summary import (
    ListAggregator,
    SchemeSummary,
    StreamAggregator,
    results_table,
    split_slow_paths,
    summarize_scheme,
)

__all__ = [
    "ConfidenceInterval",
    "aggregate_stall_ratio",
    "bootstrap_stall_ratio_ci",
    "bootstrap_mean_ci",
    "weighted_mean",
    "weighted_standard_error",
    "weighted_mean_ci",
    "ccdf",
    "stream_years",
    "SchemeSummary",
    "StreamAggregator",
    "ListAggregator",
    "summarize_scheme",
    "split_slow_paths",
    "results_table",
    "all_figures",
    "scatter_plot",
    "ccdf_plot",
    "ssim_qoe",
    "qoe_lin",
    "stream_qoe",
    "mean_qoe",
    "StreamPopulation",
    "DetectabilityPoint",
    "detectability_curve",
    "stall_ratio_ci_width",
]

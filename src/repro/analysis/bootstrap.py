"""Bootstrap confidence intervals for the stall (rebuffering) ratio.

§3.4: "We calculate confidence intervals on rebuffering ratio with the
bootstrap method [12], simulating streams drawn empirically from each
scheme's observed distribution of rebuffering ratio as a function of stream
duration." The aggregate stall ratio is a ratio of sums (total stalled time
over total watch time), so per-stream resampling with replacement is the
appropriate unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.streaming.session import StreamResult


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if not self.low <= self.point <= self.high:
            raise ValueError(
                f"interval must bracket the point estimate "
                f"({self.low}, {self.point}, {self.high})"
            )

    @property
    def width(self) -> float:
        return self.high - self.low

    @property
    def half_width_fraction(self) -> float:
        """CI half-width as a fraction of the point estimate — §3.4 reports
        this as ±10%–17% at 1.75 stream-years per scheme."""
        if self.point == 0:
            return float("inf")
        return (self.width / 2.0) / abs(self.point)

    def overlaps(self, other: "ConfidenceInterval") -> bool:
        return self.low <= other.high and other.low <= self.high


def aggregate_stall_ratio(
    stall_times: np.ndarray, watch_times: np.ndarray
) -> float:
    """Total time stalled over total watch time."""
    total_watch = watch_times.sum()
    if total_watch <= 0:
        return 0.0
    return float(stall_times.sum() / total_watch)


def bootstrap_stall_ratio_ci(
    streams: Sequence[StreamResult],
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for a scheme's aggregate stall ratio."""
    if not streams:
        raise ValueError("need at least one stream")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    stalls = np.array([s.stall_time for s in streams])
    watches = np.array([s.watch_time for s in streams])
    point = aggregate_stall_ratio(stalls, watches)
    rng = np.random.default_rng(seed)
    n = len(streams)
    estimates = np.empty(n_resamples)
    for b in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        estimates[b] = aggregate_stall_ratio(stalls[idx], watches[idx])
    alpha = (1.0 - confidence) / 2.0
    low = float(np.quantile(estimates, alpha))
    high = float(np.quantile(estimates, 1.0 - alpha))
    # Guard against quantile jitter placing the point marginally outside.
    return ConfidenceInterval(
        point=point,
        low=min(low, point),
        high=max(high, point),
        confidence=confidence,
    )


def bootstrap_mean_ci(
    values: Sequence[float],
    weights: Sequence[float] = None,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for a (weighted) mean of per-stream values."""
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        raise ValueError("need at least one value")
    w = (
        np.ones_like(values)
        if weights is None
        else np.asarray(weights, dtype=float)
    )
    if w.shape != values.shape:
        raise ValueError("weights must match values")
    point = float(np.average(values, weights=w))
    rng = np.random.default_rng(seed)
    n = len(values)
    estimates = np.empty(n_resamples)
    for b in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        estimates[b] = np.average(values[idx], weights=w[idx])
    alpha = (1.0 - confidence) / 2.0
    low = float(np.quantile(estimates, alpha))
    high = float(np.quantile(estimates, 1.0 - alpha))
    return ConfidenceInterval(
        point=point,
        low=min(low, point),
        high=max(high, point),
        confidence=confidence,
    )

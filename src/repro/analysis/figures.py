"""Figure-data builders: one function per paper figure, returning plain
JSON-serializable dictionaries.

The benchmarks assert on these structures and the ``examples/make_figures``
script dumps them to disk, so every figure's underlying series is available
for external plotting without re-running the simulations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

import numpy as np

from repro.analysis.stats import ccdf
from repro.analysis.summary import split_slow_paths, summarize_scheme

if TYPE_CHECKING:
    from repro.experiment.harness import TrialResult


def fig1_table(trial: "TrialResult", n_resamples: int = 400) -> Dict:
    """The primary-results table as data."""
    rows = {}
    for name in trial.scheme_names:
        streams = trial.streams_for(name)
        if not streams:
            continue
        s = summarize_scheme(
            name, streams, trial.session_durations_for(name),
            n_resamples=n_resamples,
        )
        rows[name] = {
            "time_stalled_percent": s.stall_percent,
            "stall_ci": [s.stall_ratio.low * 100, s.stall_ratio.high * 100],
            "mean_ssim_db": s.mean_ssim_db.point,
            "ssim_ci": [s.mean_ssim_db.low, s.mean_ssim_db.high],
            "ssim_variation_db": s.ssim_variation_db,
            "mean_duration_min": (
                s.mean_session_duration_s.point / 60.0
                if s.mean_session_duration_s
                else None
            ),
            "n_streams": s.n_streams,
            "stream_years": s.stream_years,
        }
    return rows


def fig4_points(trial: "TrialResult") -> Dict[str, Dict[str, float]]:
    """SSIM vs bitrate scatter points."""
    points = {}
    for name in trial.scheme_names:
        streams = trial.streams_for(name)
        if not streams:
            continue
        s = summarize_scheme(name, streams, n_resamples=100)
        points[name] = {
            "bitrate_mbps": s.mean_bitrate_bps / 1e6,
            "ssim_db": s.mean_ssim_db.point,
        }
    return points


def fig8_panels(trial: "TrialResult", n_resamples: int = 400) -> Dict:
    """The two SSIM-vs-stall panels, with CI extents."""
    panels: Dict[str, Dict] = {"all": {}, "slow": {}}
    for name in trial.scheme_names:
        streams = trial.streams_for(name)
        if not streams:
            continue
        s = summarize_scheme(name, streams, n_resamples=n_resamples)
        panels["all"][name] = _scatter_entry(s)
        slow, _ = split_slow_paths(streams)
        if len(slow) >= 10:
            panels["slow"][name] = _scatter_entry(
                summarize_scheme(name, slow, n_resamples=n_resamples)
            )
    return panels


def _scatter_entry(s) -> Dict:
    return {
        "stall_percent": s.stall_percent,
        "stall_ci": [s.stall_ratio.low * 100, s.stall_ratio.high * 100],
        "ssim_db": s.mean_ssim_db.point,
        "ssim_ci": [s.mean_ssim_db.low, s.mean_ssim_db.high],
        "n_streams": s.n_streams,
    }


def fig9_points(trial: "TrialResult") -> Dict[str, Dict[str, float]]:
    """Cold start: startup delay vs first-chunk SSIM."""
    points = {}
    for name in trial.scheme_names:
        streams = [s for s in trial.streams_for(name) if s.records]
        if not streams:
            continue
        points[name] = {
            "startup_delay_s": float(
                np.mean([s.startup_delay for s in streams])
            ),
            "first_chunk_ssim_db": float(
                np.mean([s.first_chunk_ssim_db for s in streams])
            ),
        }
    return points


def fig10_ccdfs(trial: "TrialResult") -> Dict[str, Dict[str, List[float]]]:
    """Session-duration CCDF per scheme (minutes)."""
    curves = {}
    for name in trial.scheme_names:
        durations = trial.session_durations_for(name)
        if len(durations) < 2:
            continue
        x, p = ccdf([d / 60.0 for d in durations])
        curves[name] = {"minutes": x.tolist(), "survival": p.tolist()}
    return curves


def consort_flow_data(trial: "TrialResult") -> Dict:
    """Fig. A1 counts."""
    flow = trial.consort
    return {
        "sessions_randomized": flow.sessions_randomized,
        "streams_total": flow.streams_total,
        "streams_considered": flow.streams_considered,
        "considered_watch_years": flow.considered_watch_years,
        "arms": {
            name: {
                "sessions": arm.sessions_assigned,
                "streams": arm.streams_assigned,
                "did_not_begin": arm.did_not_begin,
                "watch_time_under_4s": arm.watch_time_under_4s,
                "slow_video_decoder": arm.slow_video_decoder,
                "truncated": arm.truncated_loss_of_contact,
                "considered": arm.considered,
            }
            for name, arm in flow.arms.items()
        },
    }


def all_figures(trial: "TrialResult") -> Dict[str, Dict]:
    """Every trial-derived figure, keyed by its paper number."""
    return {
        "fig1": fig1_table(trial),
        "fig4": fig4_points(trial),
        "fig8": fig8_panels(trial),
        "fig9": fig9_points(trial),
        "fig10": fig10_ccdfs(trial),
        "figA1": consort_flow_data(trial),
    }

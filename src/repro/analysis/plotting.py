"""ASCII rendering of the paper's figure types.

The benchmarks and examples print their figure data; these helpers render
the two recurring plot shapes — the SSIM-vs-stall scatter of Figs. 8/11 and
the log-log CCDF of Fig. 10 — as terminal-friendly ASCII so the
reproduction's output can be eyeballed against the paper without a plotting
stack.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def _normalize(values: np.ndarray, lo: float, hi: float, cells: int) -> np.ndarray:
    if hi - lo < 1e-12:
        return np.zeros(len(values), dtype=int)
    frac = (np.asarray(values) - lo) / (hi - lo)
    return np.clip((frac * (cells - 1)).round().astype(int), 0, cells - 1)


def scatter_plot(
    points: Dict[str, Tuple[float, float]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    invert_x: bool = False,
) -> str:
    """Render labelled points as an ASCII scatter.

    ``points`` maps a series name to an (x, y) pair. ``invert_x`` flips the
    x-axis so "better" can point right, matching the paper's stall axes
    (Fig. 8 plots *decreasing* stall percentage rightward).
    """
    if not points:
        raise ValueError("need at least one point")
    names = list(points)
    xs = np.array([points[n][0] for n in names], dtype=float)
    ys = np.array([points[n][1] for n in names], dtype=float)
    x_pad = (xs.max() - xs.min()) * 0.1 + 1e-9
    y_pad = (ys.max() - ys.min()) * 0.1 + 1e-9
    x_lo, x_hi = xs.min() - x_pad, xs.max() + x_pad
    y_lo, y_hi = ys.min() - y_pad, ys.max() + y_pad
    cols = _normalize(xs, x_lo, x_hi, width)
    if invert_x:
        cols = width - 1 - cols
    rows = height - 1 - _normalize(ys, y_lo, y_hi, height)

    grid = [[" "] * width for _ in range(height)]
    labels: List[str] = []
    for i, name in enumerate(names):
        marker = chr(ord("A") + i % 26)
        grid[rows[i]][cols[i]] = marker
        labels.append(f"  {marker} = {name} ({xs[i]:.3g}, {ys[i]:.3g})")

    lines = ["+" + "-" * width + "+"]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    direction = "decreasing ->" if invert_x else "increasing ->"
    lines.append(f" x: {x_label} ({direction}), y: {y_label} (up)")
    lines.extend(labels)
    return "\n".join(lines)


def ccdf_plot(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 14,
    x_label: str = "value",
) -> str:
    """Render CCDFs on log-log axes as ASCII (the Fig. 10 shape).

    ``series`` maps a name to ``(sorted_values, survival_probabilities)``
    as produced by :func:`repro.analysis.stats.ccdf`.
    """
    if not series:
        raise ValueError("need at least one series")
    all_x = np.concatenate([np.asarray(v[0], float) for v in series.values()])
    all_p = np.concatenate([np.asarray(v[1], float) for v in series.values()])
    all_x = all_x[all_x > 0]
    all_p = all_p[all_p > 0]
    if len(all_x) == 0:
        raise ValueError("CCDF values must be positive for log axes")
    x_lo, x_hi = np.log10(all_x.min()), np.log10(all_x.max() + 1e-12)
    p_lo, p_hi = np.log10(all_p.min()), 0.0

    grid = [[" "] * width for _ in range(height)]
    labels = []
    for i, (name, (values, probs)) in enumerate(series.items()):
        marker = chr(ord("a") + i % 26)
        values = np.asarray(values, float)
        probs = np.asarray(probs, float)
        keep = (values > 0) & (probs > 0)
        cols = _normalize(np.log10(values[keep]), x_lo, x_hi, width)
        rows = height - 1 - _normalize(np.log10(probs[keep]), p_lo, p_hi, height)
        for c, r in zip(cols, rows):
            grid[r][c] = marker
        labels.append(f"  {marker} = {name}")

    lines = ["+" + "-" * width + "+"]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f" x: log {x_label}, y: log P(X > x)")
    lines.extend(labels)
    return "\n".join(lines)

"""Statistical detectability analysis (§3.4 / §5.3).

The paper's uncertainty claims, reproduced as computations:

* with ~1.75 stream-years per scheme, the 95% CI on a scheme's stall ratio
  is ±10–17% of its mean — so "even with a year of accumulated experience
  per scheme, a 20% improvement in rebuffering ratio would be statistically
  indistinguishable";
* "it takes about 2 stream-years of data to reliably distinguish two ABR
  schemes whose innate 'true' performance differs by 15%".

:func:`detectability_curve` Monte-Carlos that question directly: draw two
synthetic stream populations whose true stall ratios differ by a given
factor, accumulate increasing amounts of data, and measure how often the
bootstrap CIs separate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.analysis.bootstrap import aggregate_stall_ratio


@dataclass(frozen=True)
class StreamPopulation:
    """Generative model of per-stream (watch time, stall time) pairs with
    the heavy-tailed structure the paper observes: log-normal watch times,
    rare stalls (a few % of streams), and skewed stall magnitudes."""

    stall_probability: float = 0.04
    mean_stall_ratio_when_stalled: float = 0.08
    watch_log_mean: float = np.log(300.0)
    watch_log_sigma: float = 1.3

    def __post_init__(self) -> None:
        if not 0.0 < self.stall_probability <= 1.0:
            raise ValueError("stall probability must lie in (0, 1]")
        if self.mean_stall_ratio_when_stalled <= 0:
            raise ValueError("stall magnitude must be positive")

    @property
    def true_stall_ratio(self) -> float:
        """Expected aggregate stall ratio (stall time scales with watch
        time in this model, so the ratio is probability x magnitude)."""
        return self.stall_probability * self.mean_stall_ratio_when_stalled

    def scaled(self, factor: float) -> "StreamPopulation":
        """A population whose true stall ratio is ``factor`` x this one's."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return StreamPopulation(
            stall_probability=self.stall_probability,
            mean_stall_ratio_when_stalled=(
                self.mean_stall_ratio_when_stalled * factor
            ),
            watch_log_mean=self.watch_log_mean,
            watch_log_sigma=self.watch_log_sigma,
        )

    def sample(
        self, n_streams: int, rng: np.random.Generator
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Draw (watch_times, stall_times) for ``n_streams`` streams."""
        watch = np.exp(
            rng.normal(self.watch_log_mean, self.watch_log_sigma, n_streams)
        )
        stalled = rng.random(n_streams) < self.stall_probability
        # Stall magnitude is itself skewed (exponential around the mean).
        magnitude = rng.exponential(
            self.mean_stall_ratio_when_stalled, n_streams
        )
        stall = np.where(stalled, watch * magnitude, 0.0)
        return watch, stall


@dataclass(frozen=True)
class DetectabilityPoint:
    """Outcome of the Monte Carlo at one data volume."""

    stream_years_per_scheme: float
    n_streams_per_scheme: int
    detection_rate: float
    ci_half_width_fraction: float


def stall_ratio_ci_width(
    watch: np.ndarray,
    stall: np.ndarray,
    n_resamples: int = 300,
    rng: "np.random.Generator | None" = None,
) -> "tuple[float, float, float]":
    """(point, low, high) bootstrap interval on an aggregate stall ratio."""
    rng = rng if rng is not None else np.random.default_rng(0)
    n = len(watch)
    estimates = np.empty(n_resamples)
    for b in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        estimates[b] = aggregate_stall_ratio(stall[idx], watch[idx])
    return (
        aggregate_stall_ratio(stall, watch),
        float(np.quantile(estimates, 0.025)),
        float(np.quantile(estimates, 0.975)),
    )


def detectability_curve(
    improvement: float = 0.15,
    stream_counts: Sequence[int] = (250, 1000, 4000, 16000),
    population: StreamPopulation = StreamPopulation(),
    n_trials: int = 40,
    n_resamples: int = 200,
    seed: int = 0,
) -> List[DetectabilityPoint]:
    """How often do two schemes' 95% CIs separate, versus data volume?

    ``improvement`` is the relative difference in true stall ratio between
    the two arms (0.15 = 15% better). Detection means the bootstrap CIs do
    not overlap.
    """
    if not 0.0 < improvement < 1.0:
        raise ValueError("improvement must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    baseline = population
    improved = population.scaled(1.0 - improvement)
    points: List[DetectabilityPoint] = []
    for n_streams in stream_counts:
        detections = 0
        half_widths: List[float] = []
        total_watch = 0.0
        for _ in range(n_trials):
            w_a, s_a = baseline.sample(n_streams, rng)
            w_b, s_b = improved.sample(n_streams, rng)
            point_a, lo_a, hi_a = stall_ratio_ci_width(
                w_a, s_a, n_resamples, rng
            )
            point_b, lo_b, hi_b = stall_ratio_ci_width(
                w_b, s_b, n_resamples, rng
            )
            if hi_b < lo_a or hi_a < lo_b:
                detections += 1
            if point_a > 0:
                half_widths.append((hi_a - lo_a) / 2.0 / point_a)
            total_watch += w_a.sum()
        points.append(
            DetectabilityPoint(
                stream_years_per_scheme=(
                    total_watch / n_trials / (365.25 * 24 * 3600.0)
                ),
                n_streams_per_scheme=n_streams,
                detection_rate=detections / n_trials,
                ci_half_width_fraction=float(np.mean(half_widths)),
            )
        )
    return points

"""Per-stream QoE under the metrics the literature compares on.

Two families appear in the paper:

* the **SSIM-based Eq. 1 objective** Puffer's schemes optimize
  (§4.1: quality − λ·|Δquality| − µ·stall);
* the **bitrate-based QoE-lin** of MPC/Pensieve (§2's framing and
  Pensieve's reward: bitrate − 4.3·rebuffer − |Δbitrate|).

Computing both for the same streams makes the Fig. 4 point quantitative:
a scheme can win QoE-lin (spend bits) while losing the perceptual metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.qoe import DEFAULT_QOE, QoeParams

if TYPE_CHECKING:
    from repro.streaming.session import StreamResult

QOE_LIN_REBUFFER_PENALTY = 4.3
"""Mbps-equivalents per stall second (Pensieve's QoE-lin)."""

QOE_LIN_SMOOTHNESS_PENALTY = 1.0


@dataclass(frozen=True)
class StreamQoe:
    """Both QoE figures for one stream, per chunk played."""

    ssim_qoe_per_chunk: float
    qoe_lin_per_chunk: float
    n_chunks: int


def ssim_qoe(result: "StreamResult", params: QoeParams = DEFAULT_QOE) -> float:
    """Mean per-chunk Eq. 1 QoE over a stream.

    The stall term charges the stream's actual accumulated stall time
    (µ-weighted), amortized per chunk, rather than re-deriving stalls from
    per-chunk arithmetic — the simulator already accounted them exactly.
    """
    records = result.records
    if not records:
        raise ValueError("stream played no chunks")
    total = 0.0
    previous = None
    for record in records:
        total += params.quality_weight * record.ssim_db
        if previous is not None:
            total -= params.variation_weight * abs(record.ssim_db - previous)
        previous = record.ssim_db
    total -= params.stall_weight * result.stall_time
    return total / len(records)


def qoe_lin(result: "StreamResult") -> float:
    """Mean per-chunk bitrate-based QoE-lin over a stream."""
    records = result.records
    if not records:
        raise ValueError("stream played no chunks")
    total = 0.0
    previous_mbps = None
    for record in records:
        # The chunk's actual compressed bitrate (VBR), in Mbit/s.
        mbps = record.size_bytes * 8.0 / 2.002 / 1e6
        total += mbps
        if previous_mbps is not None:
            total -= QOE_LIN_SMOOTHNESS_PENALTY * abs(mbps - previous_mbps)
        previous_mbps = mbps
    total -= QOE_LIN_REBUFFER_PENALTY * result.stall_time
    return total / len(records)


def stream_qoe(result: "StreamResult") -> StreamQoe:
    """Both metrics for one stream."""
    return StreamQoe(
        ssim_qoe_per_chunk=ssim_qoe(result),
        qoe_lin_per_chunk=qoe_lin(result),
        n_chunks=len(result.records),
    )


def mean_qoe(results: Sequence["StreamResult"]) -> StreamQoe:
    """Watch-time-weighted mean of both metrics across streams."""
    played = [r for r in results if r.records]
    if not played:
        raise ValueError("no streams played any chunks")
    weights = np.array([r.watch_time for r in played])
    if weights.sum() <= 0:
        weights = np.ones(len(played))
    ssim_values = np.array([ssim_qoe(r) for r in played])
    lin_values = np.array([qoe_lin(r) for r in played])
    return StreamQoe(
        ssim_qoe_per_chunk=float(np.average(ssim_values, weights=weights)),
        qoe_lin_per_chunk=float(np.average(lin_values, weights=weights)),
        n_chunks=int(sum(len(r.records) for r in played)),
    )

"""Weighted means, standard errors, and CCDFs.

§3.4: "We calculate confidence intervals on average SSIM using the formula
for weighted standard error, weighting each stream by its duration."
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import stats as sps

from repro.analysis.bootstrap import ConfidenceInterval


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape or len(values) == 0:
        raise ValueError("values and weights must be equal-length, non-empty")
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    return float(np.average(values, weights=weights))


def weighted_standard_error(
    values: Sequence[float], weights: Sequence[float]
) -> float:
    """Standard error of a weighted mean (ratio-estimator form).

    Uses the common design-based approximation
    ``SE^2 = sum(w_i^2 (x_i - x̄_w)^2) / (sum w_i)^2`` with a small-sample
    correction ``n / (n - 1)``.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    n = len(values)
    if n < 2:
        raise ValueError("need at least two values for a standard error")
    mean = weighted_mean(values, weights)
    numerator = np.sum(weights**2 * (values - mean) ** 2)
    se2 = numerator / weights.sum() ** 2 * (n / (n - 1))
    return float(np.sqrt(se2))


def weighted_mean_ci(
    values: Sequence[float],
    weights: Sequence[float],
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Normal-approximation CI around a weighted mean — the paper's SSIM
    interval construction."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    mean = weighted_mean(values, weights)
    se = weighted_standard_error(values, weights)
    z = float(sps.norm.ppf(0.5 + confidence / 2.0))
    return ConfidenceInterval(
        point=mean, low=mean - z * se, high=mean + z * se, confidence=confidence
    )


def ccdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical complementary CDF: returns (sorted values, P[X > x]).

    Fig. 10 plots session durations this way on log-log axes.
    """
    values = np.asarray(values, dtype=float)
    if len(values) == 0:
        raise ValueError("need at least one value")
    x = np.sort(values)
    # P[X > x_i] with the convention that the largest value maps to 1/n
    # (plottable on a log axis, unlike 0).
    p = 1.0 - np.arange(1, len(x) + 1) / len(x)
    p[-1] = 1.0 / len(x)
    return x, p


def stream_years(total_seconds: float) -> float:
    """Convert accumulated watch time to the paper's 'stream-years' unit."""
    if total_seconds < 0:
        raise ValueError("time must be non-negative")
    return total_seconds / (365.25 * 24 * 3600.0)

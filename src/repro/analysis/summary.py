"""Per-scheme summaries — the rows of Fig. 1 and the points of Figs. 4/8/9/10.

Aggregation follows §3.4: the stall ratio is total-stalled over total-watch
(bootstrap CI); average SSIM is the duration-weighted mean over streams
(weighted-standard-error CI); SSIM variation is the duration-weighted mean
of each stream's chunk-to-chunk |ΔSSIM|; mean duration is the session-level
time on site.

Two aggregation paths produce a :class:`SchemeSummary` through one
interface (:class:`StreamAggregator`):

* :class:`ListAggregator` — the exact, list-backed path (bootstrap CIs),
  behind the original :func:`summarize_scheme` API, now a thin adapter;
* :class:`repro.fleet.sinks.StreamingSchemeSink` — the O(1)-memory fleet
  path (exactly-merging sketches, normal-approximation CIs) for open-ended
  deployment runs where materializing every stream is not an option.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    bootstrap_stall_ratio_ci,
)
from repro.analysis.stats import stream_years, weighted_mean, weighted_mean_ci
from repro.net.path import SLOW_PATH_THRESHOLD_BPS
from repro.streaming.session import StreamResult


@dataclass(frozen=True)
class SchemeSummary:
    """One scheme's row of the primary-results table (Fig. 1)."""

    scheme: str
    n_streams: int
    stream_years: float
    stall_ratio: ConfidenceInterval
    mean_ssim_db: ConfidenceInterval
    ssim_variation_db: float
    mean_bitrate_bps: float
    mean_session_duration_s: Optional[ConfidenceInterval]
    startup_delay_s: float
    first_chunk_ssim_db: float
    fraction_streams_with_stall: float

    @property
    def stall_percent(self) -> float:
        return self.stall_ratio.point * 100.0


class StreamAggregator(ABC):
    """One scheme's summary accumulator.

    The contract both the batch path and the fleet's streaming sinks
    implement: feed *eligible* streams (the caller applies the CONSORT
    primary-analysis filter) and optionally session durations, then ask for
    the Fig. 1 row.  Implementations differ in what they retain —
    :class:`ListAggregator` keeps every stream (exact statistics, bootstrap
    CIs); the fleet's sinks keep O(1) sketches.
    """

    scheme: str

    @abstractmethod
    def observe_stream(self, stream: StreamResult) -> None:
        """Fold one eligible stream into the aggregate."""

    @abstractmethod
    def observe_session_duration(self, duration_s: float) -> None:
        """Fold one session's total time on site (Fig. 10's unit)."""

    @abstractmethod
    def summary(self) -> SchemeSummary:
        """The scheme's Fig. 1 row from everything observed so far."""


class ListAggregator(StreamAggregator):
    """Exact aggregation: retains every stream, computes the paper's
    bootstrap/weighted-SE intervals — the original ``summarize_scheme``
    semantics, unchanged."""

    def __init__(
        self, scheme: str, n_resamples: int = 1000, seed: int = 0
    ) -> None:
        self.scheme = scheme
        self.n_resamples = n_resamples
        self.seed = seed
        self.streams: List[StreamResult] = []
        self.session_durations: List[float] = []

    def observe_stream(self, stream: StreamResult) -> None:
        self.streams.append(stream)

    def observe_session_duration(self, duration_s: float) -> None:
        self.session_durations.append(float(duration_s))

    def summary(self) -> SchemeSummary:
        streams = self.streams
        if not streams:
            raise ValueError(f"no eligible streams for scheme {self.scheme!r}")
        watch = np.array([s.watch_time for s in streams])
        ssim = np.array([s.mean_ssim_db for s in streams])
        variation = np.array([s.ssim_variation_db for s in streams])
        valid = ~np.isnan(ssim)
        startup = [
            s.startup_delay for s in streams if s.startup_delay is not None
        ]
        first_ssim = np.array(
            [s.first_chunk_ssim_db for s in streams if s.records]
        )
        duration_ci = None
        if len(self.session_durations) >= 2:
            duration_ci = bootstrap_mean_ci(
                self.session_durations,
                n_resamples=self.n_resamples,
                seed=self.seed,
            )
        return SchemeSummary(
            scheme=self.scheme,
            n_streams=len(streams),
            stream_years=stream_years(float(watch.sum())),
            stall_ratio=bootstrap_stall_ratio_ci(
                streams, n_resamples=self.n_resamples, seed=self.seed
            ),
            mean_ssim_db=weighted_mean_ci(ssim[valid], watch[valid]),
            ssim_variation_db=weighted_mean(variation[valid], watch[valid]),
            mean_bitrate_bps=weighted_mean(
                np.array([s.mean_bitrate_bps for s in streams])[valid],
                watch[valid],
            ),
            mean_session_duration_s=duration_ci,
            startup_delay_s=float(np.mean(startup)) if startup else float("nan"),
            first_chunk_ssim_db=(
                float(np.mean(first_ssim)) if len(first_ssim) else float("nan")
            ),
            fraction_streams_with_stall=float(
                np.mean([s.had_stall for s in streams])
            ),
        )


def summarize_scheme(
    scheme: str,
    streams: Sequence[StreamResult],
    session_durations: Optional[Sequence[float]] = None,
    n_resamples: int = 1000,
    seed: int = 0,
) -> SchemeSummary:
    """Aggregate eligible streams (and optionally session durations) into a
    Fig. 1 row.

    Thin adapter over :class:`ListAggregator`, kept so existing callers and
    benchmarks are unchanged; the fleet's streaming sinks implement the
    same :class:`StreamAggregator` interface at O(1) memory.
    """
    aggregator = ListAggregator(scheme, n_resamples=n_resamples, seed=seed)
    for stream in streams:
        aggregator.observe_stream(stream)
    if session_durations is not None:
        for duration in session_durations:
            aggregator.observe_session_duration(duration)
    return aggregator.summary()


def split_slow_paths(
    streams: Sequence[StreamResult],
    threshold_bps: float = SLOW_PATH_THRESHOLD_BPS,
) -> "tuple[List[StreamResult], List[StreamResult]]":
    """Partition streams into (slow, fast) by mean TCP delivery rate, the
    Fig. 8 right-panel cut."""
    slow = [s for s in streams if s.is_slow_path(threshold_bps)]
    fast = [s for s in streams if not s.is_slow_path(threshold_bps)]
    return slow, fast


def results_table(
    summaries: Sequence[SchemeSummary],
) -> Dict[str, Dict[str, float]]:
    """Fig. 1 as data: scheme -> column values."""
    return {
        s.scheme: {
            "time_stalled_percent": s.stall_percent,
            "mean_ssim_db": s.mean_ssim_db.point,
            "ssim_variation_db": s.ssim_variation_db,
            "mean_duration_min": (
                s.mean_session_duration_s.point / 60.0
                if s.mean_session_duration_s is not None
                else float("nan")
            ),
            "n_streams": s.n_streams,
            "stream_years": s.stream_years,
        }
        for s in summaries
    }

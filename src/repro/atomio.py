"""repro.atomio — the blessed crash-safe file-write helper.

One implementation of the full atomic-publish protocol — tmp file in
the same directory, write, flush, ``fsync`` the file, ``os.replace``
over the target, ``fsync`` the parent directory — replacing the three
hand-rolled copies that previously lived in ``fleet/checkpoint.py``,
``fleet/retrain.py`` and ``lint/cache.py`` (the last of which skipped
the fsyncs entirely).

Every durable writer in the tree (fleet checkpoint, model registry
generation + manifest, metrics dump, archive day tables, trained-model
output) routes through here, and the whole-program linter enforces
exactly that: ``repro lint --whole-program --durability`` flags any raw
write reachable from the durable roots declared in ``durable-roots.json``
(rule DUR001), and this module's two public functions are the only
writers that file blesses.

Crash points: each ``durable=True`` write passes three numbered
:func:`repro.crashpoints.crashpoint` markers — ``begin`` (nothing
written), ``pre-rename`` (tmp durable, target untouched) and
``post-rename`` (new content durable) — so the ``repro crash-matrix``
harness can kill a fleet run inside every window of the protocol and
prove recovery is byte-identical.  Labels use the target's basename
only, keeping the point sequence deterministic across run directories.
"""

from __future__ import annotations

import os
from typing import Union

from repro.crashpoints import crashpoint

PathLike = Union[str, "os.PathLike[str]"]


def _fsync_directory(directory: str) -> None:
    """Make a just-completed rename durable (sync the directory entry)."""
    try:
        dir_fd = os.open(directory or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - exotic filesystems
        pass
    finally:
        os.close(dir_fd)


def atomic_write_bytes(
    path: PathLike, data: bytes, durable: bool = True
) -> None:
    """Atomically publish *data* at *path*: readers see old or new, never torn.

    With ``durable=True`` (the default) the new content also survives
    power loss the moment this returns: the tmp file is fsynced before
    the rename and the parent directory after it.  ``durable=False``
    keeps the atomicity (tmp + rename) but skips both fsyncs and the
    crash points — for best-effort artifacts like the lint findings
    cache where losing a write on power cut is acceptable and the sync
    cost is not.
    """
    target = os.fspath(path)
    directory = os.path.dirname(target)
    # Pid-suffixed tmp name: concurrent writers (pool workers, parallel
    # lint invocations) never collide, and a crash-orphaned tmp never
    # shadows the real artifact globs (*.json, *.csv).
    tmp_path = f"{target}.tmp.{os.getpid()}"
    name = os.path.basename(target)
    if durable:
        crashpoint(f"atomio.begin:{name}")
    with open(tmp_path, "wb") as f:
        f.write(data)
        if durable:
            f.flush()
            os.fsync(f.fileno())
    if durable:
        crashpoint(f"atomio.pre-rename:{name}")
    os.replace(tmp_path, target)
    if durable:
        _fsync_directory(directory)
        crashpoint(f"atomio.post-rename:{name}")


def atomic_write_text(
    path: PathLike,
    text: str,
    encoding: str = "utf-8",
    durable: bool = True,
) -> None:
    """:func:`atomic_write_bytes` for text (encoded, no newline translation)."""
    atomic_write_bytes(path, text.encode(encoding), durable=durable)

"""Vectorized batch-session kernel.

``run_session_batch`` advances many sessions in lockstep with numpy
struct-of-arrays state, producing :class:`repro.experiment.harness.
SessionShard` objects **bit-identical** to the scalar
:func:`repro.experiment.harness.run_session` — same random draws, same
float arithmetic, same record contents.  Sessions whose configuration is
not vectorizable (non-vectorizable ABR scheme, CUBIC congestion control,
telemetry or observability collection) transparently fall back to the
scalar path, so the batch executor is always safe to enable.

The equivalence contract is enforced by the differential suite in
``tests/batch/`` (see EXPERIMENTS.md for the vectorizability criteria and
the tolerance policy — there is none: equality is exact).
"""

from repro.batch.engine import (
    VECTORIZABLE_SCHEME_TYPES,
    is_vectorizable_algorithm,
    run_session_batch,
)

__all__ = [
    "VECTORIZABLE_SCHEME_TYPES",
    "is_vectorizable_algorithm",
    "run_session_batch",
]

"""Lockstep batch-session engine.

Advances many sessions at once: the per-RTT-round TCP/BBR arithmetic — the
hot loop of the scalar path — runs vectorized over every in-flight session
(struct-of-arrays state mirroring :class:`repro.net.tcp.TcpConnection` and
:class:`repro.net.cc.bbr.BbrLike`), while the cold per-chunk glue (buffer
bookkeeping, ABR decisions, viewer hooks, stream/session transitions) runs
as scalar Python mirroring ``simulate_stream``/``run_session`` expression
for expression.  Every arithmetic operation matches the scalar path's IEEE
evaluation order, so the shards are bit-identical — the contract the
differential suite in ``tests/batch/`` enforces.

Random-draw equivalence:

* each lane owns its session/media generators, so lockstep interleaving
  across lanes never reorders any one generator's stream;
* the per-connection loss generator is *not* created: BBR ignores
  ``RoundSample.loss`` and the loss generator feeds nothing else, so
  skipping its draws is unobservable (CUBIC paths fall back to the scalar
  executor);
* link epochs and chunk menus are realized ahead in blocks — each
  generator feeds nothing but its own lazily-consumed sequence, so
  over-generation is invisible.

Straggler handling: when the arrival stream is exhausted and few lanes
remain in flight, the engine drains them with a scalar twin of the round
loop (the same arithmetic, one lane at a time) instead of paying per-ufunc
dispatch overhead on nearly-empty arrays.
"""

from __future__ import annotations

import gc

from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import obs, sanitizer
from repro.abr.base import AbrAlgorithm, ChunkRecord
from repro.abr.bba import BBA
from repro.abr.bola import Bola
from repro.abr.rate_based import RateBased
from repro.batch.menus import MenuBlockSource
from repro.media.encoder import CHUNK_DURATION
from repro.experiment.consort import ConsortArm, ConsortFlow, classify_stream
from repro.experiment.harness import (
    SessionResult,
    SessionShard,
    TrialConfig,
    assign_expt_ids,
    media_seed,
    run_session,
)
from repro.experiment.schemes import SchemeSpec
from repro.net.cc.base import DEFAULT_MSS, INITIAL_CWND_SEGMENTS
from repro.net.link import _LazyEpochLink
from repro.net.path import PathSampler
from repro.net.tcp import TcpInfo, _SRTT_GAIN
from repro.streaming.buffer import BUFFER_EPSILON_S, MAX_BUFFER_S
from repro.streaming.session import StreamResult

VECTORIZABLE_SCHEME_TYPES: Tuple[type, ...] = (BBA, Bola, RateBased)
"""ABR classes whose ``choose`` the kernel reproduces on menu arrays.
Exact types only: a subclass may override ``choose`` arbitrarily."""

_BW_FILTER_ROUNDS = 10
_FULL_PIPE_GROWTH = 1.25
_FULL_PIPE_ROUNDS = 3
_CWND_GAIN = 2.0
_MAX_CWND_BYTES = float(64 * 1024 * 1024)
_MAX_ROUNDS_PER_CHUNK = 100_000
_INITIAL_CWND = float(INITIAL_CWND_SEGMENTS * DEFAULT_MSS)
_CWND_FLOOR = 2.0 * DEFAULT_MSS

_EPOCH_PREFETCH = 32
"""Floor on link epochs realized beyond the queried index.  Realization is
additionally prefetched through the current stream's watch limit, which
right-sizes the batch (over-realization is unobservable but costs the
per-epoch draw; under-realization costs another Python round trip)."""

_SCALAR_DRAIN_MAX = 32
"""With no sessions left to refill lanes, at most this many in-flight
lanes are finished on the scalar twin instead of the vector step."""

_ROUNDS_PER_GATHER = 8
"""RTT rounds advanced per gather/scatter of the state block.  Lanes whose
transmission completes mid-batch are masked: their rows are reverted to the
pre-round values, freezing them bit-exactly until the driver collects them
at the end of the call.  Amortizes the per-ufunc fixed cost across rounds
without changing any lane's arithmetic."""

_FREE, _FLY = 0, 1

# Columns of the fused per-lane state block.  One (lanes, _N_COLS) float64
# array holds every per-lane connection/CC/transmission scalar, so the
# vector round performs a single row gather and a single row scatter
# instead of one fancy-index pass per field.  Integer- and boolean-valued
# fields (rounds, stale, ring cursors, the startup flag) live in float64
# columns; their values are small non-negative integers, which float64
# represents exactly, and the scalar twins round-trip them through
# ``int()``/``!= 0.0``.
_C_BASE_RTT = 0
_C_SRTT = 1
_C_MIN_RTT = 2
_C_DRATE = 3
_C_IN_FLIGHT = 4
_C_QUEUE = 5
_C_CWND = 6
_C_CC_MIN_RTT = 7
_C_BASELINE = 8
_C_REMAINING = 9
_C_ELAPSED = 10
_C_SEND_ABS = 11
_C_ROUNDS = 12
_C_EPOCH = 13
_C_IN_STARTUP = 14
_C_STALE = 15
_C_RING_POS = 16
_C_RING_COUNT = 17
_N_COLS = 18


def is_vectorizable_algorithm(algo: AbrAlgorithm) -> bool:
    """Whether the kernel can reproduce this ABR instance's decisions."""
    return type(algo) in VECTORIZABLE_SCHEME_TYPES


class _Lane:
    """Scalar per-session state for one lockstep lane.

    ``row`` is the lane's fused state row hoisted into a plain Python list
    (``tolist()`` round-trips float64 exactly).  Between a transmission's
    completion and the next ``_FLY`` park the list is authoritative and
    every scalar-glue read/write goes through it; ``_advance_to_send``
    scatters it back into the state block in one assignment when the lane
    re-enters the vector round."""

    __slots__ = (
        "idx", "state", "sid", "rng", "spec", "algo", "session", "consort",
        "arm", "n_streams", "stream_no", "link", "last_activity_end",
        "clock", "result", "menusrc", "has_hook", "level", "t", "limit",
        "playing", "start_time", "tputs", "duration", "on_complete",
        "row",
        "p_rung", "p_size", "p_ssim", "p_index", "p_send", "p_info",
    )

    def __init__(self, idx: int) -> None:
        self.idx = idx
        self.state = _FREE
        self.sid = -1
        self.rng: Optional[np.random.Generator] = None
        self.spec: Optional[SchemeSpec] = None
        self.algo: Optional[AbrAlgorithm] = None
        self.session: Optional[SessionResult] = None
        self.consort: Optional[ConsortFlow] = None
        self.arm: Optional[ConsortArm] = None
        self.n_streams = 0
        self.stream_no = 0
        self.link: Optional[_LazyEpochLink] = None
        self.last_activity_end = 0.0
        self.clock = 0.0
        self.result: Optional[StreamResult] = None
        self.menusrc: Optional[MenuBlockSource] = None
        self.has_hook = False
        self.level = 0.0
        self.t = 0.0
        self.limit = 0.0
        self.playing = False
        self.start_time = 0.0
        self.tputs: List[float] = []
        self.duration = 0.0
        self.row: List[float] = []
        self.on_complete: Optional[Callable[[ChunkRecord], None]] = None
        self.p_rung = 0
        self.p_size = 0.0
        self.p_ssim = 0.0
        self.p_index = 0
        self.p_send = 0.0
        self.p_info: Optional[TcpInfo] = None


class _BatchEngine:
    """Struct-of-arrays connection/CC state plus the lockstep driver."""

    def __init__(
        self,
        specs: Sequence[SchemeSpec],
        config: TrialConfig,
        expt_ids: Mapping[str, int],
        algorithms: Mapping[str, AbrAlgorithm],
        n_lanes: int,
    ) -> None:
        self.specs = list(specs)
        self.config = config
        self.expt_ids = dict(expt_ids)
        self.algorithms = dict(algorithms)
        b = n_lanes
        self.lanes = [_Lane(i) for i in range(b)]
        # Fused per-lane scalar state (see the _C_* column map); the
        # bandwidth-filter deque becomes a -inf-padded ring whose per-lane
        # max equals the deque max.
        self.state = np.zeros((b, _N_COLS))
        # Slot-major ring layout: slot k of every lane is contiguous, so
        # the vector round's two ring maxes reduce over _BW_FILTER_ROUNDS
        # contiguous row vectors instead of b strided 10-element rows.
        self.ring = np.full((_BW_FILTER_ROUNDS, b), -np.inf)
        # Link capacity bank: realized epochs, gathered per round.
        self.n_realized = np.zeros(b, dtype=np.int64)
        self.bank = np.zeros((b, 256))
        self.shards: Dict[int, SessionShard] = {}
        self._pending: Iterator[int] = iter(())
        self._pending_done = False

    # ------------------------------------------------------------------
    # Session / stream lifecycle (scalar glue)
    # ------------------------------------------------------------------
    def _fallback(self, sid: int) -> None:
        self.shards[sid] = run_session(
            self.specs, self.config, sid, self.expt_ids, self.algorithms
        )

    def _start_session(self, lane: _Lane, sid: int) -> bool:
        """Initialize a lane for ``sid``; False routes the session to the
        scalar path instead (the partial draws made here are discarded —
        ``run_session`` re-derives everything from ``(seed, session_id)``).
        """
        cfg = self.config
        # repro: allow-SEED003(bit-exact replay of the scalar scheme-assignment fold in harness.run_session)
        rng = np.random.default_rng((cfg.seed, sid))
        spec = self.specs[int(rng.integers(len(self.specs)))]
        algo = self.algorithms[spec.name]
        if not is_vectorizable_algorithm(algo):
            self._fallback(sid)
            return False
        path = PathSampler(
            # repro: allow-SEED001(bit-exact replay of the scalar path seed in harness.run_session)
            population=cfg.population, seed=cfg.seed * 1_000_003 + sid
        ).next_path()
        if path.cc_name != "bbr" or not isinstance(path.link, _LazyEpochLink):
            self._fallback(sid)
            return False
        lane.sid = sid
        lane.rng = rng
        lane.spec = spec
        lane.algo = algo
        lane.consort = ConsortFlow()
        lane.arm = lane.consort.arm(spec.name)
        lane.arm.sessions_assigned += 1
        lane.session = SessionResult(
            session_id=sid, scheme=spec.name, expt_id=self.expt_ids[spec.name]
        )
        lane.link = path.link
        lane.last_activity_end = 0.0
        lane.clock = 0.0
        i = lane.idx
        row = [0.0] * _N_COLS
        row[_C_BASE_RTT] = path.base_rtt
        row[_C_SRTT] = path.base_rtt
        row[_C_MIN_RTT] = path.base_rtt
        row[_C_CWND] = _INITIAL_CWND
        row[_C_CC_MIN_RTT] = float("inf")
        row[_C_EPOCH] = path.link.epoch
        row[_C_IN_STARTUP] = 1.0
        lane.row = row
        self.ring[:, i] = -np.inf
        self.n_realized[i] = 0
        n_streams = 1
        while (
            n_streams < cfg.max_streams_per_session
            and rng.random() < cfg.extra_stream_prob
        ):
            n_streams += 1
        lane.n_streams = n_streams
        lane.stream_no = 0
        self._begin_stream(lane)
        return True

    def _begin_stream(self, lane: _Lane) -> None:
        cfg = self.config
        assert lane.rng is not None and lane.spec is not None
        assert lane.algo is not None
        kind = cfg.viewer.sample_stream_kind(lane.rng)
        watch = cfg.viewer.sample_watch_time(kind, lane.rng)
        channel = cfg.channels[int(lane.rng.integers(len(cfg.channels)))]
        media_rng = np.random.default_rng(
            media_seed(cfg.seed, lane.sid, lane.stream_no)
        )
        lane.menusrc = MenuBlockSource(
            channel,
            media_rng,
            # One right-sized block covers the whole stream in the common
            # (no tail extension) case; +4 absorbs the final-chunk overrun.
            first_block_chunks=int(watch / CHUNK_DURATION) + 4,
        )
        lane.has_hook = kind == "view"
        lane.algo.begin_stream()
        # Skip the per-chunk callback when the scheme inherits the base
        # no-op (true for every vectorizable scheme today).
        if type(lane.algo).on_chunk_complete is AbrAlgorithm.on_chunk_complete:
            lane.on_complete = None
        else:
            lane.on_complete = lane.algo.on_chunk_complete
        lane.result = StreamResult(
            stream_id=lane.sid * cfg.max_streams_per_session + lane.stream_no,
            scheme_name=lane.spec.name,
        )
        lane.duration = lane.menusrc.chunk_duration
        lane.level = 0.0
        lane.t = 0.0
        lane.limit = watch
        lane.playing = False
        lane.start_time = lane.clock
        lane.tputs = []

    def _hook_extra(self, lane: _Lane, t_val: float) -> float:
        """Mirror of ViewerModel.make_extension_hook's closure."""
        viewer = self.config.viewer
        assert lane.rng is not None and lane.result is not None
        if t_val < viewer.tail_threshold_s or t_val >= viewer.max_session_s:
            return 0.0
        if lane.rng.random() < viewer.continue_probability(lane.result):
            return min(viewer.tail_block_s, viewer.max_session_s - t_val)
        return 0.0

    def _drain(self, lane: _Lane, play_time_s: float) -> float:
        """Mirror of PlaybackBuffer.drain: returns the stall shortfall."""
        if play_time_s <= lane.level:
            lane.level -= play_time_s
            return 0.0
        shortfall = play_time_s - lane.level
        lane.level = 0.0
        return shortfall

    def _choose(self, lane: _Lane, ms: MenuBlockSource, row: int) -> int:
        """The lane's ABR decision on a menu row (scalar-equivalent).

        Rate rows (``(size_bytes * 8.0) / duration``, the scalar
        ``EncodedChunk.bitrate``) and their min/max are precomputed per
        block by :class:`MenuBlockSource`.
        """
        algo = lane.algo
        if isinstance(algo, BBA):
            # BBA.choose verbatim on the menu row, rate_limit inlined.
            rates = ms.rates_lists[row]
            buffer_s = lane.level
            if buffer_s <= algo.reservoir_s:
                limit = ms.rates_min[row]
            elif buffer_s >= algo.upper_reservoir_s:
                limit = ms.rates_max[row]
            else:
                fraction = (buffer_s - algo.reservoir_s) / (
                    algo.upper_reservoir_s - algo.reservoir_s
                )
                min_rate = ms.rates_min[row]
                limit = min_rate + fraction * (ms.rates_max[row] - min_rate)
            limit += 1e-9
            qualities = ms.ssims_lists[row]
            best = 0
            best_ssim = float("-inf")
            for k, rate in enumerate(rates):
                if rate <= limit and qualities[k] > best_ssim:
                    best = k
                    best_ssim = qualities[k]
            return best
        if isinstance(algo, RateBased):
            recent = lane.tputs[-algo.window:]
            if recent:
                estimate = len(recent) / sum(1.0 / r for r in recent)
            else:
                estimate = algo.startup_throughput_bps
            budget = estimate * algo.safety_factor
            choice = 0
            # RateBased compares size_bits / duration — the same rate row.
            for k, rate in enumerate(ms.rates_lists[row]):
                if rate <= budget:
                    choice = k
            return choice
        if isinstance(algo, Bola):
            sizes, ssims = ms.row_arrays(row)
            duration = lane.duration
            q_chunks = lane.level / duration
            q_max = algo.max_buffer_s / duration
            utilities = ssims - ssims[0]
            gamma_p = algo.target_buffer_fraction * q_max
            utility_span = max(float(utilities[-1]), 1e-9)
            v = (q_max - 1.0) / (utility_span + gamma_p)
            scores = (v * (utilities + gamma_p) - q_chunks) / sizes
            if float(scores.max()) <= 0.0:
                return len(sizes) - 1
            return int(np.argmax(scores))
        raise RuntimeError(
            f"non-vectorizable algorithm reached the kernel: {algo!r}"
        )

    def _on_idle(self, lane: _Lane, idle: float) -> None:
        """Mirror of TcpConnection._handle_idle + BbrLike.on_idle."""
        row = lane.row
        rtt = row[_C_SRTT]
        rto = max(2.0 * rtt, 0.2)
        if idle >= rto:
            decay = 0.5 ** (idle / rto)
            row[_C_CWND] = max(_INITIAL_CWND, row[_C_CWND] * decay)
        if idle >= 4.0 * rto:
            row[_C_IN_STARTUP] = 1.0
            if row[_C_RING_COUNT] > 0.0:
                ring = self.ring[:, lane.idx]
                ring_l = ring.tolist()
                # max(list) == ndarray.max(): both pure comparisons.
                row[_C_BASELINE] = max(ring_l) * 0.5
                pos = int(row[_C_RING_POS])
                last = ring_l[(pos - 1) % _BW_FILTER_ROUNDS]
                ring.fill(-np.inf)
                ring[0] = last * 0.7
                row[_C_RING_POS] = 1.0
                row[_C_RING_COUNT] = 1.0
            else:
                row[_C_BASELINE] = 0.0
            row[_C_STALE] = 0.0
        factor = float(np.exp(-idle / max(rtt, 1e-3)))
        in_flight = row[_C_IN_FLIGHT] * factor
        if in_flight < DEFAULT_MSS:
            in_flight = 0.0
        row[_C_IN_FLIGHT] = in_flight
        row[_C_QUEUE] = row[_C_QUEUE] * factor

    def _advance_to_send(self, lane: _Lane) -> bool:
        """Run the simulate_stream loop head until a transmission starts
        (True) or the stream ends (False).

        ``t``/``level``/``limit`` shadow the lane fields in locals across
        the pause loop (synced back on every exit); the expressions match
        the scalar loop head term for term.
        """
        result = lane.result
        ms = lane.menusrc
        assert result is not None and ms is not None
        t = lane.t
        limit = lane.limit
        level = lane.level
        duration = lane.duration
        while True:
            if t >= limit:
                if lane.has_hook:
                    extra = self._hook_extra(lane, t)
                    if extra > 0:
                        limit = t + extra
                        lane.limit = limit
                        continue
                lane.t = t
                lane.level = level
                return False
            # The live menu stream never exhausts (no bounded-clip break).
            if level + duration > MAX_BUFFER_S + BUFFER_EPSILON_S:
                # Server pauses while the buffer is full (time_until_room);
                # the drain mirror discards the (impossible here) shortfall
                # exactly as PlaybackBuffer.drain would.
                wait = min(level + duration - MAX_BUFFER_S, max(limit - t, 0.0))
                if wait <= 0:
                    t = limit
                    continue
                if wait <= level:
                    level -= wait
                else:
                    level = 0.0
                result.play_time += wait
                t += wait
                continue
            break
        lane.t = t
        lane.level = level
        chunk_index, row = ms.next_row()
        rung = self._choose(lane, ms, row)
        send_at = lane.start_time + t
        idle = send_at - lane.last_activity_end
        if idle > 0:
            self._on_idle(lane, idle)
        lane.p_rung = rung
        # Block lists hold the same float64 values as the ndarray rows.
        lane.p_size = ms.sizes_lists[row][rung]
        lane.p_ssim = ms.ssims_lists[row][rung]
        lane.p_index = chunk_index
        lane.p_send = send_at
        state_row = lane.row
        lane.p_info = TcpInfo(
            cwnd=state_row[_C_CWND] / DEFAULT_MSS,
            in_flight=state_row[_C_IN_FLIGHT] / DEFAULT_MSS,
            min_rtt=state_row[_C_MIN_RTT],
            rtt=state_row[_C_SRTT],
            delivery_rate=state_row[_C_DRATE],
        )
        state_row[_C_REMAINING] = lane.p_size
        state_row[_C_ELAPSED] = 0.0
        state_row[_C_SEND_ABS] = send_at
        state_row[_C_ROUNDS] = 0.0
        # One scatter re-arms the state block for the vector round.
        self.state[lane.idx] = state_row
        lane.state = _FLY
        return True

    def _after_transmission(self, lane: _Lane) -> bool:
        """Post-transmit glue mirroring simulate_stream; True while the
        stream continues."""
        result = lane.result
        assert result is not None and lane.p_info is not None
        assert lane.algo is not None
        ttime = lane.row[_C_ELAPSED]
        t = lane.t
        t_end = t + ttime
        lane.last_activity_end = lane.p_send + ttime
        if lane.has_hook and t_end >= lane.limit:
            extra = self._hook_extra(lane, t_end)
            if extra > 0:
                lane.limit = t_end + extra
        if lane.playing:
            # PlaybackBuffer.drain, inlined (shortfall is the stall).
            level = lane.level
            if ttime <= level:
                lane.level = level - ttime
                stall = 0.0
            else:
                stall = ttime - level
                lane.level = 0.0
            play = ttime - stall
            overshoot = max(t_end - lane.limit, 0.0)
            clipped_stall = min(stall, overshoot)
            stall -= clipped_stall
            play -= min(overshoot - clipped_stall, play)
            result.play_time += play
            if stall > 0:
                result.stall_time += stall
        lane.t = t_end
        if t_end >= lane.limit:
            if not lane.playing:
                result.never_began = True
            lane.t = lane.limit
            return False
        lane.level += lane.duration
        if lane.level > MAX_BUFFER_S + BUFFER_EPSILON_S:
            raise RuntimeError(
                "buffer overflow: server must pause before exceeding the cap"
            )
        if not lane.playing:
            lane.playing = True
            result.startup_delay = lane.t
        record = ChunkRecord(
            chunk_index=lane.p_index,
            rung=lane.p_rung,
            size_bytes=lane.p_size,
            ssim_db=lane.p_ssim,
            transmission_time=ttime,
            info_at_send=lane.p_info,
            send_time=lane.p_send,
        )
        result.records.append(record)
        if lane.on_complete is not None:
            lane.on_complete(record)
        # record.observed_throughput_bps, inlined.
        lane.tputs.append(lane.p_size * 8.0 / max(ttime, 1e-9))
        return True

    def _end_stream(self, lane: _Lane) -> bool:
        """Stream tail + session bookkeeping; True if another stream of
        this session begins."""
        cfg = self.config
        result = lane.result
        assert (
            result is not None and lane.rng is not None
            and lane.session is not None and lane.arm is not None
            and lane.spec is not None
        )
        if lane.playing and lane.t < lane.limit:
            tail_play = min(lane.level, lane.limit - lane.t)
            self._drain(lane, tail_play)
            result.play_time += tail_play
            lane.t += tail_play
        result.total_time = lane.t
        result.never_began = not lane.playing
        result.scheme_name = lane.spec.name
        lane.clock += result.total_time + float(lane.rng.uniform(0.1, 2.0))
        lane.clock = max(lane.clock, lane.last_activity_end + 1e-6)
        lane.session.streams.append(result)
        arm = lane.arm
        arm.streams_assigned += 1
        category = classify_stream(result)
        if (
            category == "considered"
            and lane.rng.random() < cfg.slow_decoder_prob
        ):
            result.excluded = True
            category = "slow_video_decoder"
        if category == "did_not_begin":
            arm.did_not_begin += 1
        elif category == "watch_time_under_4s":
            arm.watch_time_under_4s += 1
        elif category == "slow_video_decoder":
            arm.slow_video_decoder += 1
        else:
            arm.considered += 1
            arm.considered_watch_time_s += result.watch_time
            if lane.rng.random() < cfg.loss_of_contact_prob:
                arm.truncated_loss_of_contact += 1
        lane.stream_no += 1
        if lane.stream_no < lane.n_streams:
            self._begin_stream(lane)
            return True
        assert lane.consort is not None
        self.shards[lane.sid] = SessionShard(
            session=lane.session,
            consort=lane.consort,
            telemetry=None,
            obs=None,
        )
        lane.state = _FREE
        return False

    def _fill(self, lane: _Lane) -> bool:
        """Start the next pending session on a free lane (running scalar
        fallbacks inline); False once the arrival stream is exhausted."""
        while True:
            sid = next(self._pending, None)
            if sid is None:
                self._pending_done = True
                return False
            if self._start_session(lane, sid):
                return True

    def _drive(self, lane: _Lane) -> None:
        """Advance a lane's scalar glue until it is in flight or parked."""
        while True:
            if self._advance_to_send(lane):
                return
            if self._end_stream(lane):
                continue
            if not self._fill(lane):
                return

    # ------------------------------------------------------------------
    # Round phases
    # ------------------------------------------------------------------
    def _realize_capacity(self, lane: _Lane, index: int) -> None:
        link = lane.link
        assert link is not None
        i = lane.idx
        # Prefetch through the stream's watch limit (plus slack for the
        # final chunk's overrun) so most streams realize in one batch.
        horizon = int((lane.start_time + lane.limit) / link.epoch) + 2
        link.realize_through(max(index + _EPOCH_PREFETCH, horizon))
        realized = link._realized
        new_len = len(realized)
        if new_len > self.bank.shape[1]:
            width = self.bank.shape[1]
            while width < new_len:
                width *= 2
            grown = np.zeros((self.bank.shape[0], width))
            grown[:, : self.bank.shape[1]] = self.bank
            self.bank = grown
        old = int(self.n_realized[i])
        self.bank[i, old:new_len] = realized[old:new_len]
        self.n_realized[i] = new_len

    def _vector_round(self, fly: List[_Lane], a: np.ndarray) -> np.ndarray:
        """Up to ``_ROUNDS_PER_GATHER`` lockstep RTT rounds over every
        in-flight lane.

        ``a`` holds ``lane.idx`` for each lane in ``fly`` (same order);
        returns the *positions* in ``fly`` whose transmission completed.
        The fused state block is gathered once into ``S`` (a row copy) and
        scattered back once at the end; every intermediate update writes
        into ``S``'s columns.  After the first round a lane whose
        transmission has completed stays ``inactive``: its row is reverted
        wholesale to the pre-round copy each subsequent round (and its ring
        is never touched), so extra rounds are arithmetic no-ops for it.
        """
        S = self.state[a]
        ring_cols = self.ring[:, a]
        n_realized = self.n_realized
        active: Optional[np.ndarray] = None
        frozen: Optional[np.ndarray] = None
        saved: Optional[np.ndarray] = None
        for _ in range(_ROUNDS_PER_GATHER):
            if active is not None:
                # Rows frozen at round start keep this round's writes only
                # if they are active; save the frozen rows and restore them
                # after the column writes (a lane completing *this* round
                # keeps its writes — the completing round is real).
                frozen = np.nonzero(~active)[0]
                saved = S[frozen] if frozen.size else None
            el = S[:, _C_ELAPSED]
            t_q = S[:, _C_SEND_ABS] + el
            ep = S[:, _C_EPOCH]
            # epoch_index_array's boundary correction, per-lane epochs.
            idx = (t_q / ep).astype(np.int64)
            idx = np.where((idx + 1) * ep <= t_q, idx + 1, idx)
            idx = np.where((idx > 0) & (idx * ep > t_q), idx - 1, idx)
            if frozen is not None and frozen.size:
                # A frozen lane's stale elapsed may point past its realized
                # horizon; pin it to epoch 0 (its row is restored below,
                # the gathered value is never used).
                idx[frozen] = 0
            need = idx >= n_realized[a]
            if bool(need.any()):
                # Realization touches only bank/n_realized, never the
                # state block, so the gathered copy S stays authoritative.
                for k in np.nonzero(need)[0]:
                    self._realize_capacity(fly[int(k)], int(idx[k]))
            cap_Bps = self.bank[a, idx] / 8.0
            rem = S[:, _C_REMAINING]
            cw = S[:, _C_CWND]
            rtt0 = S[:, _C_BASE_RTT]
            window = np.minimum(cw, rem)
            app_limited = rem < cw
            drain_time = window / cap_Bps
            queue_delay = S[:, _C_QUEUE] / cap_Bps
            rtt_sample = rtt0 + queue_delay
            link_limited = drain_time > rtt_sample
            duration = np.maximum(rtt_sample, drain_time)
            S[:, _C_QUEUE] = np.where(
                link_limited, np.maximum(window - cap_Bps * rtt0, 0.0), 0.0
            )
            # The stochastic loss draw is skipped: BbrLike ignores
            # sample.loss and the loss generator feeds nothing else (see
            # module docstring).
            delivery_rate = window * 8.0 / duration
            # --- BbrLike.on_round, vectorized -------------------------
            count = S[:, _C_RING_COUNT]
            bw_pre = np.where(count > 0, ring_cols.max(axis=0), 0.0)
            append = (~app_limited) | (delivery_rate > bw_pre)
            if active is not None:
                append &= active
            sel = np.nonzero(append)[0]
            pos_sel = S[sel, _C_RING_POS].astype(np.int64)
            dr_sel = delivery_rate[sel]
            # Mirror the append into both the gathered ring copy (for the
            # post-append max below) and the ring truth.
            ring_cols[pos_sel, sel] = dr_sel
            self.ring[pos_sel, a[sel]] = dr_sel
            S[sel, _C_RING_POS] = (pos_sel + 1) % _BW_FILTER_ROUNDS
            count[sel] = np.minimum(
                count[sel] + 1.0, float(_BW_FILTER_ROUNDS)
            )
            mrtt = np.minimum(S[:, _C_CC_MIN_RTT], rtt_sample)
            S[:, _C_CC_MIN_RTT] = mrtt
            bw = np.where(count > 0, ring_cols.max(axis=0), 0.0)
            in_st = S[:, _C_IN_STARTUP] != 0.0
            base = S[:, _C_BASELINE]
            grew = bw > base * _FULL_PIPE_GROWTH
            m_grow = in_st & grew
            S[:, _C_BASELINE] = np.where(m_grow, bw, base)
            stale = np.where(m_grow, 0.0, S[:, _C_STALE])
            m_stale = in_st & ~grew & ~app_limited
            stale = np.where(m_stale, stale + 1.0, stale)
            exited = m_stale & (stale >= _FULL_PIPE_ROUNDS)
            in_st_new = in_st & ~exited
            # Startup doubling uses the *pre-update* startup flag (the
            # scalar code doubles inside the original `if in_startup:`
            # branch, including on the exit round); the BDP pin uses the
            # post-update flag and so also runs on the exit round.
            cw_new = np.where(in_st & ~app_limited, cw * 2.0, cw)
            pin = (~in_st_new) & (bw > 0) & (mrtt < np.inf)
            cw_new = np.where(pin, _CWND_GAIN * ((bw / 8.0) * mrtt), cw_new)
            cw_new = np.minimum(np.maximum(cw_new, _CWND_FLOOR), _MAX_CWND_BYTES)
            S[:, _C_STALE] = stale
            S[:, _C_IN_STARTUP] = in_st_new
            S[:, _C_CWND] = cw_new
            # --- connection updates -----------------------------------
            S[:, _C_SRTT] = (
                (1.0 - _SRTT_GAIN) * S[:, _C_SRTT] + _SRTT_GAIN * rtt_sample
            )
            S[:, _C_MIN_RTT] = np.minimum(S[:, _C_MIN_RTT], rtt_sample)
            dr_old = S[:, _C_DRATE]
            S[:, _C_DRATE] = np.where(
                (~app_limited) | (delivery_rate > dr_old),
                delivery_rate,
                dr_old,
            )
            S[:, _C_IN_FLIGHT] = window
            S[:, _C_REMAINING] = rem - window
            S[:, _C_ELAPSED] = el + duration
            S[:, _C_ROUNDS] = S[:, _C_ROUNDS] + 1.0
            if frozen is not None and frozen.size:
                S[frozen] = saved
            still = S[:, _C_REMAINING] > 0.0
            active = still if active is None else active & still
            if not bool(active.any()):
                break
        if float(S[:, _C_ROUNDS].max()) > _MAX_ROUNDS_PER_CHUNK:
            raise RuntimeError("transmission did not terminate")
        self.state[a] = S
        return np.nonzero(S[:, _C_REMAINING] <= 0.0)[0]

    def _scalar_rounds(self, lane: _Lane) -> None:
        """Scalar twin of the round loop (drains straggler lanes); the
        arithmetic matches transmit()/BbrLike.on_round bit for bit."""
        i = lane.idx
        link = lane.link
        assert link is not None
        # Hoist the lane's state row into locals (tolist()/item() round-
        # trip float64 exactly); -inf ring padding keeps max(ring) == the
        # deque max.
        row = self.state[i].tolist()
        remaining = row[_C_REMAINING]
        elapsed = row[_C_ELAPSED]
        send_at = row[_C_SEND_ABS]
        rounds = int(row[_C_ROUNDS])
        cwnd = row[_C_CWND]
        queue = row[_C_QUEUE]
        base_rtt = row[_C_BASE_RTT]
        srtt = row[_C_SRTT]
        min_rtt = row[_C_MIN_RTT]
        drate = row[_C_DRATE]
        cc_min_rtt = row[_C_CC_MIN_RTT]
        in_startup = row[_C_IN_STARTUP] != 0.0
        baseline = row[_C_BASELINE]
        stale = int(row[_C_STALE])
        pos = int(row[_C_RING_POS])
        count = int(row[_C_RING_COUNT])
        ring = self.ring[:, i].tolist()
        window = 0.0
        capacity_at = link.capacity_at
        while remaining > 0:
            rounds += 1
            if rounds > _MAX_ROUNDS_PER_CHUNK:
                raise RuntimeError("transmission did not terminate")
            capacity_Bps = capacity_at(send_at + elapsed) / 8.0
            window = min(cwnd, remaining)
            app_limited = remaining < cwnd
            drain_time = window / capacity_Bps
            queue_delay = queue / capacity_Bps
            rtt_sample = base_rtt + queue_delay
            link_limited = drain_time > rtt_sample
            duration = max(rtt_sample, drain_time)
            if link_limited:
                queue = max(window - capacity_Bps * base_rtt, 0.0)
            else:
                queue = 0.0
            delivery_rate = window * 8.0 / duration
            bw_pre = max(ring) if count > 0 else 0.0
            if not app_limited or delivery_rate > bw_pre:
                ring[pos] = delivery_rate
                pos = (pos + 1) % _BW_FILTER_ROUNDS
                count = min(count + 1, _BW_FILTER_ROUNDS)
            cc_min_rtt = min(cc_min_rtt, rtt_sample)
            bw = max(ring) if count > 0 else 0.0
            if in_startup:
                if bw > baseline * _FULL_PIPE_GROWTH:
                    baseline = bw
                    stale = 0
                elif not app_limited:
                    stale += 1
                    if stale >= _FULL_PIPE_ROUNDS:
                        in_startup = False
                if not app_limited:
                    cwnd *= 2.0
            if not in_startup and bw > 0 and cc_min_rtt < float("inf"):
                cwnd = _CWND_GAIN * ((bw / 8.0) * cc_min_rtt)
            cwnd = min(max(cwnd, _CWND_FLOOR), _MAX_CWND_BYTES)
            srtt = (1.0 - _SRTT_GAIN) * srtt + _SRTT_GAIN * rtt_sample
            min_rtt = min(min_rtt, rtt_sample)
            if not app_limited or delivery_rate > drate:
                drate = delivery_rate
            remaining -= window
            elapsed += duration
        row[_C_REMAINING] = remaining
        row[_C_ELAPSED] = elapsed
        row[_C_ROUNDS] = float(rounds)
        row[_C_CWND] = cwnd
        row[_C_QUEUE] = queue
        row[_C_SRTT] = srtt
        row[_C_MIN_RTT] = min_rtt
        row[_C_DRATE] = drate
        row[_C_CC_MIN_RTT] = cc_min_rtt
        row[_C_IN_STARTUP] = 1.0 if in_startup else 0.0
        row[_C_BASELINE] = baseline
        row[_C_STALE] = float(stale)
        row[_C_RING_POS] = float(pos)
        row[_C_RING_COUNT] = float(count)
        row[_C_IN_FLIGHT] = window
        self.state[i] = row
        self.ring[:, i] = ring

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def _complete(self, lane: _Lane) -> None:
        lane.state = _FREE
        # One gather hands the round loop's writes back to the glue.
        lane.row = self.state[lane.idx].tolist()
        if self._after_transmission(lane):
            self._drive(lane)
            return
        if self._end_stream(lane):
            self._drive(lane)
            return
        # Session finished: hand the lane the next pending session.
        if self._fill(lane):
            self._drive(lane)

    def drain(self, session_ids: Sequence[int]) -> Dict[int, SessionShard]:
        self._pending = iter(session_ids)
        self._pending_done = False
        # The in-flight set is kept incrementally: a parallel (lanes, idxs)
        # pair maintained by swap-removal, so the driver loop does O(done)
        # work per round instead of rescanning every lane.
        fly: List[_Lane] = []
        idxs = np.empty(len(self.lanes), dtype=np.int64)
        for lane in self.lanes:
            if not self._fill(lane):
                break
            self._drive(lane)
            if lane.state == _FLY:
                idxs[len(fly)] = lane.idx
                fly.append(lane)
        n = len(fly)
        while n:
            if self._pending_done and n <= _SCALAR_DRAIN_MAX:
                # Tail mode: so few lanes remain that ufunc dispatch costs
                # more than scalar arithmetic — drain each lane's session
                # to completion with the scalar twin of the round loop.
                for lane in fly[:n]:
                    while lane.state == _FLY:
                        self._scalar_rounds(lane)
                        self._complete(lane)
                n = 0
                continue
            done_pos = self._vector_round(fly, idxs[:n])
            # Descending order keeps pending positions valid across the
            # swap-removals (lane order never affects results: lanes are
            # independent and arm counters are commutative sums).
            for j in range(len(done_pos) - 1, -1, -1):
                pos = int(done_pos[j])
                lane = fly[pos]
                self._complete(lane)
                if lane.state != _FLY:
                    n -= 1
                    fly[pos] = fly[n]
                    idxs[pos] = idxs[n]
                    del fly[n]
        return self.shards


@sanitizer.guarded("run_session_batch")
def run_session_batch(
    specs: Sequence[SchemeSpec],
    config: TrialConfig,
    session_ids: Sequence[int],
    expt_ids: Optional[Mapping[str, int]] = None,
    algorithms: Optional[Mapping[str, AbrAlgorithm]] = None,
    lanes: int = 64,
) -> List[SessionShard]:
    """Simulate ``session_ids`` through the batch kernel.

    Bit-identical to ``[run_session(specs, config, sid, ...) for sid in
    session_ids]`` at every ``lanes`` value.  Sessions that cannot be
    vectorized — a non-vectorizable ABR scheme, a CUBIC path, or any
    telemetry/observability collection — run on the scalar path instead,
    inside this call.  Shards are returned in ``session_ids`` order.
    """
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    ids = list(session_ids)
    if not ids:
        return []
    if expt_ids is None:
        expt_ids = assign_expt_ids(specs, config.seed)
    if algorithms is None:
        algorithms = {spec.name: spec.build() for spec in specs}
    if config.collect_telemetry or config.observability or obs.ENABLED:
        # Telemetry/observability hooks live throughout the scalar stack;
        # reproducing their record streams is outside the kernel's scope.
        return [
            run_session(specs, config, sid, expt_ids, algorithms)
            for sid in ids
        ]
    engine = _BatchEngine(
        specs, config, expt_ids, algorithms, min(lanes, len(ids))
    )
    # The kernel allocates millions of small acyclic objects (records,
    # stream results); generational GC scans are pure overhead at that
    # rate (~20% of wall time), so collection is suspended for the run.
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        shards = engine.drain(ids)
    finally:
        if was_enabled:
            gc.enable()
    return [shards[sid] for sid in ids]

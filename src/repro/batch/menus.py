"""Block-generated chunk menus, bit-identical to the scalar media pipeline.

The scalar path builds each menu through ``VideoSource`` →
``SceneComplexityProcess.step`` → ``VbrEncoder.encode_chunk``, consuming the
per-stream media generator in the fixed order

    ``random()`` · ``standard_normal`` (scene step) ·
    ``standard_normal`` (size noise) · ``standard_normal`` × rungs (quality)

per chunk.  ``MenuBlockSource`` draws the same sequence — one ``random()``
and one ``standard_normal(2 + rungs)`` block per chunk, which numpy's
Generator produces bit-identically to the scalar calls — then evaluates the
encoder arithmetic for a whole block of chunks with stacked array math in
the scalar evaluation order.  Over-generation is invisible: the media
generator feeds nothing but menus, and the scalar simulator's lookahead
window already consumes menus ahead of the playhead.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.media.encoder import CHUNK_DURATION, _MAX_SSIM_DB, _MIN_SSIM_DB
from repro.media.ladder import PUFFER_LADDER, EncodingLadder
from repro.media.source import Channel

DEFAULT_BLOCK_CHUNKS = 32
"""Chunks generated per block (a latency/throughput knob, not semantics)."""

MAX_BLOCK_CHUNKS = 1024
"""Cap on a single block so a pathological hint cannot balloon memory."""


class MenuBlockSource:
    """Per-stream menu stream yielding (sizes, ssims) rows per chunk.

    Replicates ``VideoSource(channel, rng=media_rng)`` +
    ``VbrEncoder(rng=media_rng)`` with the harness defaults; every float it
    produces equals the scalar pipeline's bit for bit.
    """

    def __init__(
        self,
        channel: Channel,
        rng: np.random.Generator,
        ladder: EncodingLadder = PUFFER_LADDER,
        size_noise_sigma: float = 0.12,
        quality_complexity_slope: float = 1.6,
        quality_noise_sigma: float = 0.25,
        chunk_duration: float = CHUNK_DURATION,
        block_chunks: int = DEFAULT_BLOCK_CHUNKS,
        first_block_chunks: int = 0,
    ) -> None:
        """``first_block_chunks`` (when positive) sizes only the first
        block — callers that know the stream's expected chunk count pass it
        so short streams don't over-generate and long streams don't pay the
        per-block fixed cost repeatedly.  Block sizing never affects the
        values produced, only how far ahead they are materialized."""
        if block_chunks < 1:
            raise ValueError("block_chunks must be >= 1")
        self._rng = rng
        self._channel = channel
        self._n_rungs = len(ladder)
        self.chunk_duration = chunk_duration
        self._block_chunks = block_chunks
        self._next_block_chunks = (
            min(max(first_block_chunks, 1), MAX_BLOCK_CHUNKS)
            if first_block_chunks > 0
            else block_chunks
        )
        # Scalar order: VideoSource construction draws the initial scene
        # log-complexity before the encoder touches the generator.
        self._log_c = float(rng.normal(0.0, channel.complexity_sigma))
        # Identical expression to SceneComplexityProcess.step's local.
        self._innovation_sigma = channel.complexity_sigma * np.sqrt(
            1.0 - (1.0 - channel.mean_reversion) ** 2
        )
        self._size_noise_mean = -0.5 * size_noise_sigma**2
        self._size_noise_sigma = size_noise_sigma
        self._slope = quality_complexity_slope
        self._quality_sigma = quality_noise_sigma
        # target_bitrate * chunk_duration, the scalar expression's first two
        # factors, precomputed per rung.
        self._tb_cd = np.array(
            [p.target_bitrate * chunk_duration for p in ladder],
            dtype=np.float64,
        )
        self._base_ssim = np.array(
            [p.base_ssim_db for p in ladder], dtype=np.float64
        )
        self._sizes = np.empty((0, self._n_rungs), dtype=np.float64)
        self._ssims = np.empty((0, self._n_rungs), dtype=np.float64)
        self.sizes_lists: List[List[float]] = []
        self.ssims_lists: List[List[float]] = []
        self.rates_lists: List[List[float]] = []
        self.rates_min: List[float] = []
        self.rates_max: List[float] = []
        self._pos = 0
        self._next_index = 0

    def _generate_block(self) -> None:
        k = self._next_block_chunks
        self._next_block_chunks = self._block_chunks
        rng = self._rng
        ch = self._channel
        u = np.empty(k, dtype=np.float64)
        z = np.empty((k, 2 + self._n_rungs), dtype=np.float64)
        for i in range(k):
            # Per-chunk draw order matches the scalar pipeline exactly; the
            # standard_normal block equals 2 + rungs scalar normal draws.
            u[i] = rng.random()
            z[i] = rng.standard_normal(2 + self._n_rungs)
        # Scene-complexity recurrence (sequential by construction).
        log_c = self._log_c
        one_minus_mr = 1.0 - ch.mean_reversion
        log_cs = np.empty(k, dtype=np.float64)
        for i in range(k):
            if u[i] < ch.scene_cut_rate:
                log_c = float(ch.complexity_sigma * z[i, 0])
            else:
                log_c = float(
                    one_minus_mr * log_c + self._innovation_sigma * z[i, 0]
                )
            log_cs[i] = log_c
        self._log_c = log_c
        complexity = np.exp(log_cs)
        # Size noise is lognormal; numpy's lognormal(m, s) equals
        # math.exp(m + s * standard_normal()) bit for bit (np.exp does NOT).
        size_noise = np.array(
            [
                math.exp(self._size_noise_mean + self._size_noise_sigma * zz)
                for zz in z[:, 1]
            ],
            dtype=np.float64,
        )
        # ((target_bitrate * duration) * complexity) * size_noise, the
        # scalar left-to-right evaluation order.
        size_bits = (
            self._tb_cd[None, :] * complexity[:, None]
        ) * size_noise[:, None]
        sizes = np.maximum(size_bits / 8.0, 1.0)
        # (base - slope * log2(complexity)) + quality noise, then clip and
        # the running-maximum ladder-monotonicity fix.
        penalty = self._slope * np.log2(complexity)
        ssims = (self._base_ssim[None, :] - penalty[:, None]) + (
            self._quality_sigma * z[:, 2:]
        )
        ssims = np.clip(ssims, _MIN_SSIM_DB, _MAX_SSIM_DB)
        ssims = np.maximum.accumulate(ssims, axis=1)
        self._sizes = sizes
        self._ssims = ssims
        # Row lists + per-chunk rate rows, hoisted out of the per-chunk hot
        # path.  ``tolist()`` round-trips float64 exactly; the rate
        # expression mirrors ``EncodedChunk.bitrate`` — ``(size_bytes *
        # 8.0) / duration`` — elementwise (np.float64 scalar arithmetic is
        # bit-identical to Python float arithmetic), and row min/max of the
        # rate array equal Python ``min()``/``max()`` of the row list.
        rates = (sizes * 8.0) / self.chunk_duration
        self.sizes_lists = sizes.tolist()
        self.ssims_lists = ssims.tolist()
        self.rates_lists = rates.tolist()
        self.rates_min = rates.min(axis=1).tolist()
        self.rates_max = rates.max(axis=1).tolist()
        self._pos = 0

    def next_row(self) -> Tuple[int, int]:
        """Advance to the next chunk; returns ``(chunk_index, row)`` where
        ``row`` indexes this block's ``*_lists`` and ``row_arrays``."""
        row = self._pos
        if row >= self._sizes.shape[0]:
            self._generate_block()
            row = 0
        index = self._next_index
        self._pos = row + 1
        self._next_index += 1
        return index, row

    def row_arrays(self, row: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(sizes_bytes, ssims_db)`` ndarray rows for ``row``."""
        return self._sizes[row], self._ssims[row]

    def next_menu(self) -> Tuple[int, np.ndarray, np.ndarray]:
        """The next chunk's ``(chunk_index, sizes_bytes, ssims_db)`` rows."""
        index, row = self.next_row()
        return index, self._sizes[row], self._ssims[row]

"""Fugu — the paper's primary contribution (§4).

A classical stochastic MPC controller (:mod:`repro.core.controller`), the
Eq. 1 QoE objective (:mod:`repro.core.qoe`), the learned Transmission Time
Predictor (:mod:`repro.core.ttp`), its in-situ training pipeline
(:mod:`repro.core.train`), and the assembled ABR scheme with its ablations
(:mod:`repro.core.fugu`).
"""

from repro.core.controller import (
    TimeDistribution,
    TransmissionTimeModel,
    ValueIterationController,
)
from repro.core.features import (
    FEATURE_DIM,
    HISTORY_LEN,
    N_TIME_BINS,
    make_feature_matrix,
    make_features,
    time_bin_centers,
    time_bin_index,
)
from repro.core.fugu import Fugu, make_fugu, make_fugu_variant
from repro.core.qoe import DEFAULT_QOE, QoeParams, chunk_qoe
from repro.core.train import (
    DailyRetrainer,
    TtpEvaluation,
    TtpTrainer,
    build_ttp_datasets,
)
from repro.core.ttp import TransmissionTimePredictor, TtpConfig

__all__ = [
    "Fugu",
    "make_fugu",
    "make_fugu_variant",
    "TransmissionTimePredictor",
    "TtpConfig",
    "TtpTrainer",
    "TtpEvaluation",
    "DailyRetrainer",
    "build_ttp_datasets",
    "ValueIterationController",
    "TimeDistribution",
    "TransmissionTimeModel",
    "QoeParams",
    "DEFAULT_QOE",
    "chunk_qoe",
    "FEATURE_DIM",
    "HISTORY_LEN",
    "N_TIME_BINS",
    "make_features",
    "make_feature_matrix",
    "time_bin_index",
    "time_bin_centers",
]

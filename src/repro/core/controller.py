"""Stochastic model-predictive controller (§4.4).

The controller maximizes expected cumulative QoE (Eq. 1) over an H-step
lookahead horizon by value iteration over a discretized playback buffer,
exactly as the paper describes: "the controller computes the optimal
trajectory by solving the above value iteration with dynamic programming...
it discretizes B_i into bins".

One controller serves MPC-HM, RobustMPC-HM, and Fugu — they differ only in
the :class:`TransmissionTimeModel` supplying ``P[T̂(K_i^s) = T_j]``:

* the harmonic-mean predictor returns a *point mass* (a single predicted
  time per candidate size);
* Fugu's TTP returns a full 21-bin probability distribution.

The implementation runs the backward recursion with numpy over the buffer
grid, which is the vectorized equivalent of the paper's memoized forward
recursion over reachable states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Protocol, Sequence

import numpy as np

from repro import obs
from repro.core.qoe import DEFAULT_QOE, QoeParams

if TYPE_CHECKING:  # typing only; avoids a circular import with repro.abr
    from repro.abr.base import AbrContext

DEFAULT_HORIZON = 5
"""Planning horizon in chunks (~10 s of video, §4.5)."""

DEFAULT_BUFFER_BIN_S = 0.5
"""Buffer discretization step. The paper only says the buffer is
"discretize[d] into bins"; half-second bins keep the planner's error well
under one chunk duration while halving the DP's state space."""


@dataclass(frozen=True)
class TimeDistribution:
    """Predicted transmission-time distribution for each candidate version.

    ``times[a, j]`` is the j-th possible transmission time of version ``a``
    and ``probs[a, j]`` its probability; rows sum to 1. A deterministic
    predictor uses a single column.
    """

    times: np.ndarray
    probs: np.ndarray

    def __post_init__(self) -> None:
        # Only shape checks here: this sits on the per-decision hot path.
        # Full numeric validation is available via validate().
        if self.times.shape != self.probs.shape:
            raise ValueError("times and probs must share a shape")
        if self.times.ndim != 2:
            raise ValueError("expected a (n_versions, n_outcomes) matrix")

    def validate(self) -> None:
        """Full numeric sanity checks (used by tests and custom models)."""
        if np.any(self.times < 0):
            raise ValueError("transmission times must be non-negative")
        if np.any(self.probs < -1e-12):
            raise ValueError("probabilities must be non-negative")
        row_sums = self.probs.sum(axis=1)
        if not np.allclose(row_sums, 1.0, atol=1e-6):
            raise ValueError("each version's probabilities must sum to 1")

    @classmethod
    def point_mass(cls, times: Sequence[float]) -> "TimeDistribution":
        """Deterministic prediction: one outcome per version."""
        arr = np.asarray(times, dtype=float).reshape(-1, 1)
        return cls(times=arr, probs=np.ones_like(arr))


class TransmissionTimeModel(Protocol):
    """Supplies predicted transmission-time distributions to the planner."""

    def predict(
        self, context: "AbrContext", step: int, sizes_bytes: np.ndarray
    ) -> TimeDistribution:
        """Distribution over transmission times for each candidate size of
        the chunk ``step`` positions ahead of the current one (step 0 is the
        chunk being decided)."""
        ...


class ValueIterationController:
    """H-step stochastic MPC over a discretized buffer (§4.4–4.5)."""

    def __init__(
        self,
        qoe: QoeParams = DEFAULT_QOE,
        horizon: int = DEFAULT_HORIZON,
        max_buffer_s: float = 15.0,
        buffer_bin_s: float = DEFAULT_BUFFER_BIN_S,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if max_buffer_s <= 0 or buffer_bin_s <= 0:
            raise ValueError("buffer parameters must be positive")
        self.qoe = qoe
        self.horizon = horizon
        self.max_buffer_s = max_buffer_s
        self.buffer_bin_s = buffer_bin_s
        self._grid = np.arange(0.0, max_buffer_s + buffer_bin_s / 2, buffer_bin_s)

    def _bin_index(self, buffer_s: np.ndarray) -> np.ndarray:
        idx = np.rint(buffer_s / self.buffer_bin_s).astype(int)
        return np.clip(idx, 0, len(self._grid) - 1)

    def plan(
        self,
        context: AbrContext,
        model: TransmissionTimeModel,
    ) -> int:
        """Return the ladder index to send for ``context.menu``.

        Plans over ``min(horizon, len(context.lookahead))`` steps; replanning
        after every chunk (receding horizon) is the caller's responsibility,
        which the ABR wrapper performs naturally by calling ``plan`` per
        chunk.
        """
        steps = min(self.horizon, len(context.lookahead))
        if steps == 0:
            raise ValueError("lookahead must contain at least one menu")
        if obs.ENABLED:
            obs.counter_inc("controller.plans")
            obs.counter_inc("controller.plan_steps", float(steps))
        with obs.span("controller.plan"):
            return self._plan(context, model, steps)

    def _plan(
        self,
        context: "AbrContext",
        model: TransmissionTimeModel,
        steps: int,
    ) -> int:
        menus = context.lookahead[:steps]
        n_bins = len(self._grid)
        grid = self._grid

        # Backward pass. V[b, a_prev] = max expected QoE-to-go from buffer
        # bin b when the previous chunk used rung a_prev of the previous
        # step's menu.
        value: Optional[np.ndarray] = None  # shape (n_bins, n_prev_rungs)
        first_step_ev: Optional[np.ndarray] = None
        for step in range(steps - 1, -1, -1):
            menu = menus[step]
            n_rungs = len(menu)
            sizes = np.asarray(menu.sizes)
            qualities = np.asarray(menu.ssims_db)
            duration = menu.duration
            dist = model.predict(context, step, sizes)
            if dist.times.shape[0] != n_rungs:
                raise ValueError("model returned wrong number of versions")
            times = dist.times  # (n_rungs, k)
            probs = dist.probs

            # stall[a, b, j] and next-buffer bins; vectorized over the grid.
            t = times[:, None, :]  # (n_rungs, 1, k)
            b = grid[None, :, None]  # (1, n_bins, 1)
            stall = np.maximum(t - b, 0.0)
            next_buffer = np.minimum(
                np.maximum(b - t, 0.0) + duration, self.max_buffer_s
            )
            # Expected immediate reward without the variation term.
            immediate = (
                self.qoe.quality_weight * qualities[:, None, None]
                - self.qoe.stall_weight * stall
            )
            if value is not None:
                nb_idx = self._bin_index(next_buffer)  # (n_rungs, n_bins, k)
                # Continuation indexed by (next bin, this rung as a_prev).
                cont = value[nb_idx, np.arange(n_rungs)[:, None, None]]
                immediate = immediate + cont
            # Expectation over outcomes j.
            ev = (immediate * probs[:, None, :]).sum(axis=2)  # (n_rungs, n_bins)

            if step == 0:
                first_step_ev = ev
                break

            # Build V for the previous step: subtract the variation penalty
            # |q_a - q_prev| for every previous rung.
            prev_menu = menus[step - 1]
            prev_qualities = np.asarray(prev_menu.ssims_db)
            # penalty[a, p] = λ |q_a - q_prev_p|
            penalty = self.qoe.variation_weight * np.abs(
                qualities[:, None] - prev_qualities[None, :]
            )
            # candidate[a, b, p] = ev[a, b] - penalty[a, p]
            candidate = ev[:, :, None] - penalty[:, None, :]
            value = candidate.max(axis=0).reshape(n_bins, len(prev_menu))

        assert first_step_ev is not None
        menu0 = menus[0]
        qualities0 = np.asarray(menu0.ssims_db)
        b0 = self._bin_index(np.asarray([context.buffer_s]))[0]
        scores = first_step_ev[:, b0].copy()
        if context.last_ssim_db is not None:
            scores -= self.qoe.variation_weight * np.abs(
                qualities0 - context.last_ssim_db
            )
        return int(np.argmax(scores))

"""TTP feature construction (§4.2).

Each TTP network takes as input a vector of:

1. sizes of the past ``t = 8`` chunks,
2. transmission times of the past 8 chunks,
3. internal TCP statistics (the ``tcp_info`` fields Puffer logs: cwnd,
   packets in flight, min RTT, smoothed RTT, delivery rate),
4. the size of the chunk to be transmitted.

Missing history at stream start is zero-padded — which is precisely why the
TCP statistics give Fugu its cold-start advantage (Fig. 9): on the first
chunk they are the only informative features.

The module also defines the discretization of transmission times into the
paper's 21 bins: [0, 0.25), [0.25, 0.75), …, [9.75, ∞) (§4.5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.net.tcp import TcpInfo

if TYPE_CHECKING:  # typing only; avoids a circular import with repro.abr
    from repro.abr.base import ChunkRecord

HISTORY_LEN = 8
"""Past chunks in the input vector (t = 8, §4.5)."""

N_TCP_FEATURES = 5
FEATURE_DIM = 2 * HISTORY_LEN + N_TCP_FEATURES + 1

# Feature scaling. Sizes, times, windows, and rates are all roughly
# log-normal across the deployment (a 0.09 Mbit/s fade and a 90 Mbit/s
# fiber path must both be resolvable), so rate-like quantities enter the
# network through log1p compression rather than linear division.
SIZE_LOG_SCALE = 1e5  # bytes; log1p(size / 1e5)
CWND_LOG_SCALE = 10.0  # segments; log1p(cwnd / 10)
RTT_LOG_SCALE = 0.1  # seconds; log1p(rtt / 0.1)
DELIVERY_RATE_LOG_SCALE = 1e5  # bits/s; log1p(rate / 1e5)


def _scale_size(size_bytes: "np.ndarray | float") -> "np.ndarray | float":
    return np.log1p(np.asarray(size_bytes, dtype=float) / SIZE_LOG_SCALE)


def _scale_time(seconds: "np.ndarray | float") -> "np.ndarray | float":
    return np.log1p(np.asarray(seconds, dtype=float))

N_TIME_BINS = 21
TIME_BIN_EDGES = np.concatenate(([0.0, 0.25], np.arange(0.75, 10.0, 0.5)))
"""Edges of the 21 bins; the last bin is [9.75, inf)."""

_TAIL_BIN_CENTER = 16.0
"""Representative time for the open-ended [9.75, ∞) bin. Transmission
times landing there are heavy-tailed (deep fades), so the planner uses a
value well beyond the bin edge; this is what makes small tail probabilities
matter against the µ=100 stall weight."""


def time_bin_index(transmission_time: float) -> int:
    """Discretize a transmission time into its bin index (0..20)."""
    if transmission_time < 0:
        raise ValueError("transmission time must be non-negative")
    if transmission_time < 0.25:
        return 0
    if transmission_time >= 9.75:
        return N_TIME_BINS - 1
    return int((transmission_time - 0.25) // 0.5) + 1


def time_bin_centers() -> np.ndarray:
    """Representative transmission time of each bin (used by the planner
    when taking expectations over the TTP's output distribution)."""
    centers = np.empty(N_TIME_BINS)
    centers[0] = 0.125
    centers[1:-1] = 0.5 * np.arange(1, N_TIME_BINS - 1)
    centers[-1] = _TAIL_BIN_CENTER
    return centers


def tcp_features(info: TcpInfo) -> np.ndarray:
    """Scaled ``tcp_info`` feature block."""
    return np.array(
        [
            np.log1p(info.cwnd / CWND_LOG_SCALE),
            np.log1p(info.in_flight / CWND_LOG_SCALE),
            np.log1p(info.min_rtt / RTT_LOG_SCALE),
            np.log1p(info.rtt / RTT_LOG_SCALE),
            np.log1p(info.delivery_rate / DELIVERY_RATE_LOG_SCALE),
        ]
    )


def history_features(history: Sequence[ChunkRecord]) -> np.ndarray:
    """Past-chunk feature block: 8 sizes then 8 transmission times, oldest
    first, zero-padded on the left when the stream is young."""
    recent = list(history)[-HISTORY_LEN:]
    sizes = np.zeros(HISTORY_LEN)
    times = np.zeros(HISTORY_LEN)
    offset = HISTORY_LEN - len(recent)
    for i, record in enumerate(recent):
        sizes[offset + i] = _scale_size(record.size_bytes)
        times[offset + i] = _scale_time(record.transmission_time)
    return np.concatenate([sizes, times])


def make_features(
    history: Sequence[ChunkRecord],
    info: TcpInfo,
    proposed_size_bytes: float,
) -> np.ndarray:
    """Full 22-dimensional TTP input vector for one candidate chunk."""
    if proposed_size_bytes <= 0:
        raise ValueError("proposed size must be positive")
    return np.concatenate(
        [
            history_features(history),
            tcp_features(info),
            [_scale_size(proposed_size_bytes)],
        ]
    )


def make_feature_matrix(
    history: Sequence[ChunkRecord],
    info: TcpInfo,
    sizes_bytes: np.ndarray,
) -> np.ndarray:
    """Feature matrix for several candidate sizes sharing one history —
    one TTP forward pass evaluates the whole ladder."""
    sizes_bytes = np.asarray(sizes_bytes, dtype=float)
    if np.any(sizes_bytes <= 0):
        raise ValueError("proposed sizes must be positive")
    base = np.concatenate([history_features(history), tcp_features(info)])
    matrix = np.tile(base, (len(sizes_bytes), 1))
    return np.concatenate(
        [matrix, np.asarray(_scale_size(sizes_bytes))[:, None]], axis=1
    )


# Indices of feature groups, for the ablation study (§4.6).
SIZE_HISTORY_SLICE = slice(0, HISTORY_LEN)
TIME_HISTORY_SLICE = slice(HISTORY_LEN, 2 * HISTORY_LEN)
TCP_SLICE = slice(2 * HISTORY_LEN, 2 * HISTORY_LEN + N_TCP_FEATURES)
PROPOSED_SIZE_INDEX = FEATURE_DIM - 1
TCP_FEATURE_INDEX = {
    "cwnd": 2 * HISTORY_LEN + 0,
    "in_flight": 2 * HISTORY_LEN + 1,
    "min_rtt": 2 * HISTORY_LEN + 2,
    "rtt": 2 * HISTORY_LEN + 3,
    "delivery_rate": 2 * HISTORY_LEN + 4,
}

"""Fugu: stochastic MPC over a learned transmission-time predictor (§4).

Fugu = the value-iteration controller of :mod:`repro.core.controller`
(shared with MPC-HM) + a trained :class:`TransmissionTimePredictor`. The
ablated deployments of §4.6 — point-estimate Fugu, throughput-predictor
Fugu, linear Fugu, no-TCP-statistics Fugu — are the same class wrapped
around a differently-configured TTP; factory helpers construct each.
"""

from __future__ import annotations

from typing import Optional

from repro.abr.base import AbrAlgorithm, AbrContext
from repro.core.controller import ValueIterationController
from repro.core.qoe import DEFAULT_QOE, QoeParams
from repro.core.ttp import TransmissionTimePredictor, TtpConfig


class Fugu(AbrAlgorithm):
    """The Fugu ABR scheme.

    Parameters
    ----------
    predictor:
        A (typically trained) TTP. An untrained TTP yields near-uniform
        predictions and poor control — training in situ is the point.
    qoe, horizon:
        Objective weights and planning horizon; defaults are the paper's
        λ=1, µ=100, H=5 (§4.5).
    name:
        Override for ablated variants so results are labeled distinctly.
    """

    name = "fugu"

    def __init__(
        self,
        predictor: TransmissionTimePredictor,
        qoe: QoeParams = DEFAULT_QOE,
        horizon: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        if horizon is None:
            horizon = predictor.config.horizon
        if horizon > predictor.config.horizon:
            raise ValueError(
                "planning horizon cannot exceed the TTP's trained horizon"
            )
        self.predictor = predictor
        self.controller = ValueIterationController(qoe=qoe, horizon=horizon)
        if name is not None:
            self.name = name

    def choose(self, context: AbrContext) -> int:
        return self.controller.plan(context, self.predictor)


# ----------------------------------------------------------------------
# Ablated variants (§4.6 / Fig. 7)
# ----------------------------------------------------------------------
def make_fugu_variant(
    variant: str, seed: int = 0, horizon: int = 5
) -> "tuple[TransmissionTimePredictor, str]":
    """Build the (untrained) TTP for a named Fugu variant.

    Recognized variants: ``full``, ``point_estimate``, ``throughput``,
    ``linear``, ``no_tcp``, ``no_rtt``, ``no_cwnd``, ``no_in_flight``,
    ``no_delivery_rate``, ``shallow``.
    """
    configs = {
        "full": TtpConfig(horizon=horizon),
        "point_estimate": TtpConfig(horizon=horizon, point_estimate=True),
        "throughput": TtpConfig(horizon=horizon, predict_throughput=True),
        "linear": TtpConfig(horizon=horizon, hidden=()),
        "shallow": TtpConfig(horizon=horizon, hidden=(64,)),
        "no_tcp": TtpConfig(horizon=horizon, ablated_features=frozenset({"tcp"})),
        "no_rtt": TtpConfig(
            horizon=horizon, ablated_features=frozenset({"rtt", "min_rtt"})
        ),
        "no_cwnd": TtpConfig(horizon=horizon, ablated_features=frozenset({"cwnd"})),
        "no_in_flight": TtpConfig(
            horizon=horizon, ablated_features=frozenset({"in_flight"})
        ),
        "no_delivery_rate": TtpConfig(
            horizon=horizon, ablated_features=frozenset({"delivery_rate"})
        ),
    }
    if variant not in configs:
        raise ValueError(
            f"unknown Fugu variant {variant!r}; choose from {sorted(configs)}"
        )
    predictor = TransmissionTimePredictor(configs[variant], seed=seed)
    name = "fugu" if variant == "full" else f"fugu_{variant}"
    return predictor, name


def make_fugu(
    variant: str = "full",
    predictor: Optional[TransmissionTimePredictor] = None,
    seed: int = 0,
    horizon: int = 5,
    qoe: QoeParams = DEFAULT_QOE,
) -> Fugu:
    """Construct a Fugu scheme, optionally around an existing predictor."""
    if predictor is None:
        predictor, name = make_fugu_variant(variant, seed=seed, horizon=horizon)
    else:
        name = "fugu" if variant == "full" else f"fugu_{variant}"
    return Fugu(predictor, qoe=qoe, name=name)

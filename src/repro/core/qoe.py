"""The QoE objective (Eq. 1).

    QoE(K_i^s, K_{i-1}) = Q(K_i^s)
                          - λ |Q(K_i^s) - Q(K_{i-1})|
                          - µ max{T(K_i^s) - B_i, 0}

where Q is SSIM in dB, T the uncertain transmission time, and B the playback
buffer. The paper sets λ = 1 and µ = 100 (§4.5) and uses the *exact same*
objective for MPC-HM, RobustMPC-HM, and Fugu (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class QoeParams:
    """Weights of the QoE linear combination (Eq. 1)."""

    quality_weight: float = 1.0
    variation_weight: float = 1.0  # λ
    stall_weight: float = 100.0  # µ

    def __post_init__(self) -> None:
        if self.variation_weight < 0 or self.stall_weight < 0:
            raise ValueError("QoE weights must be non-negative")


DEFAULT_QOE = QoeParams()


def chunk_qoe(
    params: QoeParams,
    quality_db: float,
    prev_quality_db: Optional[float],
    transmission_time: float,
    buffer_s: float,
) -> float:
    """Evaluate Eq. 1 for one chunk.

    ``prev_quality_db`` of None (stream start) drops the variation term,
    matching how the controller treats the first chunk.
    """
    if transmission_time < 0 or buffer_s < 0:
        raise ValueError("times must be non-negative")
    value = params.quality_weight * quality_db
    if prev_quality_db is not None:
        value -= params.variation_weight * abs(quality_db - prev_quality_db)
    value -= params.stall_weight * max(transmission_time - buffer_s, 0.0)
    return value

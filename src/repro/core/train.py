"""TTP training pipeline (§4.3).

"Puffer collects training data by saving client telemetry from real usage
... We train the TTP with standard supervised learning: the training
minimizes the cross-entropy loss between the output probability distribution
and the discretized actual transmission time using stochastic gradient
descent. We retrain the TTP every day, using training data collected on
Puffer over the prior 14 days ... Within the 14-day window, we weight more
recent days more heavily ... The weights from the previous day's model are
loaded to warm-start the retraining."
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import FEATURE_DIM
from repro.core.ttp import TransmissionTimePredictor
from repro.learn.losses import SoftmaxCrossEntropy
from repro.learn.optim import Adam
from repro.learn.training import Dataset, Trainer, TrainingReport

if TYPE_CHECKING:  # typing only; avoids a circular import with streaming
    from repro.streaming.session import StreamResult

RETRAIN_WINDOW_DAYS = 14
"""Days of telemetry used per retraining (§4.3)."""

RECENCY_DECAY = 0.9
"""Per-day-of-age multiplier on sample weights within the window."""

_EVAL_STREAM = 0xE7A1
"""Domain-separation constant for held-out-evaluation RNG streams.

Evaluation must never perturb training: the shuffle order of every epoch is
drawn from the trainer's seeded generator, so an evaluation path that shared
that generator (e.g. for a validation split) would silently change the model
that subsequent training produces.  Any randomized evaluation therefore
derives its generator from ``(seed, _EVAL_STREAM, ...)`` — disjoint from
every training draw by construction."""


def _empty_dataset() -> Dataset:
    return Dataset(
        np.zeros((0, FEATURE_DIM)),
        np.zeros(0, dtype=int),
        np.zeros(0),
    )


def build_ttp_datasets(
    streams: Sequence[StreamResult],
    predictor: TransmissionTimePredictor,
    sample_weight: float = 1.0,
    allow_empty: bool = False,
) -> List[Dataset]:
    """Turn stream telemetry into one supervised dataset per horizon step.

    For horizon step ``k``, each example pairs (a) the features available
    when chunk ``i`` was decided — history of the preceding chunks plus the
    ``tcp_info`` snapshot — combined with the *size of chunk i+k*, and
    (b) the discretized actual transmission time of chunk ``i+k``.

    A horizon step with no examples (every stream shorter than ``k+1``
    chunks) raises by default; with ``allow_empty=True`` it yields an empty
    dataset instead, so per-day datasets from a sparse deployment day can
    still be pooled across a retraining window.
    """
    horizon = predictor.config.horizon
    features: List[List[np.ndarray]] = [[] for _ in range(horizon)]
    labels: List[List[int]] = [[] for _ in range(horizon)]
    for stream in streams:
        records = stream.records
        for i in range(len(records)):
            history = records[:i]
            info = records[i].info_at_send
            max_k = min(horizon, len(records) - i)
            if max_k <= 0:
                continue
            sizes = np.array(
                [records[i + k].size_bytes for k in range(max_k)]
            )
            rows = predictor.masked_features(history, info, sizes)
            for k in range(max_k):
                features[k].append(rows[k])
                labels[k].append(predictor.label_for(records[i + k]))
    datasets: List[Dataset] = []
    for k in range(horizon):
        if not features[k]:
            if allow_empty:
                datasets.append(_empty_dataset())
                continue
            raise ValueError(
                f"no training examples for horizon step {k}; need longer streams"
            )
        x = np.vstack(features[k])
        y = np.asarray(labels[k], dtype=int)
        w = np.full(len(y), float(sample_weight))
        datasets.append(Dataset(x, y, w))
    return datasets


@dataclass
class TtpEvaluation:
    """Held-out accuracy figures, the Fig. 7 metrics."""

    cross_entropy: float
    bin_accuracy: float
    expected_abs_error_s: float
    n_examples: int


class TtpTrainer:
    """Supervised trainer for all horizon steps of one TTP."""

    def __init__(
        self,
        predictor: TransmissionTimePredictor,
        epochs: int = 20,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.predictor = predictor
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.seed = seed

    def train(
        self,
        datasets: Sequence[Dataset],
        validation: Optional[Sequence[Dataset]] = None,
    ) -> List[TrainingReport]:
        """Train each horizon step's network on its dataset. Training always
        warm-starts from the predictor's current weights (a fresh predictor
        has random weights; a day-old one continues from yesterday)."""
        if len(datasets) != self.predictor.config.horizon:
            raise ValueError("need one dataset per horizon step")
        reports: List[TrainingReport] = []
        for k, dataset in enumerate(datasets):
            trainer = Trainer(
                self.predictor.models[k],
                SoftmaxCrossEntropy(),
                optimizer=Adam(self.predictor.models[k], lr=self.learning_rate),
                batch_size=self.batch_size,
                epochs=self.epochs,
                # repro: allow-SEED001(per-model offset, injective over the k bin models; reseeding invalidates trained-model digests)
                seed=self.seed + k,
            )
            val = validation[k] if validation is not None else None
            reports.append(trainer.fit(dataset, validation=val))
        return reports

    def holdout_split(
        self,
        datasets: Sequence[Dataset],
        validation_fraction: float = 0.2,
    ) -> "Tuple[List[Dataset], List[Dataset]]":
        """Split every horizon step's dataset into (train, held-out) parts.

        The split generator is derived from ``(seed, _EVAL_STREAM, step)``
        — domain-separated from every training draw (``Trainer`` seeds its
        shuffle generator with ``seed + step``), so carving out an
        evaluation set can never change which permutations training sees.
        """
        train_parts: List[Dataset] = []
        held_parts: List[Dataset] = []
        for k, dataset in enumerate(datasets):
            rng = np.random.default_rng((self.seed, _EVAL_STREAM, k))
            train, held = dataset.split(validation_fraction, rng)
            train_parts.append(train)
            held_parts.append(held)
        return train_parts, held_parts

    def evaluate(self, dataset: Dataset, step: int = 0) -> TtpEvaluation:
        """Fig. 7 metrics on held-out data for one horizon step.

        Determinism contract: evaluation is a pure forward pass — it draws
        from no generator and mutates no trainer or model state, so
        ``train(); evaluate(); train()`` equals ``train(); train()``
        *exactly* (``tests/core/test_train_determinism.py`` locks this in).
        """
        model = self.predictor.models[step]
        probs = model.predict_proba(dataset.features)
        y = np.asarray(dataset.targets, dtype=int)
        n = len(y)
        eps = 1e-12
        cross_entropy = float(-np.log(probs[np.arange(n), y] + eps).mean())
        if self.predictor.config.point_estimate:
            # The ML variant predicts only its modal bin.
            predicted = probs.argmax(axis=1)
            accuracy = float((predicted == y).mean())
        else:
            accuracy = float((probs.argmax(axis=1) == y).mean())
        centers = (
            self.predictor._tput_centers
            if self.predictor.config.predict_throughput
            else self.predictor._time_centers
        )
        if self.predictor.config.point_estimate:
            point = centers[probs.argmax(axis=1)]
            expected_err = float(np.abs(point - centers[y]).mean())
        else:
            expected_err = float(
                (probs * np.abs(centers[None, :] - centers[y][:, None])).sum(
                    axis=1
                ).mean()
            )
        if self.predictor.config.predict_throughput:
            # Convert throughput error to a comparable relative scale.
            expected_err = expected_err / float(np.mean(centers[y]))
        return TtpEvaluation(
            cross_entropy=cross_entropy,
            bin_accuracy=accuracy,
            expected_abs_error_s=expected_err,
            n_examples=n,
        )


class DailyRetrainer:
    """The in-situ daily retraining loop (§4.3).

    Holds a sliding window of per-day telemetry, weights recent days more
    heavily, and retrains the predictor warm-started from the previous day's
    weights. Snapshots can be taken to reproduce the "out-of-date TTP"
    staleness experiment (§4.6).
    """

    def __init__(
        self,
        predictor: TransmissionTimePredictor,
        window_days: int = RETRAIN_WINDOW_DAYS,
        recency_decay: float = RECENCY_DECAY,
        epochs_per_day: int = 8,
        seed: int = 0,
    ) -> None:
        if window_days <= 0:
            raise ValueError("window must be positive")
        if not 0.0 < recency_decay <= 1.0:
            raise ValueError("recency decay must lie in (0, 1]")
        self.predictor = predictor
        self.window_days = window_days
        self.recency_decay = recency_decay
        self.epochs_per_day = epochs_per_day
        self.seed = seed
        self._days: Deque[Tuple[int, List[StreamResult]]] = deque(
            maxlen=window_days
        )
        self._day_counter = 0
        self.snapshots: Dict[int, TransmissionTimePredictor] = {}

    @property
    def current_day(self) -> int:
        return self._day_counter

    def add_day(self, streams: Sequence[StreamResult]) -> None:
        """Ingest one day of telemetry (an empty day still advances the
        calendar, so recency weights measure real days of age)."""
        self._day_counter += 1
        self._days.append((self._day_counter, list(streams)))

    def window_state(self) -> List[Tuple[int, List[StreamResult]]]:
        """The retained (day_number, streams) window, oldest first — what a
        crash-safe service persists (as archive byte-ranges) to rebuild the
        retrainer after a resume."""
        return [(day, list(streams)) for day, streams in self._days]

    @classmethod
    def restore(
        cls,
        predictor: TransmissionTimePredictor,
        day_counter: int,
        days: Sequence[Tuple[int, Sequence[StreamResult]]],
        window_days: int = RETRAIN_WINDOW_DAYS,
        recency_decay: float = RECENCY_DECAY,
        epochs_per_day: int = 8,
        seed: int = 0,
    ) -> "DailyRetrainer":
        """Rebuild a retrainer mid-deployment.

        ``days`` is the surviving window in ingestion order; ``day_counter``
        is the total number of days ever ingested (it keys the per-day
        training seed, so a restored retrainer's next generation is
        bit-identical to the uninterrupted run's).
        """
        if day_counter < 0:
            raise ValueError("day_counter must be >= 0")
        if len(days) > min(window_days, day_counter):
            raise ValueError("more retained days than the window allows")
        retrainer = cls(
            predictor,
            window_days=window_days,
            recency_decay=recency_decay,
            epochs_per_day=epochs_per_day,
            seed=seed,
        )
        last = day_counter - len(days)
        for day, streams in days:
            if day <= last:
                raise ValueError("retained days must be increasing")
            last = day
        if days and last != day_counter:
            raise ValueError("window must end at day_counter")
        retrainer._days.extend(
            (int(day), list(streams)) for day, streams in days
        )
        retrainer._day_counter = int(day_counter)
        return retrainer

    def window_datasets(self) -> Optional[List[Dataset]]:
        """Recency-weighted pooled datasets over the retained window, or
        ``None`` while some horizon step still has no example anywhere in
        the window (the deployment's first sparse days)."""
        if not self._days:
            return None
        per_step: List[List[Dataset]] = [
            [] for _ in range(self.predictor.config.horizon)
        ]
        for day, streams in self._days:
            age = self._day_counter - day
            weight = self.recency_decay**age
            if not streams:
                continue
            day_sets = build_ttp_datasets(
                streams, self.predictor, sample_weight=weight,
                allow_empty=True,
            )
            for k, ds in enumerate(day_sets):
                if len(ds):
                    per_step[k].append(ds)
        if any(not parts for parts in per_step):
            return None
        return [Dataset.concatenate(parts) for parts in per_step]

    def retrain(self) -> List[TrainingReport]:
        """Retrain on the window, recency-weighted, warm-started."""
        if not self._days:
            raise RuntimeError("no telemetry ingested yet")
        datasets = self.window_datasets()
        if datasets is None:
            raise ValueError(
                "no training examples for some horizon step in the window; "
                "need longer streams"
            )
        trainer = TtpTrainer(
            self.predictor,
            epochs=self.epochs_per_day,
            seed=self.seed + self._day_counter,
        )
        return trainer.train(datasets)

    def snapshot(self) -> TransmissionTimePredictor:
        """Freeze a copy of today's model (an 'out-of-date' TTP later)."""
        frozen = self.predictor.copy()
        self.snapshots[self._day_counter] = frozen
        return frozen

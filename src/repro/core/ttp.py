"""The Transmission Time Predictor (TTP), §4.2–4.5.

The TTP approximates the oracle the MPC controller needs: for a proposed
chunk of a given size, a *probability distribution* over its transmission
time, discretized into 21 bins. One fully-connected network (two hidden
layers of 64) is trained per horizon step — "multiple networks in parallel
are functionally equivalent to one that takes the future time step as a
variable" (§4.2).

The class also implements every ablated variant of §4.6 through
:class:`TtpConfig`:

* ``point_estimate`` — collapse the output distribution to its most likely
  bin ("maximum likelihood" version);
* ``predict_throughput`` — ignore the proposed chunk's size and predict a
  throughput distribution instead, deriving time as size/throughput
  ("Throughput Predictor");
* ``hidden=()`` — the linear-regression model ("equivalent to a single-layer
  neural network");
* ``ablated_features`` — drop TCP statistics (RTT, CWND, in-flight,
  delivery rate) or whole feature groups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.controller import TimeDistribution

if TYPE_CHECKING:  # typing only; avoids circular imports
    from repro.abr.base import AbrContext, ChunkRecord
    from repro.streaming.session import StreamResult
from repro.core.features import (
    FEATURE_DIM,
    N_TIME_BINS,
    PROPOSED_SIZE_INDEX,
    TCP_FEATURE_INDEX,
    TCP_SLICE,
    TIME_HISTORY_SLICE,
    SIZE_HISTORY_SLICE,
    make_feature_matrix,
    time_bin_centers,
    time_bin_index,
)
from repro.learn.network import MLP
from repro.net.tcp import TcpInfo

N_THROUGHPUT_BINS = N_TIME_BINS
THROUGHPUT_BIN_EDGES_BPS = np.geomspace(1e5, 2e8, N_THROUGHPUT_BINS + 1)


def throughput_bin_index(throughput_bps: float) -> int:
    """Discretize a throughput sample for the Throughput-Predictor ablation."""
    if throughput_bps <= 0:
        raise ValueError("throughput must be positive")
    idx = int(np.searchsorted(THROUGHPUT_BIN_EDGES_BPS, throughput_bps) - 1)
    return int(np.clip(idx, 0, N_THROUGHPUT_BINS - 1))


def throughput_bin_centers_bps() -> np.ndarray:
    """Geometric centers of the throughput bins."""
    edges = THROUGHPUT_BIN_EDGES_BPS
    return np.sqrt(edges[:-1] * edges[1:])


@dataclass(frozen=True)
class TtpConfig:
    """Architecture and ablation switches for a TTP."""

    horizon: int = 5
    hidden: Tuple[int, ...] = (64, 64)
    point_estimate: bool = False
    predict_throughput: bool = False
    ablated_features: FrozenSet[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        valid = set(TCP_FEATURE_INDEX) | {"tcp", "history_sizes", "history_times"}
        unknown = set(self.ablated_features) - valid
        if unknown:
            raise ValueError(f"unknown ablated features: {sorted(unknown)}")

    @property
    def n_output_bins(self) -> int:
        return N_THROUGHPUT_BINS if self.predict_throughput else N_TIME_BINS

    def to_dict(self) -> dict:
        """JSON-ready form (model registry, checkpoint fingerprints)."""
        return {
            "horizon": self.horizon,
            "hidden": list(self.hidden),
            "point_estimate": self.point_estimate,
            "predict_throughput": self.predict_throughput,
            "ablated_features": sorted(self.ablated_features),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TtpConfig":
        return cls(
            horizon=int(data["horizon"]),
            hidden=tuple(int(h) for h in data["hidden"]),
            point_estimate=bool(data["point_estimate"]),
            predict_throughput=bool(data["predict_throughput"]),
            ablated_features=frozenset(
                str(f) for f in data["ablated_features"]
            ),
        )

    def feature_mask(self) -> np.ndarray:
        """0/1 mask over the 22 input features; ablated columns are zeroed
        at both training and inference time."""
        mask = np.ones(FEATURE_DIM)
        if "tcp" in self.ablated_features:
            mask[TCP_SLICE] = 0.0
        for name, index in TCP_FEATURE_INDEX.items():
            if name in self.ablated_features:
                mask[index] = 0.0
        if "history_sizes" in self.ablated_features:
            mask[SIZE_HISTORY_SLICE] = 0.0
        if "history_times" in self.ablated_features:
            mask[TIME_HISTORY_SLICE] = 0.0
        if self.predict_throughput:
            # The throughput predictor is blind to the proposed chunk size.
            mask[PROPOSED_SIZE_INDEX] = 0.0
        return mask


class TransmissionTimePredictor:
    """Per-horizon-step networks mapping features to a time distribution.

    Implements the :class:`repro.core.controller.TransmissionTimeModel`
    protocol, so it plugs straight into the value-iteration controller.
    """

    def __init__(self, config: TtpConfig = TtpConfig(), seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        self.models: List[MLP] = [
            MLP(FEATURE_DIM, list(config.hidden), config.n_output_bins, rng=rng)
            for _ in range(config.horizon)
        ]
        self._mask = config.feature_mask()
        self._time_centers = time_bin_centers()
        self._tput_centers = throughput_bin_centers_bps()

    # ------------------------------------------------------------------
    # Tail calibration
    # ------------------------------------------------------------------
    @property
    def tail_center_s(self) -> float:
        """Representative transmission time of the open [9.75, ∞) bin."""
        return float(self._time_centers[-1])

    def calibrate_tail(
        self, streams: "Sequence[StreamResult]", cap_s: float = 60.0
    ) -> float:
        """Set the tail bin's representative time to the empirical mean of
        observed tail transmission times.

        Times in the open-ended last bin are heavy-tailed (deep fades); a
        fixed small center would make the planner ignore them against the
        µ=100 stall weight. Learning the conditional mean *in situ* keeps
        the expected-stall arithmetic honest for the actual deployment.
        """
        tail_times = [
            min(record.transmission_time, cap_s)
            for stream in streams
            for record in stream.records
            if record.transmission_time >= 9.75
        ]
        if tail_times:
            self._time_centers[-1] = max(float(np.mean(tail_times)), 10.0)
        return self.tail_center_s

    # ------------------------------------------------------------------
    # Label construction
    # ------------------------------------------------------------------
    def label_for(self, record: ChunkRecord) -> int:
        """Training label for one observed chunk."""
        if self.config.predict_throughput:
            return throughput_bin_index(record.observed_throughput_bps)
        return time_bin_index(record.transmission_time)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def masked_features(
        self,
        history: Sequence[ChunkRecord],
        info: TcpInfo,
        sizes_bytes: np.ndarray,
    ) -> np.ndarray:
        return make_feature_matrix(history, info, sizes_bytes) * self._mask

    def distribution(
        self,
        history: Sequence[ChunkRecord],
        info: TcpInfo,
        sizes_bytes: np.ndarray,
        step: int = 0,
    ) -> TimeDistribution:
        """Transmission-time distribution per candidate size."""
        if not 0 <= step < self.config.horizon:
            raise ValueError(f"step must lie in [0, {self.config.horizon})")
        sizes_bytes = np.asarray(sizes_bytes, dtype=float)
        if obs.ENABLED:
            # Inference *counts* are deterministic (one per planner call per
            # horizon step); the latency histogram is wall-clock and lands
            # in the quarantined profile.* namespace.
            obs.counter_inc("ttp.inferences")
            obs.counter_inc("ttp.inference_rows", float(len(sizes_bytes)))
        with obs.span("ttp.predict"):
            features = self.masked_features(history, info, sizes_bytes)
            probs = self.models[step].predict_proba(features)
        if self.config.predict_throughput:
            # times[a, j] = size_a / throughput_center_j
            times = sizes_bytes[:, None] * 8.0 / self._tput_centers[None, :]
        else:
            times = np.tile(self._time_centers, (len(sizes_bytes), 1))
        if self.config.point_estimate:
            best = probs.argmax(axis=1)
            times = times[np.arange(len(sizes_bytes)), best][:, None]
            probs = np.ones_like(times)
        return TimeDistribution(times=times, probs=probs)

    def predict(
        self, context: AbrContext, step: int, sizes_bytes: np.ndarray
    ) -> TimeDistribution:
        """TransmissionTimeModel protocol entry point for the controller."""
        return self.distribution(
            context.history, context.tcp_info, sizes_bytes, step=step
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            # The in-situ tail calibration (calibrate_tail) is part of the
            # trained model: a frozen snapshot that dropped it would plan
            # with the uncalibrated 9.75 s tail center and mis-weight deep
            # fades against the µ=100 stall penalty.
            "tail_center_s": self.tail_center_s,
            "models": [m.state_dict() for m in self.models],
        }

    def load_state_dict(self, state: dict) -> None:
        saved = state["models"]
        if len(saved) != len(self.models):
            raise ValueError("horizon mismatch while loading TTP state")
        for model, model_state in zip(self.models, saved):
            model.load_state_dict(model_state)
        tail = state.get("tail_center_s")  # absent in pre-calibration saves
        if tail is not None:
            if tail <= 0:
                raise ValueError("tail_center_s must be positive")
            self._time_centers[-1] = float(tail)

    def copy(self) -> "TransmissionTimePredictor":
        clone = TransmissionTimePredictor(self.config)
        clone.load_state_dict(self.state_dict())
        return clone

    @classmethod
    def from_state_dict(cls, state: dict) -> "TransmissionTimePredictor":
        """Rebuild a predictor from a saved :meth:`state_dict`.

        The model-registry load path: JSON float serialization round-trips
        exactly (``repr``/``float`` are inverses for binary64), so a
        predictor reloaded from the registry is *bitwise* identical to the
        one that was committed — which is what makes warm-started continual
        retraining reproducible across kill/resume.
        """
        predictor = cls(TtpConfig.from_dict(state["config"]))
        predictor.load_state_dict(state)
        return predictor

"""repro.crashpoints — numbered crash points and power-loss emulation.

The runtime half of the crash-consistency contract.  The static half is
the ``repro.lint`` durability analysis (rules DUR001-DUR004 over the
write-effect pass in ``repro.lint.effects``); this module provides the
dynamic cross-check that every statically enforced invariant actually
matters — mirroring the lint<->golden, purity<->sanitizer and seed
rules<->seed registry pairings of earlier milestones.

Three layers:

1. **Crash-point runtime.**  Code on durable commit paths (the
   ``repro.atomio`` helper, the registry and checkpoint commit
   boundaries) calls :func:`crashpoint` with a stable label.  With
   ``REPRO_CRASHPOINT=n`` in the environment the process aborts — hard,
   via ``os._exit`` so no ``finally``/``atexit`` cleanup can tidy up —
   at the *n*-th point it passes, with exit status
   :data:`CRASH_EXIT_CODE`.  With ``REPRO_CRASHPOINT_LOG=file`` every
   point passed appends ``"<n> <label>"`` to *file*; a reference run
   with only the log variable set therefore enumerates the full,
   deterministic crash-point sequence.  With neither variable set the
   call is a cheap no-op.

2. **:class:`PowerLossSimulator`.**  ALICE-style crash-state
   enumeration for in-process scenarios (the lint fixture cross-check
   in ``tests/lint/test_durability_crosscheck.py``).  It patches
   ``open``/``os.replace``/``os.rename``/``os.fsync`` under a sandbox
   root, journals every durability-relevant operation while letting it
   through, then computes — for every operation prefix — the worst-case
   state a power cut leaves on disk under the standard crash model
   (metadata operations such as create, truncate-on-open and rename
   persist; file *contents* persist only up to the last explicit
   fsync), and materializes that survivor tree for inspection.

3. **:func:`run_crash_matrix`.**  The subprocess harness behind
   ``repro crash-matrix``: a reference fleet run enumerates the crash
   points, then for each point a fresh run is killed exactly there,
   resumed from whatever survived, and its metrics dump / model
   registry / telemetry archive byte-compared against the uninterrupted
   reference.
"""

from __future__ import annotations

import builtins
import io
import os
import shutil
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

ENV_CRASHPOINT = "REPRO_CRASHPOINT"
ENV_CRASHPOINT_LOG = "REPRO_CRASHPOINT_LOG"

CRASH_EXIT_CODE = 86
"""Exit status of a process deliberately aborted at a crash point."""


# ---------------------------------------------------------------------------
# Crash-point runtime
# ---------------------------------------------------------------------------


@dataclass
class _CrashpointState:
    target: Optional[int]
    log_path: Optional[str]
    hits: int = 0


_STATE: Optional[_CrashpointState] = None


def _abort(code: int) -> None:  # pragma: no cover - replaced in unit tests
    # os._exit, not sys.exit: a real power cut runs no finally blocks.
    os._exit(code)


def _state() -> _CrashpointState:
    global _STATE
    if _STATE is None:
        raw = os.environ.get(ENV_CRASHPOINT, "").strip()
        target: Optional[int] = None
        if raw:
            try:
                target = int(raw)
            except ValueError:
                raise ValueError(
                    f"{ENV_CRASHPOINT} must be an integer, got {raw!r}"
                ) from None
            if target < 1:
                raise ValueError(
                    f"{ENV_CRASHPOINT} must be >= 1, got {target}"
                )
        log_path = os.environ.get(ENV_CRASHPOINT_LOG, "").strip() or None
        # fmt: off
        _STATE = _CrashpointState(target=target, log_path=log_path)  # repro: allow-PURE001(crash-point arming is a process-global latch, fixed at first use; disarmed it never perturbs a session)
        # fmt: on
    return _STATE


def configure(
    target: Optional[int] = None, log_path: Optional[str] = None
) -> None:
    """Arm the crash-point runtime explicitly (tests; overrides the env)."""
    global _STATE
    _STATE = _CrashpointState(target=target, log_path=log_path)


def reset() -> None:
    """Drop armed state; the next :func:`crashpoint` re-reads the env."""
    global _STATE
    _STATE = None


def hits() -> int:
    """Crash points passed so far in this process (0 when disarmed)."""
    return 0 if _STATE is None else _STATE.hits


def crashpoint(label: str) -> None:
    """Pass one numbered crash point on a durable commit path.

    *label* must be deterministic across runs of the same configuration
    (use file basenames, never absolute paths or pids), because the
    crash matrix replays a run by point *number* and cross-checks the
    label sequence.
    """
    state = _state()
    if state.target is None and state.log_path is None:
        return
    state.hits += 1
    if state.log_path is not None:
        # Plain append: the log is diagnostic output of the harness
        # itself, not a durable artifact of the system under test.
        with open(state.log_path, "a", encoding="utf-8") as f:
            f.write(f"{state.hits} {label}\n")
    if state.target is not None and state.hits == state.target:
        _abort(CRASH_EXIT_CODE)


# ---------------------------------------------------------------------------
# Power-loss simulation (in-process crash-state enumeration)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JournalOp:
    """One durability-relevant filesystem operation under the sandbox.

    ``kind`` is ``"open"`` (for write/append/update — ``mode`` holds the
    mode string), ``"fsync"`` (``content`` holds the on-disk bytes at
    sync time) or ``"replace"`` (``dest`` holds the destination, or
    ``None`` when the file left the sandbox).  Paths are root-relative
    POSIX strings.
    """

    kind: str
    path: str
    mode: str = ""
    content: Optional[bytes] = None
    dest: Optional[str] = None


class PowerLossSimulator:
    """Journal filesystem mutations under *root* and enumerate crash states.

    Use as a context manager around a scenario that writes beneath
    *root*; afterwards :meth:`crash_states` yields, for every prefix of
    the journal, the worst-case tree a power cut at that instant leaves
    behind, and :meth:`materialize` writes that tree out so arbitrary
    consistency predicates can run against it.

    Crash model (ALICE's default, which matches ext4-ordered and every
    journaled filesystem the archive targets): directory metadata —
    creation, truncation-on-open, rename — reaches the disk immediately;
    file *data* reaches the disk only up to the last explicit
    ``os.fsync`` of that file.  Directory fsync is deliberately modeled
    as a no-op (renames always persist here), so a missing directory
    fsync is a *static-only* finding (DUR002's second clause).
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root).resolve()
        self.journal: List[JournalOp] = []
        self._initial: Dict[str, bytes] = {}
        self._fd_paths: Dict[int, str] = {}
        self._real_open = builtins.open
        self._real_io_open = io.open
        self._real_replace = os.replace
        self._real_rename = os.rename
        self._real_fsync = os.fsync

    # -- patching ----------------------------------------------------------

    def __enter__(self) -> "PowerLossSimulator":
        self._snapshot_initial()
        builtins.open = self._patched_open  # type: ignore[assignment]
        io.open = self._patched_open  # type: ignore[assignment]
        os.replace = self._patched_replace  # type: ignore[assignment]
        os.rename = self._patched_rename  # type: ignore[assignment]
        os.fsync = self._patched_fsync
        return self

    def __exit__(self, *exc: Any) -> None:
        builtins.open = self._real_open
        io.open = self._real_io_open  # type: ignore[assignment]
        os.replace = self._real_replace
        os.rename = self._real_rename
        os.fsync = self._real_fsync

    def _snapshot_initial(self) -> None:
        for path in sorted(self.root.rglob("*")):
            if path.is_file():
                rel = path.relative_to(self.root).as_posix()
                self._initial[rel] = path.read_bytes()

    def _relative(self, target: Any) -> Optional[str]:
        try:
            path = Path(os.fspath(target))
        except TypeError:
            return None  # fd-based open and friends: out of scope
        if not path.is_absolute():
            path = Path.cwd() / path
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return None

    def _patched_open(self, file: Any, *args: Any, **kwargs: Any) -> Any:
        mode = str(kwargs.get("mode") or (args[0] if args else "r"))
        rel = self._relative(file)
        if rel is not None and any(c in mode for c in "wax+"):
            self.journal.append(JournalOp("open", rel, mode=mode))
        handle = self._real_open(file, *args, **kwargs)
        if rel is not None:
            try:
                self._fd_paths[int(handle.fileno())] = rel
            except (OSError, AttributeError, io.UnsupportedOperation):
                pass
        return handle

    def _patched_replace(self, src: Any, dst: Any, **kwargs: Any) -> None:
        rel_src = self._relative(src)
        rel_dst = self._relative(dst)
        if rel_src is not None:
            self.journal.append(JournalOp("replace", rel_src, dest=rel_dst))
        self._real_replace(src, dst, **kwargs)

    def _patched_rename(self, src: Any, dst: Any, **kwargs: Any) -> None:
        rel_src = self._relative(src)
        rel_dst = self._relative(dst)
        if rel_src is not None:
            self.journal.append(JournalOp("replace", rel_src, dest=rel_dst))
        self._real_rename(src, dst, **kwargs)

    def _patched_fsync(self, fd: int) -> None:
        self._real_fsync(fd)
        rel = self._fd_paths.get(fd)
        if rel is None:
            return
        target = self.root / rel
        # Guard against fd-number reuse (e.g. a directory fd from
        # os.open landing on the number of a since-renamed tmp file):
        # only journal a data sync for a path that still exists.
        if not target.exists():
            return
        self.journal.append(JournalOp("fsync", rel, content=target.read_bytes()))

    # -- crash-state enumeration -------------------------------------------

    def n_states(self) -> int:
        return len(self.journal) + 1

    def durable_state(self, prefix: int) -> Dict[str, Optional[bytes]]:
        """Worst-case surviving tree after a cut at journal index *prefix*.

        Maps root-relative path to surviving bytes, or ``None`` for a
        file the crash state does not contain.
        """
        state: Dict[str, Optional[bytes]] = dict(self._initial)
        for op in self.journal[:prefix]:
            if op.kind == "open":
                if any(c in op.mode for c in "wx"):
                    # Truncate/create metadata persists; new data does not.
                    state[op.path] = b""
                elif state.get(op.path) is None:
                    # Created by an append/update open.
                    state[op.path] = b""
            elif op.kind == "fsync":
                state[op.path] = op.content
            elif op.kind == "replace":
                moved = state.get(op.path)
                state[op.path] = None
                if op.dest is not None:
                    state[op.dest] = moved if moved is not None else b""
        return state

    def crash_states(
        self,
    ) -> Iterator[Tuple[int, Dict[str, Optional[bytes]]]]:
        for prefix in range(self.n_states()):
            yield prefix, self.durable_state(prefix)

    def materialize(
        self, state: Dict[str, Optional[bytes]], dest: Path
    ) -> Path:
        """Write a crash state out as a real directory tree."""
        dest = Path(dest)
        if dest.exists():
            shutil.rmtree(dest)
        dest.mkdir(parents=True)
        for rel, content in sorted(state.items()):
            if content is None:
                continue
            target = dest / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(content)
        return dest


def find_torn_state(
    base_dir: Path,
    setup: Optional[Callable[[Path], None]],
    scenario: Callable[[Path], None],
    consistent: Callable[[Path], bool],
) -> Optional[int]:
    """Search every crash state of *scenario* for one *consistent* rejects.

    Runs *setup* (optional) and then *scenario* once against
    ``base_dir/live`` under the simulator, then materializes each crash
    prefix and applies *consistent* to the survivor tree.  Returns the
    first inconsistent prefix index — the counterexample a bad fixture
    must have — or ``None`` when every crash state passes, the property
    every good fixture must have.
    """
    base = Path(base_dir)
    work = base / "live"
    work.mkdir(parents=True, exist_ok=True)
    if setup is not None:
        setup(work)
    sim = PowerLossSimulator(work)
    with sim:
        scenario(work)
    for prefix, state in sim.crash_states():
        survivor = sim.materialize(state, base / f"crash-{prefix:03d}")
        if not consistent(survivor):
            return prefix
    return None


# ---------------------------------------------------------------------------
# Crash matrix (subprocess kill/resume/compare harness)
# ---------------------------------------------------------------------------


class CrashMatrixError(RuntimeError):
    """The harness itself failed (reference run, bad point index, ...)."""


@dataclass
class CrashPointOutcome:
    """Kill/resume/compare result for one enumerated crash point."""

    index: int
    label: str
    crashed: bool
    resumed: bool
    identical: bool
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.crashed and self.resumed and self.identical


@dataclass
class CrashMatrixReport:
    mode: str
    labels: List[str]
    outcomes: List[CrashPointOutcome]

    @property
    def ok(self) -> bool:
        return bool(self.labels) and all(o.ok for o in self.outcomes)


_ARCHIVE_TABLES = ("video_sent.csv", "video_acked.csv", "client_buffer.csv")


def _fleet_args(
    mode: str, base: Path, days: float, rate: float, chunk_size: int
) -> List[str]:
    """CLI argv (after ``python -m repro``) for one matrix fleet run."""
    args = [
        "fleet",
        "retrain" if mode == "retrain" else "run",
        "--days", str(days),
        "--rate", str(rate),
        "--seed", "5",
        "--trial-seed", "11",
        "--chunk-size", str(chunk_size),
        "--checkpoint", str(base / "fleet.ckpt"),
        "--out", str(base / "dump.json"),
    ]
    if mode == "retrain":
        args += [
            "--archive-dir", str(base / "archive"),
            "--registry", str(base / "registry"),
            "--window-days", "3",
            "--recency-decay", "0.9",
            "--epochs-per-day", "1",
            "--ttp-horizon", "2",
        ]
    elif mode == "edge":
        args += ["--cells", "3", "--edge-seed", "11"]
    elif mode == "run":
        args += ["--archive-dir", str(base / "archive")]
    else:
        raise CrashMatrixError(f"unknown crash-matrix mode: {mode!r}")
    return args


def _subprocess_env(extra: Dict[str, str]) -> Dict[str, str]:
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
    env.pop(ENV_CRASHPOINT, None)
    env.pop(ENV_CRASHPOINT_LOG, None)
    env.update(extra)
    return env


def _run_cli(
    cli_args: Sequence[str], env: Dict[str, str], python: str
) -> "subprocess.CompletedProcess[bytes]":
    return subprocess.run(
        [python, "-m", "repro", *cli_args], env=env, capture_output=True
    )


def _parse_point_log(path: Path) -> List[str]:
    labels: List[str] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        index_text, _, label = line.partition(" ")
        if int(index_text) != len(labels) + 1:
            raise CrashMatrixError(
                f"crash-point log out of order at line {line!r}"
            )
        labels.append(label)
    return labels


def _stderr_tail(proc: "subprocess.CompletedProcess[bytes]") -> str:
    return proc.stderr.decode("utf-8", errors="replace")[-2000:]


def _compare_artifacts(
    mode: str, ref: Path, victim_dump: Path, victim: Path
) -> Optional[str]:
    """Byte-compare resumed artifacts against the reference run.

    The checkpoint file itself is deliberately excluded: its ``cli_args``
    embed run-directory paths that legitimately differ between the
    reference and each victim; the metrics dump (path-free by contract),
    registry and archive are the durable outputs the paper's pipeline
    consumes.
    """
    if not victim_dump.exists():
        return "resume produced no metrics dump"
    if (ref / "dump.json").read_bytes() != victim_dump.read_bytes():
        return "metrics dump differs from reference"
    if mode in ("retrain", "run"):
        for name in _ARCHIVE_TABLES:
            theirs = victim / "archive" / name
            if not theirs.exists():
                return f"missing archive table {name}"
            if (ref / "archive" / name).read_bytes() != theirs.read_bytes():
                return f"archive table {name} differs from reference"
    if mode == "retrain":
        ref_files = sorted(p.name for p in (ref / "registry").glob("*.json"))
        victim_files = sorted(
            p.name for p in (victim / "registry").glob("*.json")
        )
        if ref_files != victim_files:
            return (
                f"registry file set differs: {victim_files} vs {ref_files}"
            )
        for name in ref_files:
            a = (ref / "registry" / name).read_bytes()
            b = (victim / "registry" / name).read_bytes()
            if a != b:
                return f"registry file {name} differs from reference"
    return None


def run_crash_matrix(
    workdir: Path,
    mode: str = "retrain",
    days: float = 1.15,
    rate: float = 3.0,
    chunk_size: int = 16,
    points: Optional[Sequence[int]] = None,
    python: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CrashMatrixReport:
    """Enumerate crash points of a mini fleet run; kill/resume/compare each.

    A reference run (crash points logged, none armed) produces the
    ground-truth dump/registry/archive and the ordered point labels.
    Then for every requested point *n* (default: all), a fresh victim
    run is aborted exactly at point *n*, resumed — via ``fleet resume``
    when a checkpoint file survived, else by re-running with
    ``--resume`` (the fresh-start path) — and its durable outputs are
    byte-compared against the reference.
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    exe = python or sys.executable
    say = progress if progress is not None else (lambda message: None)

    ref = workdir / "ref"
    ref.mkdir()
    log_path = workdir / "points.log"
    say(f"crash-matrix[{mode}]: reference run ...")
    proc = _run_cli(
        _fleet_args(mode, ref, days, rate, chunk_size),
        _subprocess_env({ENV_CRASHPOINT_LOG: str(log_path)}),
        exe,
    )
    if proc.returncode != 0:
        raise CrashMatrixError(
            f"reference run failed (exit {proc.returncode}): "
            f"{_stderr_tail(proc)}"
        )
    labels = _parse_point_log(log_path)
    if not labels:
        raise CrashMatrixError("reference run registered no crash points")
    say(f"crash-matrix[{mode}]: {len(labels)} crash points enumerated")

    if points is None:
        indices = list(range(1, len(labels) + 1))
    else:
        indices = sorted(set(int(n) for n in points))
        for n in indices:
            if not 1 <= n <= len(labels):
                raise CrashMatrixError(
                    f"crash point {n} out of range 1..{len(labels)}"
                )

    outcomes: List[CrashPointOutcome] = []
    for n in indices:
        label = labels[n - 1]
        base = workdir / f"point-{n:03d}"
        base.mkdir()
        crash = _run_cli(
            _fleet_args(mode, base, days, rate, chunk_size),
            _subprocess_env({ENV_CRASHPOINT: str(n)}),
            exe,
        )
        if crash.returncode != CRASH_EXIT_CODE:
            outcomes.append(
                CrashPointOutcome(
                    n, label, crashed=False, resumed=False, identical=False,
                    detail=(
                        f"expected crash exit {CRASH_EXIT_CODE}, got "
                        f"{crash.returncode}: {_stderr_tail(crash)}"
                    ),
                )
            )
            say(f"crash-matrix[{mode}]: point {n} FAILED to crash")
            continue
        checkpoint = base / "fleet.ckpt"
        if checkpoint.exists():
            how = "checkpoint"
            resume_args = [
                "fleet", "resume",
                "--checkpoint", str(checkpoint),
                "--out", str(base / "resumed.json"),
            ]
        else:
            # The crash predates the first durable checkpoint: the
            # survivor state has no pointer file, and recovery is a
            # fresh start that must clear any torn partial output.
            how = "fresh-start"
            resume_args = _fleet_args(mode, base, days, rate, chunk_size)
            resume_args[resume_args.index("--out") + 1] = str(
                base / "resumed.json"
            )
            resume_args.append("--resume")
        resumed = _run_cli(resume_args, _subprocess_env({}), exe)
        if resumed.returncode != 0:
            outcomes.append(
                CrashPointOutcome(
                    n, label, crashed=True, resumed=False, identical=False,
                    detail=(
                        f"resume ({how}) failed with exit "
                        f"{resumed.returncode}: {_stderr_tail(resumed)}"
                    ),
                )
            )
            say(f"crash-matrix[{mode}]: point {n} ({label}) resume FAILED")
            continue
        diff = _compare_artifacts(mode, ref, base / "resumed.json", base)
        outcomes.append(
            CrashPointOutcome(
                n, label, crashed=True, resumed=True,
                identical=diff is None, detail=diff or how,
            )
        )
        status = "ok" if diff is None else f"DIVERGED: {diff}"
        say(
            f"crash-matrix[{mode}]: point {n}/{len(labels)} "
            f"({label}) {status}"
        )
    return CrashMatrixReport(mode=mode, labels=labels, outcomes=outcomes)


def format_report(report: CrashMatrixReport) -> str:
    lines = [
        f"crash-matrix mode={report.mode}: {len(report.labels)} points "
        f"enumerated, {len(report.outcomes)} tested"
    ]
    for outcome in report.outcomes:
        status = "ok" if outcome.ok else f"FAIL ({outcome.detail})"
        lines.append(
            f"  [{outcome.index:3d}] {outcome.label:<44} {status}"
        )
    lines.append("PASS" if report.ok else "FAIL")
    return "\n".join(lines)

"""Open-data archive tooling (Appendix B).

Puffer "publish[es] an archive of traces and results each day": CSV tables
``video_sent``, ``video_acked`` and ``client_buffer``, with sensitive
fields redacted. This package writes the simulator's telemetry in that
format and loads it back for analysis, so analysis code is exercised
against the same interchange format a consumer of the real archive uses.
"""

from repro.data.archive import (
    ArchiveAppender,
    ArchiveDay,
    load_archive_day,
    read_telemetry_slice,
    reconstruct_streams,
    reconstruct_training_streams,
    write_archive_day,
)

__all__ = [
    "ArchiveAppender",
    "ArchiveDay",
    "write_archive_day",
    "load_archive_day",
    "read_telemetry_slice",
    "reconstruct_streams",
    "reconstruct_training_streams",
]

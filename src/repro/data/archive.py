"""Writing and reading the daily open-data archive (Appendix B).

Each archive day is a directory of three CSV files:

* ``video_sent.csv`` — time, stream_id, expt_id, chunk_index, size,
  ssim_index, cwnd, in_flight, min_rtt, rtt, delivery_rate;
* ``video_acked.csv`` — time, stream_id, expt_id, chunk_index;
* ``client_buffer.csv`` — time, stream_id, expt_id, event, buffer,
  cum_rebuf.

The column sets match the fields the paper describes for the public data
(IP addresses and user ids are redacted in the real archive; the simulator
never produces them). :func:`reconstruct_streams` performs the join a
downstream analyst performs: sent ⋈ acked on (stream_id, chunk_index)
recovers per-chunk transmission times, and ``client_buffer`` yields stall
accounting.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.streaming.telemetry import (
    BufferEvent,
    ClientBufferRecord,
    TelemetryLog,
    VideoAckedRecord,
    VideoSentRecord,
)

_SENT_COLUMNS = [
    "time", "stream_id", "expt_id", "chunk_index", "size", "ssim_index",
    "cwnd", "in_flight", "min_rtt", "rtt", "delivery_rate",
]
_ACKED_COLUMNS = ["time", "stream_id", "expt_id", "chunk_index"]
_BUFFER_COLUMNS = [
    "time", "stream_id", "expt_id", "event", "buffer", "cum_rebuf",
]


@dataclass(frozen=True)
class ArchiveDay:
    """Paths of one day's archive files."""

    directory: Path
    video_sent: Path
    video_acked: Path
    client_buffer: Path

    @classmethod
    def in_directory(cls, directory: Union[str, Path]) -> "ArchiveDay":
        directory = Path(directory)
        return cls(
            directory=directory,
            video_sent=directory / "video_sent.csv",
            video_acked=directory / "video_acked.csv",
            client_buffer=directory / "client_buffer.csv",
        )


def write_archive_day(
    telemetry: TelemetryLog, directory: Union[str, Path]
) -> ArchiveDay:
    """Write one day of telemetry as the three-table CSV archive."""
    day = ArchiveDay.in_directory(directory)
    day.directory.mkdir(parents=True, exist_ok=True)

    with open(day.video_sent, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_SENT_COLUMNS)
        writer.writeheader()
        for record in telemetry.video_sent:
            writer.writerow(record.to_dict())

    with open(day.video_acked, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_ACKED_COLUMNS)
        writer.writeheader()
        for record in telemetry.video_acked:
            writer.writerow(record.to_dict())

    with open(day.client_buffer, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_BUFFER_COLUMNS)
        writer.writeheader()
        for record in telemetry.client_buffer:
            writer.writerow(record.to_dict())

    return day


class ArchiveAppender:
    """Incremental (open-once) writer for the three archive tables.

    Batch runs buffer a full :class:`TelemetryLog` and call
    :func:`write_archive_day` at the end; an open-ended fleet run cannot —
    that buffer grows without bound.  The appender keeps each CSV open,
    appends rows as sessions commit, and flushes per commit, so the daily
    open-data archive streams to disk at O(1) memory.

    Crash-safe cooperation with the fleet checkpoint: :meth:`offsets`
    reports the current byte position of every table (after a flush), the
    checkpoint records those positions, and on resume
    :meth:`truncate_to` discards any rows appended after the last durable
    checkpoint — so the archive never contains rows from uncommitted
    sessions, and a killed+resumed run produces byte-identical CSVs.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.day = ArchiveDay.in_directory(directory)
        self.day.directory.mkdir(parents=True, exist_ok=True)
        self._files = {}
        self._writers = {}
        for name, path, columns in self._tables():
            fresh = not path.exists() or path.stat().st_size == 0
            f = open(path, "a", newline="")
            # Append mode leaves the reported position implementation-
            # defined until the first write; pin it to the end so
            # ``offsets()`` is meaningful before any append.
            f.seek(0, os.SEEK_END)
            self._files[name] = f
            writer = csv.DictWriter(f, fieldnames=columns)
            self._writers[name] = writer
            if fresh:
                writer.writeheader()
        self.flush()

    def _tables(self) -> List[Tuple[str, Path, List[str]]]:
        return [
            ("video_sent", self.day.video_sent, _SENT_COLUMNS),
            ("video_acked", self.day.video_acked, _ACKED_COLUMNS),
            ("client_buffer", self.day.client_buffer, _BUFFER_COLUMNS),
        ]

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, telemetry: TelemetryLog) -> None:
        """Append one batch of rows (typically one committed session)."""
        for record in telemetry.video_sent:
            self._writers["video_sent"].writerow(record.to_dict())
        for record in telemetry.video_acked:
            self._writers["video_acked"].writerow(record.to_dict())
        for record in telemetry.client_buffer:
            self._writers["client_buffer"].writerow(record.to_dict())

    def flush(self, sync: bool = False) -> None:
        """Flush buffered rows; ``sync=True`` additionally fsyncs (called
        before a checkpoint records the offsets as durable)."""
        for _, f in sorted(self._files.items()):
            f.flush()
            if sync:
                os.fsync(f.fileno())

    def offsets(self) -> Dict[str, int]:
        """Current byte position of every table (flushes first)."""
        self.flush()
        return {
            name: self._files[name].tell()
            for name in sorted(self._files)
        }

    # ------------------------------------------------------------------
    # Resume support
    # ------------------------------------------------------------------
    def truncate_to(self, offsets: Dict[str, int]) -> None:
        """Discard everything after ``offsets`` (rows from sessions that
        were appended but never checkpointed before a crash)."""
        for name in sorted(self._files):
            if name not in offsets:
                raise ValueError(f"no stored offset for table {name!r}")
            f = self._files[name]
            f.flush()
            f.truncate(int(offsets[name]))
            f.seek(0, os.SEEK_END)

    def close(self) -> None:
        for _, f in sorted(self._files.items()):
            f.flush()
            f.close()
        self._files = {}
        self._writers = {}

    def __enter__(self) -> "ArchiveAppender":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _require_columns(path: Path, header: List[str], expected: List[str]) -> None:
    if header != expected:
        raise ValueError(
            f"{path}: unexpected columns {header}; expected {expected}"
        )


def load_archive_day(directory: Union[str, Path]) -> TelemetryLog:
    """Load one day's archive back into a :class:`TelemetryLog`."""
    day = ArchiveDay.in_directory(directory)
    for path in (day.video_sent, day.video_acked, day.client_buffer):
        if not path.exists():
            raise FileNotFoundError(f"missing archive table: {path}")
    telemetry = TelemetryLog()

    with open(day.video_sent, newline="") as f:
        reader = csv.DictReader(f)
        _require_columns(day.video_sent, reader.fieldnames, _SENT_COLUMNS)
        for row in reader:
            telemetry.video_sent.append(
                VideoSentRecord(
                    time=float(row["time"]),
                    stream_id=int(row["stream_id"]),
                    expt_id=int(row["expt_id"]),
                    chunk_index=int(row["chunk_index"]),
                    size=float(row["size"]),
                    ssim_index=float(row["ssim_index"]),
                    cwnd=float(row["cwnd"]),
                    in_flight=float(row["in_flight"]),
                    min_rtt=float(row["min_rtt"]),
                    rtt=float(row["rtt"]),
                    delivery_rate=float(row["delivery_rate"]),
                )
            )

    with open(day.video_acked, newline="") as f:
        reader = csv.DictReader(f)
        _require_columns(day.video_acked, reader.fieldnames, _ACKED_COLUMNS)
        for row in reader:
            telemetry.video_acked.append(
                VideoAckedRecord(
                    time=float(row["time"]),
                    stream_id=int(row["stream_id"]),
                    expt_id=int(row["expt_id"]),
                    chunk_index=int(row["chunk_index"]),
                )
            )

    with open(day.client_buffer, newline="") as f:
        reader = csv.DictReader(f)
        _require_columns(day.client_buffer, reader.fieldnames, _BUFFER_COLUMNS)
        for row in reader:
            telemetry.client_buffer.append(
                ClientBufferRecord(
                    time=float(row["time"]),
                    stream_id=int(row["stream_id"]),
                    expt_id=int(row["expt_id"]),
                    event=BufferEvent(row["event"]),
                    buffer=float(row["buffer"]),
                    cum_rebuf=float(row["cum_rebuf"]),
                )
            )
    return telemetry


@dataclass
class ArchivedStream:
    """Per-stream view reconstructed from the archive tables."""

    stream_id: int
    expt_id: int
    chunk_transmission_times: Dict[int, float]
    chunk_sizes: Dict[int, float]
    chunk_ssim_indices: Dict[int, float]
    total_stall_s: float

    @property
    def n_chunks_acked(self) -> int:
        return len(self.chunk_transmission_times)

    def observed_throughputs_bps(self) -> List[float]:
        return [
            self.chunk_sizes[i] * 8.0 / t
            for i, t in self.chunk_transmission_times.items()
            if t > 0 and i in self.chunk_sizes
        ]


def reconstruct_streams(telemetry: TelemetryLog) -> Dict[int, ArchivedStream]:
    """The analyst's join: sent ⋈ acked per stream, plus stall totals.

    Robust to the row-ordering hazards of a streamed (or sharded) archive,
    where tables are appended per committed session and a real deployment's
    collectors may interleave or drop rows:

    * ``video_acked`` rows may arrive in any order — the join keys on
      ``(stream_id, chunk_index)``, and the result is independent of row
      order;
    * duplicate acks for one chunk keep the **earliest** ack time (the
      first complete delivery; retransmitted acks don't shrink the
      measured transmission time);
    * acks whose matching ``video_sent`` row is missing, or which are
      timestamped *before* their send (clock skew / corruption), are
      dropped rather than producing negative transmission times.
    """
    sent_by_key: Dict[Tuple[int, int], VideoSentRecord] = {}
    expt_by_stream: Dict[int, int] = {}
    for record in telemetry.video_sent:
        sent_by_key[(record.stream_id, record.chunk_index)] = record
        expt_by_stream[record.stream_id] = record.expt_id

    streams: Dict[int, ArchivedStream] = {}

    def stream_for(stream_id: int) -> ArchivedStream:
        if stream_id not in streams:
            streams[stream_id] = ArchivedStream(
                stream_id=stream_id,
                expt_id=expt_by_stream.get(stream_id, -1),
                chunk_transmission_times={},
                chunk_sizes={},
                chunk_ssim_indices={},
                total_stall_s=0.0,
            )
        return streams[stream_id]

    for acked in telemetry.video_acked:
        sent = sent_by_key.get((acked.stream_id, acked.chunk_index))
        if sent is None:
            continue  # chunk never fully delivered before the viewer left
        transmission = acked.time - sent.time
        if transmission < 0:
            continue  # misordered/corrupt row: acked before it was sent
        stream = stream_for(acked.stream_id)
        previous = stream.chunk_transmission_times.get(acked.chunk_index)
        if previous is not None and previous <= transmission:
            continue  # duplicate ack: keep the earliest complete delivery
        stream.chunk_transmission_times[acked.chunk_index] = transmission
        stream.chunk_sizes[acked.chunk_index] = sent.size
        stream.chunk_ssim_indices[acked.chunk_index] = sent.ssim_index

    for record in telemetry.client_buffer:
        stream = stream_for(record.stream_id)
        stream.total_stall_s = max(stream.total_stall_s, record.cum_rebuf)

    return streams

"""Writing and reading the daily open-data archive (Appendix B).

Each archive day is a directory of three CSV files:

* ``video_sent.csv`` — time, stream_id, expt_id, chunk_index, size,
  ssim_index, cwnd, in_flight, min_rtt, rtt, delivery_rate;
* ``video_acked.csv`` — time, stream_id, expt_id, chunk_index;
* ``client_buffer.csv`` — time, stream_id, expt_id, event, buffer,
  cum_rebuf.

The column sets match the fields the paper describes for the public data
(IP addresses and user ids are redacted in the real archive; the simulator
never produces them). :func:`reconstruct_streams` performs the join a
downstream analyst performs: sent ⋈ acked on (stream_id, chunk_index)
recovers per-chunk transmission times, and ``client_buffer`` yields stall
accounting.
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.atomio import atomic_write_bytes
from repro.streaming.telemetry import (
    BufferEvent,
    ClientBufferRecord,
    TelemetryLog,
    VideoAckedRecord,
    VideoSentRecord,
)

if TYPE_CHECKING:  # typing only; avoids importing the simulator eagerly
    from repro.streaming.session import StreamResult

_SENT_COLUMNS = [
    "time", "stream_id", "expt_id", "chunk_index", "size", "ssim_index",
    "cwnd", "in_flight", "min_rtt", "rtt", "delivery_rate",
]
_ACKED_COLUMNS = ["time", "stream_id", "expt_id", "chunk_index"]
_BUFFER_COLUMNS = [
    "time", "stream_id", "expt_id", "event", "buffer", "cum_rebuf",
]


@dataclass(frozen=True)
class ArchiveDay:
    """Paths of one day's archive files."""

    directory: Path
    video_sent: Path
    video_acked: Path
    client_buffer: Path

    @classmethod
    def in_directory(cls, directory: Union[str, Path]) -> "ArchiveDay":
        directory = Path(directory)
        return cls(
            directory=directory,
            video_sent=directory / "video_sent.csv",
            video_acked=directory / "video_acked.csv",
            client_buffer=directory / "client_buffer.csv",
        )


def write_archive_day(
    telemetry: TelemetryLog, directory: Union[str, Path]
) -> ArchiveDay:
    """Write one day of telemetry as the three-table CSV archive.

    Each table is rendered in memory and atomically published through
    :func:`repro.atomio.atomic_write_bytes`: a crash mid-write leaves
    either the previous day file or the complete new one, never a
    half-written table.  The bytes are identical to a plain
    ``open(..., "w", newline="")`` write (the csv module's ``\\r\\n``
    terminators pass through untranslated).
    """
    day = ArchiveDay.in_directory(directory)
    day.directory.mkdir(parents=True, exist_ok=True)

    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=_SENT_COLUMNS)
    writer.writeheader()
    for record in telemetry.video_sent:
        writer.writerow(record.to_dict())
    atomic_write_bytes(day.video_sent, buffer.getvalue().encode("utf-8"))

    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=_ACKED_COLUMNS)
    writer.writeheader()
    for record in telemetry.video_acked:
        writer.writerow(record.to_dict())
    atomic_write_bytes(day.video_acked, buffer.getvalue().encode("utf-8"))

    buffer = io.StringIO(newline="")
    writer = csv.DictWriter(buffer, fieldnames=_BUFFER_COLUMNS)
    writer.writeheader()
    for record in telemetry.client_buffer:
        writer.writerow(record.to_dict())
    atomic_write_bytes(day.client_buffer, buffer.getvalue().encode("utf-8"))

    return day


class ArchiveAppender:
    """Incremental (open-once) writer for the three archive tables.

    Batch runs buffer a full :class:`TelemetryLog` and call
    :func:`write_archive_day` at the end; an open-ended fleet run cannot —
    that buffer grows without bound.  The appender keeps each CSV open,
    appends rows as sessions commit, and flushes per commit, so the daily
    open-data archive streams to disk at O(1) memory.

    Crash-safe cooperation with the fleet checkpoint: :meth:`offsets`
    reports the current byte position of every table (after a flush), the
    checkpoint records those positions, and on resume
    :meth:`truncate_to` discards any rows appended after the last durable
    checkpoint — so the archive never contains rows from uncommitted
    sessions, and a killed+resumed run produces byte-identical CSVs.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.day = ArchiveDay.in_directory(directory)
        self.day.directory.mkdir(parents=True, exist_ok=True)
        self._files = {}
        self._writers = {}
        for name, path, columns in self._tables():
            fresh = not path.exists() or path.stat().st_size == 0
            f = open(path, "a", newline="")
            # Append mode leaves the reported position implementation-
            # defined until the first write; pin it to the end so
            # ``offsets()`` is meaningful before any append.
            f.seek(0, os.SEEK_END)
            self._files[name] = f
            writer = csv.DictWriter(f, fieldnames=columns)
            self._writers[name] = writer
            if fresh:
                writer.writeheader()
        self.flush()

    def _tables(self) -> List[Tuple[str, Path, List[str]]]:
        return [
            ("video_sent", self.day.video_sent, _SENT_COLUMNS),
            ("video_acked", self.day.video_acked, _ACKED_COLUMNS),
            ("client_buffer", self.day.client_buffer, _BUFFER_COLUMNS),
        ]

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, telemetry: TelemetryLog) -> None:
        """Append one batch of rows (typically one committed session)."""
        for record in telemetry.video_sent:
            self._writers["video_sent"].writerow(record.to_dict())
        for record in telemetry.video_acked:
            self._writers["video_acked"].writerow(record.to_dict())
        for record in telemetry.client_buffer:
            self._writers["client_buffer"].writerow(record.to_dict())

    def flush(self, sync: bool = False) -> None:
        """Flush buffered rows; ``sync=True`` additionally fsyncs (called
        before a checkpoint records the offsets as durable)."""
        for _, f in sorted(self._files.items()):
            f.flush()
            if sync:
                os.fsync(f.fileno())

    def offsets(self) -> Dict[str, int]:
        """Current byte position of every table (flushes first)."""
        self.flush()
        return {
            name: self._files[name].tell()
            for name in sorted(self._files)
        }

    # ------------------------------------------------------------------
    # Resume support
    # ------------------------------------------------------------------
    def truncate_to(self, offsets: Dict[str, int]) -> None:
        """Discard everything after ``offsets`` (rows from sessions that
        were appended but never checkpointed before a crash)."""
        for name in sorted(self._files):
            if name not in offsets:
                raise ValueError(f"no stored offset for table {name!r}")
            f = self._files[name]
            f.flush()
            f.truncate(int(offsets[name]))
            f.seek(0, os.SEEK_END)

    def reset(self) -> None:
        """Roll every table back to empty-with-header (fresh-start resume).

        Recovery path for a crash that predates the first durable
        checkpoint: there are no stored offsets to :meth:`truncate_to`,
        so every appended row is uncommitted.  The result is
        byte-identical to a freshly created archive.
        """
        for name, _path, _columns in self._tables():
            f = self._files[name]
            f.flush()
            f.truncate(0)
            f.seek(0)
            self._writers[name].writeheader()
        self.flush()

    # ------------------------------------------------------------------
    # Streaming reads (the continual-retraining consumer)
    # ------------------------------------------------------------------
    def read_slice(
        self,
        start_offsets: Dict[str, int],
        end_offsets: Optional[Dict[str, int]] = None,
    ) -> TelemetryLog:
        """Rows appended between two recorded :meth:`offsets` snapshots.

        Flushes first so everything appended so far is visible; omitting
        ``end_offsets`` reads through the current end of each table.
        """
        self.flush()
        return read_telemetry_slice(
            self.day.directory, start_offsets, end_offsets
        )

    def reconstruct_streams(
        self,
        start_offsets: Dict[str, int],
        end_offsets: Optional[Dict[str, int]] = None,
    ) -> "List[StreamResult]":
        """Training streams for one byte-range window of the archive.

        The incremental counterpart of
        :func:`reconstruct_training_streams`: the continual retrainer records
        :meth:`offsets` at each simulated-day boundary and consumes exactly
        the rows committed during that day.
        """
        return reconstruct_training_streams(
            self.read_slice(start_offsets, end_offsets)
        )

    def close(self) -> None:
        for _, f in sorted(self._files.items()):
            f.flush()
            f.close()
        self._files = {}
        self._writers = {}

    def __enter__(self) -> "ArchiveAppender":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _require_columns(path: Path, header: List[str], expected: List[str]) -> None:
    if header != expected:
        raise ValueError(
            f"{path}: unexpected columns {header}; expected {expected}"
        )


def load_archive_day(directory: Union[str, Path]) -> TelemetryLog:
    """Load one day's archive back into a :class:`TelemetryLog`."""
    day = ArchiveDay.in_directory(directory)
    for path in (day.video_sent, day.video_acked, day.client_buffer):
        if not path.exists():
            raise FileNotFoundError(f"missing archive table: {path}")
    telemetry = TelemetryLog()

    with open(day.video_sent, newline="") as f:
        reader = csv.DictReader(f)
        _require_columns(day.video_sent, reader.fieldnames, _SENT_COLUMNS)
        for row in reader:
            telemetry.video_sent.append(
                VideoSentRecord(
                    time=float(row["time"]),
                    stream_id=int(row["stream_id"]),
                    expt_id=int(row["expt_id"]),
                    chunk_index=int(row["chunk_index"]),
                    size=float(row["size"]),
                    ssim_index=float(row["ssim_index"]),
                    cwnd=float(row["cwnd"]),
                    in_flight=float(row["in_flight"]),
                    min_rtt=float(row["min_rtt"]),
                    rtt=float(row["rtt"]),
                    delivery_rate=float(row["delivery_rate"]),
                )
            )

    with open(day.video_acked, newline="") as f:
        reader = csv.DictReader(f)
        _require_columns(day.video_acked, reader.fieldnames, _ACKED_COLUMNS)
        for row in reader:
            telemetry.video_acked.append(
                VideoAckedRecord(
                    time=float(row["time"]),
                    stream_id=int(row["stream_id"]),
                    expt_id=int(row["expt_id"]),
                    chunk_index=int(row["chunk_index"]),
                )
            )

    with open(day.client_buffer, newline="") as f:
        reader = csv.DictReader(f)
        _require_columns(day.client_buffer, reader.fieldnames, _BUFFER_COLUMNS)
        for row in reader:
            telemetry.client_buffer.append(
                ClientBufferRecord(
                    time=float(row["time"]),
                    stream_id=int(row["stream_id"]),
                    expt_id=int(row["expt_id"]),
                    event=BufferEvent(row["event"]),
                    buffer=float(row["buffer"]),
                    cum_rebuf=float(row["cum_rebuf"]),
                )
            )
    return telemetry


@dataclass
class ArchivedStream:
    """Per-stream view reconstructed from the archive tables."""

    stream_id: int
    expt_id: int
    chunk_transmission_times: Dict[int, float]
    chunk_sizes: Dict[int, float]
    chunk_ssim_indices: Dict[int, float]
    total_stall_s: float

    @property
    def n_chunks_acked(self) -> int:
        return len(self.chunk_transmission_times)

    def observed_throughputs_bps(self) -> List[float]:
        return [
            self.chunk_sizes[i] * 8.0 / t
            for i, t in self.chunk_transmission_times.items()
            if t > 0 and i in self.chunk_sizes
        ]


def reconstruct_streams(telemetry: TelemetryLog) -> Dict[int, ArchivedStream]:
    """The analyst's join: sent ⋈ acked per stream, plus stall totals.

    Robust to the row-ordering hazards of a streamed (or sharded) archive,
    where tables are appended per committed session and a real deployment's
    collectors may interleave or drop rows:

    * ``video_acked`` rows may arrive in any order — the join keys on
      ``(stream_id, chunk_index)``, and the result is independent of row
      order;
    * duplicate acks for one chunk keep the **earliest** ack time (the
      first complete delivery; retransmitted acks don't shrink the
      measured transmission time);
    * acks whose matching ``video_sent`` row is missing, or which are
      timestamped *before* their send (clock skew / corruption), are
      dropped rather than producing negative transmission times.
    """
    sent_by_key: Dict[Tuple[int, int], VideoSentRecord] = {}
    expt_by_stream: Dict[int, int] = {}
    for record in telemetry.video_sent:
        sent_by_key[(record.stream_id, record.chunk_index)] = record
        expt_by_stream[record.stream_id] = record.expt_id

    streams: Dict[int, ArchivedStream] = {}

    def stream_for(stream_id: int) -> ArchivedStream:
        if stream_id not in streams:
            streams[stream_id] = ArchivedStream(
                stream_id=stream_id,
                expt_id=expt_by_stream.get(stream_id, -1),
                chunk_transmission_times={},
                chunk_sizes={},
                chunk_ssim_indices={},
                total_stall_s=0.0,
            )
        return streams[stream_id]

    for acked in telemetry.video_acked:
        sent = sent_by_key.get((acked.stream_id, acked.chunk_index))
        if sent is None:
            continue  # chunk never fully delivered before the viewer left
        transmission = acked.time - sent.time
        if transmission < 0:
            continue  # misordered/corrupt row: acked before it was sent
        stream = stream_for(acked.stream_id)
        previous = stream.chunk_transmission_times.get(acked.chunk_index)
        if previous is not None and previous <= transmission:
            continue  # duplicate ack: keep the earliest complete delivery
        stream.chunk_transmission_times[acked.chunk_index] = transmission
        stream.chunk_sizes[acked.chunk_index] = sent.size
        stream.chunk_ssim_indices[acked.chunk_index] = sent.ssim_index

    for record in telemetry.client_buffer:
        stream = stream_for(record.stream_id)
        stream.total_stall_s = max(stream.total_stall_s, record.cum_rebuf)

    return streams


# ---------------------------------------------------------------------------
# Byte-range reads (crash-safe streaming consumers)
# ---------------------------------------------------------------------------
def _parse_slice_rows(
    path: Path, start: int, end: Optional[int], n_columns: int
) -> List[List[str]]:
    """CSV rows in ``[start, end)`` of one table file.

    Offsets must come from :meth:`ArchiveAppender.offsets` (recorded after a
    flush), which always land on row boundaries; a slice that starts at 0
    would include the header, so callers record their first offset right
    after the appender writes it.
    """
    if not path.exists():
        raise FileNotFoundError(f"missing archive table: {path}")
    with open(path, "rb") as f:
        f.seek(int(start))
        data = f.read() if end is None else f.read(max(int(end) - int(start), 0))
    rows: List[List[str]] = []
    for row in csv.reader(io.StringIO(data.decode("utf-8"), newline="")):
        if not row:
            continue
        if len(row) != n_columns:
            raise ValueError(
                f"{path}: slice [{start}, {end}) is not row-aligned "
                f"(got {len(row)} fields, expected {n_columns})"
            )
        rows.append(row)
    return rows


def read_telemetry_slice(
    directory: Union[str, Path],
    start_offsets: Dict[str, int],
    end_offsets: Optional[Dict[str, int]] = None,
) -> TelemetryLog:
    """Load the archive rows appended between two byte-offset snapshots.

    This is what lets a consumer (the continual TTP retrainer) process the
    archive *as it is written* at constant memory: the fleet checkpoint
    records :meth:`ArchiveAppender.offsets` at each simulated-day boundary,
    and the day's telemetry is exactly the rows between consecutive
    snapshots — no timestamps needed (telemetry times are session-relative)
    and no re-reading of earlier days.
    """
    day = ArchiveDay.in_directory(directory)
    tables = {
        "video_sent": (day.video_sent, _SENT_COLUMNS),
        "video_acked": (day.video_acked, _ACKED_COLUMNS),
        "client_buffer": (day.client_buffer, _BUFFER_COLUMNS),
    }
    telemetry = TelemetryLog()
    for name in sorted(tables):
        path, columns = tables[name]
        if name not in start_offsets:
            raise ValueError(f"no start offset for table {name!r}")
        end = None if end_offsets is None else int(end_offsets[name])
        rows = _parse_slice_rows(path, start_offsets[name], end, len(columns))
        if name == "video_sent":
            for row in rows:
                telemetry.video_sent.append(
                    VideoSentRecord(
                        time=float(row[0]),
                        stream_id=int(row[1]),
                        expt_id=int(row[2]),
                        chunk_index=int(row[3]),
                        size=float(row[4]),
                        ssim_index=float(row[5]),
                        cwnd=float(row[6]),
                        in_flight=float(row[7]),
                        min_rtt=float(row[8]),
                        rtt=float(row[9]),
                        delivery_rate=float(row[10]),
                    )
                )
        elif name == "video_acked":
            for row in rows:
                telemetry.video_acked.append(
                    VideoAckedRecord(
                        time=float(row[0]),
                        stream_id=int(row[1]),
                        expt_id=int(row[2]),
                        chunk_index=int(row[3]),
                    )
                )
        else:
            for row in rows:
                telemetry.client_buffer.append(
                    ClientBufferRecord(
                        time=float(row[0]),
                        stream_id=int(row[1]),
                        expt_id=int(row[2]),
                        event=BufferEvent(row[3]),
                        buffer=float(row[4]),
                        cum_rebuf=float(row[5]),
                    )
                )
    return telemetry


# ---------------------------------------------------------------------------
# Training-stream reconstruction (archive rows -> StreamResult)
# ---------------------------------------------------------------------------
def reconstruct_training_streams(
    telemetry: TelemetryLog,
) -> "List[StreamResult]":
    """Rebuild full :class:`~repro.streaming.session.StreamResult` objects
    — ordered chunk records with their ``tcp_info`` snapshots — from the
    archive tables, ready for :func:`repro.core.train.build_ttp_datasets`.

    This is the in-situ training data path of §4.3: the TTP learns from
    what the *deployment logged*, not from simulator internals.  The join
    follows the same tolerance rules as :func:`reconstruct_streams` (any
    row order, earliest duplicate ack wins, orphan and time-travelling acks
    dropped), so the reconstructed training set is a pure function of the
    archive's row *set*.  Fields the archive cannot recover are left
    neutral: ``rung`` is -1 (the ladder index never reaches the archive)
    and per-stream playback accounting stays at its defaults — neither is
    consumed by feature extraction, labeling, or tail calibration.
    """
    from repro.media import ssim_index_to_db
    from repro.net.tcp import TcpInfo
    from repro.streaming.session import StreamResult

    sent_by_key: Dict[Tuple[int, int], VideoSentRecord] = {}
    for record in telemetry.video_sent:
        sent_by_key[(record.stream_id, record.chunk_index)] = record

    ack_times: Dict[Tuple[int, int], float] = {}
    for acked in telemetry.video_acked:
        key = (acked.stream_id, acked.chunk_index)
        sent = sent_by_key.get(key)
        if sent is None:
            continue  # chunk never fully delivered before the viewer left
        if acked.time - sent.time < 0:
            continue  # misordered/corrupt row: acked before it was sent
        previous = ack_times.get(key)
        if previous is not None and previous <= acked.time:
            continue  # duplicate ack: keep the earliest complete delivery
        ack_times[key] = acked.time

    from repro.abr.base import ChunkRecord

    records_by_stream: Dict[int, List[ChunkRecord]] = {}
    expt_by_stream: Dict[int, int] = {}
    for (stream_id, chunk_index), ack_time in sorted(ack_times.items()):
        sent = sent_by_key[(stream_id, chunk_index)]
        expt_by_stream[stream_id] = sent.expt_id
        records_by_stream.setdefault(stream_id, []).append(
            ChunkRecord(
                chunk_index=chunk_index,
                rung=-1,
                size_bytes=sent.size,
                ssim_db=ssim_index_to_db(sent.ssim_index),
                transmission_time=ack_time - sent.time,
                info_at_send=TcpInfo(
                    cwnd=sent.cwnd,
                    in_flight=sent.in_flight,
                    min_rtt=sent.min_rtt,
                    rtt=sent.rtt,
                    delivery_rate=sent.delivery_rate,
                ),
                send_time=sent.time,
            )
        )

    return [
        StreamResult(
            stream_id,
            f"expt_{expt_by_stream[stream_id]}",
            records=records,
        )
        for stream_id, records in sorted(records_by_stream.items())
    ]

"""Writing and reading the daily open-data archive (Appendix B).

Each archive day is a directory of three CSV files:

* ``video_sent.csv`` — time, stream_id, expt_id, chunk_index, size,
  ssim_index, cwnd, in_flight, min_rtt, rtt, delivery_rate;
* ``video_acked.csv`` — time, stream_id, expt_id, chunk_index;
* ``client_buffer.csv`` — time, stream_id, expt_id, event, buffer,
  cum_rebuf.

The column sets match the fields the paper describes for the public data
(IP addresses and user ids are redacted in the real archive; the simulator
never produces them). :func:`reconstruct_streams` performs the join a
downstream analyst performs: sent ⋈ acked on (stream_id, chunk_index)
recovers per-chunk transmission times, and ``client_buffer`` yields stall
accounting.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.streaming.telemetry import (
    BufferEvent,
    ClientBufferRecord,
    TelemetryLog,
    VideoAckedRecord,
    VideoSentRecord,
)

_SENT_COLUMNS = [
    "time", "stream_id", "expt_id", "chunk_index", "size", "ssim_index",
    "cwnd", "in_flight", "min_rtt", "rtt", "delivery_rate",
]
_ACKED_COLUMNS = ["time", "stream_id", "expt_id", "chunk_index"]
_BUFFER_COLUMNS = [
    "time", "stream_id", "expt_id", "event", "buffer", "cum_rebuf",
]


@dataclass(frozen=True)
class ArchiveDay:
    """Paths of one day's archive files."""

    directory: Path
    video_sent: Path
    video_acked: Path
    client_buffer: Path

    @classmethod
    def in_directory(cls, directory: Union[str, Path]) -> "ArchiveDay":
        directory = Path(directory)
        return cls(
            directory=directory,
            video_sent=directory / "video_sent.csv",
            video_acked=directory / "video_acked.csv",
            client_buffer=directory / "client_buffer.csv",
        )


def write_archive_day(
    telemetry: TelemetryLog, directory: Union[str, Path]
) -> ArchiveDay:
    """Write one day of telemetry as the three-table CSV archive."""
    day = ArchiveDay.in_directory(directory)
    day.directory.mkdir(parents=True, exist_ok=True)

    with open(day.video_sent, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_SENT_COLUMNS)
        writer.writeheader()
        for record in telemetry.video_sent:
            writer.writerow(record.to_dict())

    with open(day.video_acked, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_ACKED_COLUMNS)
        writer.writeheader()
        for record in telemetry.video_acked:
            writer.writerow(record.to_dict())

    with open(day.client_buffer, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=_BUFFER_COLUMNS)
        writer.writeheader()
        for record in telemetry.client_buffer:
            writer.writerow(record.to_dict())

    return day


def _require_columns(path: Path, header: List[str], expected: List[str]) -> None:
    if header != expected:
        raise ValueError(
            f"{path}: unexpected columns {header}; expected {expected}"
        )


def load_archive_day(directory: Union[str, Path]) -> TelemetryLog:
    """Load one day's archive back into a :class:`TelemetryLog`."""
    day = ArchiveDay.in_directory(directory)
    for path in (day.video_sent, day.video_acked, day.client_buffer):
        if not path.exists():
            raise FileNotFoundError(f"missing archive table: {path}")
    telemetry = TelemetryLog()

    with open(day.video_sent, newline="") as f:
        reader = csv.DictReader(f)
        _require_columns(day.video_sent, reader.fieldnames, _SENT_COLUMNS)
        for row in reader:
            telemetry.video_sent.append(
                VideoSentRecord(
                    time=float(row["time"]),
                    stream_id=int(row["stream_id"]),
                    expt_id=int(row["expt_id"]),
                    chunk_index=int(row["chunk_index"]),
                    size=float(row["size"]),
                    ssim_index=float(row["ssim_index"]),
                    cwnd=float(row["cwnd"]),
                    in_flight=float(row["in_flight"]),
                    min_rtt=float(row["min_rtt"]),
                    rtt=float(row["rtt"]),
                    delivery_rate=float(row["delivery_rate"]),
                )
            )

    with open(day.video_acked, newline="") as f:
        reader = csv.DictReader(f)
        _require_columns(day.video_acked, reader.fieldnames, _ACKED_COLUMNS)
        for row in reader:
            telemetry.video_acked.append(
                VideoAckedRecord(
                    time=float(row["time"]),
                    stream_id=int(row["stream_id"]),
                    expt_id=int(row["expt_id"]),
                    chunk_index=int(row["chunk_index"]),
                )
            )

    with open(day.client_buffer, newline="") as f:
        reader = csv.DictReader(f)
        _require_columns(day.client_buffer, reader.fieldnames, _BUFFER_COLUMNS)
        for row in reader:
            telemetry.client_buffer.append(
                ClientBufferRecord(
                    time=float(row["time"]),
                    stream_id=int(row["stream_id"]),
                    expt_id=int(row["expt_id"]),
                    event=BufferEvent(row["event"]),
                    buffer=float(row["buffer"]),
                    cum_rebuf=float(row["cum_rebuf"]),
                )
            )
    return telemetry


@dataclass
class ArchivedStream:
    """Per-stream view reconstructed from the archive tables."""

    stream_id: int
    expt_id: int
    chunk_transmission_times: Dict[int, float]
    chunk_sizes: Dict[int, float]
    chunk_ssim_indices: Dict[int, float]
    total_stall_s: float

    @property
    def n_chunks_acked(self) -> int:
        return len(self.chunk_transmission_times)

    def observed_throughputs_bps(self) -> List[float]:
        return [
            self.chunk_sizes[i] * 8.0 / t
            for i, t in self.chunk_transmission_times.items()
            if t > 0 and i in self.chunk_sizes
        ]


def reconstruct_streams(telemetry: TelemetryLog) -> Dict[int, ArchivedStream]:
    """The analyst's join: sent ⋈ acked per stream, plus stall totals."""
    sent_by_key: Dict[Tuple[int, int], VideoSentRecord] = {}
    expt_by_stream: Dict[int, int] = {}
    for record in telemetry.video_sent:
        sent_by_key[(record.stream_id, record.chunk_index)] = record
        expt_by_stream[record.stream_id] = record.expt_id

    streams: Dict[int, ArchivedStream] = {}

    def stream_for(stream_id: int) -> ArchivedStream:
        if stream_id not in streams:
            streams[stream_id] = ArchivedStream(
                stream_id=stream_id,
                expt_id=expt_by_stream.get(stream_id, -1),
                chunk_transmission_times={},
                chunk_sizes={},
                chunk_ssim_indices={},
                total_stall_s=0.0,
            )
        return streams[stream_id]

    for acked in telemetry.video_acked:
        sent = sent_by_key.get((acked.stream_id, acked.chunk_index))
        if sent is None:
            continue  # chunk never fully delivered before the viewer left
        stream = stream_for(acked.stream_id)
        stream.chunk_transmission_times[acked.chunk_index] = (
            acked.time - sent.time
        )
        stream.chunk_sizes[acked.chunk_index] = sent.size
        stream.chunk_ssim_indices[acked.chunk_index] = sent.ssim_index

    for record in telemetry.client_buffer:
        stream = stream_for(record.stream_id)
        stream.total_stall_s = max(stream.total_stall_s, record.cum_rebuf)

    return streams

"""Shared-bottleneck cells and an edge-cache tier for correlated-contention
RCTs (ROADMAP item 4).

Puffer's deployment served sessions that share access networks and CDN
edges, but the private-link trial harness gives every simulated session its
own bottleneck — flash crowds raise arrival *rates* without ever creating
correlated network events.  :mod:`repro.edge` closes that gap:

* :mod:`repro.edge.cells` — a seeded partition of fleet arrivals into
  *cells*.  Sessions inside a cell share an edge bottleneck and cache;
  cells are independent, making :func:`repro.edge.engine.run_cell` the
  pure, fork-safe parallelism unit (a declared purity root) so the fleet
  runner, ``ExactSum`` sinks, checkpoints and ``kill -9`` resume keep
  working byte-identically with cells as the shard key.
* :mod:`repro.edge.fairshare` — exact (rational-arithmetic) weighted
  max-min water-filling; shares conserve capacity and are permutation
  invariant in session order.
* :mod:`repro.edge.transport` — the per-session fluid flow that stands in
  for a private TCP connection when a session's downloads are paced by
  externally allocated rates.
* :mod:`repro.edge.cache` — a deterministic per-cell LRU over
  ``(channel, chunk-index, quality)``; hits serve in one RTT, misses
  traverse the origin path.
* :mod:`repro.edge.zipf` — seeded Zipf channel popularity with per-cell
  rank permutations (domain-separated tuple seeds).
* :mod:`repro.edge.engine` — the event-driven co-simulation advancing a
  cell's active downloads over a shared :class:`repro.net.link.LinkModel`,
  re-solving fair shares at join/leave/epoch boundaries.  Size-1 cells
  dispatch to the private-link :func:`repro.experiment.harness.run_session`
  and are bit-identical to it.
"""

from repro.edge.cache import EdgeCache
from repro.edge.cells import Cell, EdgeConfig, cell_covering, cells_for
from repro.edge.engine import CellResult, run_cell
from repro.edge.fairshare import max_min_shares
from repro.edge.transport import FluidFlow
from repro.edge.zipf import ZipfChannelPopularity, zipf_weights

__all__ = [
    "Cell",
    "CellResult",
    "EdgeCache",
    "EdgeConfig",
    "FluidFlow",
    "ZipfChannelPopularity",
    "cell_covering",
    "cells_for",
    "max_min_shares",
    "run_cell",
    "zipf_weights",
]

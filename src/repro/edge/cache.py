"""Deterministic per-cell LRU edge cache.

Keys are ``(channel, chunk_index, rung)`` — the identity of one encoded
chunk version, matching what a CDN edge actually stores (each quality of
each segment is a distinct object).  The cache is plain LRU over an
``OrderedDict``; all state transitions are pure functions of the lookup
sequence, so a resumed cell replays to the identical cache state.

A capacity of zero disables the cache (every lookup misses, nothing is
stored) — the configuration the degenerate-equivalence tests run under.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

ChunkKey = Tuple[Optional[str], int, int]
"""``(channel_name, chunk_index, rung)``."""


class EdgeCache:
    """LRU cache over chunk versions, counting hits and misses."""

    def __init__(self, capacity_chunks: int) -> None:
        if capacity_chunks < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_chunks = int(capacity_chunks)
        self._entries: "OrderedDict[ChunkKey, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: ChunkKey) -> bool:
        return key in self._entries

    def lookup(self, key: ChunkKey) -> bool:
        """Probe the cache; a hit refreshes the entry's recency.

        Counts the probe either way.  Misses do *not* insert — call
        :meth:`insert` once the origin fetch completes (an edge admits an
        object only after it has actually arrived).
        """
        if self.capacity_chunks == 0:
            self.misses += 1
            return False
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, key: ChunkKey) -> None:
        """Admit an object, evicting the least recently used past capacity."""
        if self.capacity_chunks == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = None
        while len(self._entries) > self.capacity_chunks:
            self._entries.popitem(last=False)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

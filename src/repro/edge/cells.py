"""Edge cells: the seeded partition of fleet arrivals into contention groups.

A *cell* models one shared edge — an access network plus its CDN edge
cache.  Consecutive fleet arrivals are grouped into cells (viewers who show
up together at the same edge), cell sizes are drawn from a configurable
distribution, and every per-cell random quantity (size, shared-link
capacity, local channel popularity) is keyed on a domain-separated tuple
seed ``(edge_seed, STREAM, cell_id)``.  Cell boundaries are therefore a
pure function of :class:`EdgeConfig` — a resumed run recomputes the exact
partition and skips the cells already committed, the same contract the
workload generator honours for arrivals.

Sessions inside a cell are coupled (they share the bottleneck and cache);
cells are independent — which is what makes
:func:`repro.edge.engine.run_cell` the fork-safe parallelism unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.edge.zipf import ZipfChannelPopularity
from repro.net.link import HeavyTailLink, LinkModel

_CELL_SIZE_STREAM = 0xCE11
"""Domain separation for per-cell size draws."""

_CELL_LINK_STREAM = 0xB077
"""Domain separation for the shared bottleneck's capacity process."""

_CELL_SIZE_DISTS = ("fixed", "geometric")


@dataclass(frozen=True)
class EdgeConfig:
    """Shape of the edge tier: cells, shared bottleneck, cache.

    ``mean_cell_sessions = 1`` with ``cell_size_dist = "fixed"`` makes
    every cell a singleton — the degenerate configuration whose fleet
    dumps are byte-identical to the private-link executor.
    """

    mean_cell_sessions: float = 4.0
    """Mean sessions per cell (exact size under ``"fixed"``)."""

    cell_size_dist: str = "geometric"
    """``"fixed"`` (every cell ``round(mean)``) or ``"geometric"``
    (support ``>= 1``, mean ``mean_cell_sessions``)."""

    cell_capacity_bps: float = 60e6
    """Median capacity of a cell's shared bottleneck."""

    capacity_log_sigma: float = 0.5
    """Log-normal spread of shared capacity across cells."""

    capacity_sigma: float = 0.25
    """Within-cell capacity fluctuation (OU std of the shared link)."""

    capacity_fade_rate: float = 0.002
    """Per-epoch probability the shared link enters a deep fade."""

    zipf_alpha: float = 1.1
    """Channel-popularity skew inside a cell (0 = uniform)."""

    cache_chunks: int = 256
    """Per-cell LRU capacity in chunk versions; 0 disables the cache."""

    cubic_weight: float = 1.0
    """Fair-share weight of CUBIC flows relative to BBR flows (1 = neutral;
    >1 models CUBIC's queue-filling aggressiveness at a shared FIFO)."""

    seed: int = 0
    """Seed of the edge tier (independent of trial and workload seeds)."""

    def __post_init__(self) -> None:
        if self.mean_cell_sessions < 1.0:
            raise ValueError("mean cell size must be >= 1")
        if self.cell_size_dist not in _CELL_SIZE_DISTS:
            raise ValueError(
                f"cell_size_dist must be one of {_CELL_SIZE_DISTS}"
            )
        if self.cell_capacity_bps <= 0:
            raise ValueError("cell capacity must be positive")
        if self.capacity_log_sigma < 0 or self.capacity_sigma < 0:
            raise ValueError("capacity spreads must be non-negative")
        if not 0.0 <= self.capacity_fade_rate <= 1.0:
            raise ValueError("capacity_fade_rate must lie in [0, 1]")
        if self.zipf_alpha < 0:
            raise ValueError("zipf_alpha must be non-negative")
        if self.cache_chunks < 0:
            raise ValueError("cache_chunks must be non-negative")
        if self.cubic_weight <= 0:
            raise ValueError("cubic_weight must be positive")

    # ------------------------------------------------------------------
    # Per-cell seeded quantities
    # ------------------------------------------------------------------
    def cell_size(self, cell_id: int) -> int:
        """Number of sessions in ``cell_id`` (pure function of config)."""
        if cell_id < 0:
            raise ValueError("cell_id must be non-negative")
        if self.cell_size_dist == "fixed":
            return max(1, int(round(self.mean_cell_sessions)))
        rng = np.random.default_rng(
            (self.seed, _CELL_SIZE_STREAM, cell_id)
        )
        return int(rng.geometric(1.0 / self.mean_cell_sessions))

    def shared_link(self, cell_id: int) -> LinkModel:
        """The cell's shared bottleneck capacity process.

        A :class:`~repro.net.link.HeavyTailLink` whose base capacity is
        drawn log-normally across cells — some edges are congested, most
        are comfortable — with the cell's own fade process on top.
        """
        rng = np.random.default_rng((self.seed, _CELL_LINK_STREAM, cell_id))
        base = float(
            self.cell_capacity_bps
            * np.exp(rng.normal(0.0, self.capacity_log_sigma))
        )
        return HeavyTailLink(
            base_bps=base,
            sigma=self.capacity_sigma,
            fade_rate=self.capacity_fade_rate,
            seed=(self.seed, _CELL_LINK_STREAM, cell_id, 1),
        )

    def popularity(
        self, cell_id: int, n_channels: int
    ) -> ZipfChannelPopularity:
        """The cell's local channel-popularity distribution."""
        return ZipfChannelPopularity(
            n_channels=n_channels,
            alpha=self.zipf_alpha,
            seed=self.seed,
            cell_id=cell_id,
        )

    # ------------------------------------------------------------------
    # Serialization (checkpoint fingerprinting and CLI resume)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "mean_cell_sessions": self.mean_cell_sessions,
            "cell_size_dist": self.cell_size_dist,
            "cell_capacity_bps": self.cell_capacity_bps,
            "capacity_log_sigma": self.capacity_log_sigma,
            "capacity_sigma": self.capacity_sigma,
            "capacity_fade_rate": self.capacity_fade_rate,
            "zipf_alpha": self.zipf_alpha,
            "cache_chunks": self.cache_chunks,
            "cubic_weight": self.cubic_weight,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EdgeConfig":
        return cls(
            mean_cell_sessions=float(data["mean_cell_sessions"]),
            cell_size_dist=str(data["cell_size_dist"]),
            cell_capacity_bps=float(data["cell_capacity_bps"]),
            capacity_log_sigma=float(data["capacity_log_sigma"]),
            capacity_sigma=float(data["capacity_sigma"]),
            capacity_fade_rate=float(data["capacity_fade_rate"]),
            zipf_alpha=float(data["zipf_alpha"]),
            cache_chunks=int(data["cache_chunks"]),
            cubic_weight=float(data["cubic_weight"]),
            seed=int(data["seed"]),
        )


@dataclass(frozen=True)
class Cell:
    """One edge cell: a contiguous block of session ids."""

    cell_id: int
    start_session_id: int
    size: int

    def __post_init__(self) -> None:
        if self.cell_id < 0 or self.start_session_id < 0:
            raise ValueError("cell ids and session ids are non-negative")
        if self.size < 1:
            raise ValueError("a cell holds at least one session")

    @property
    def end_session_id(self) -> int:
        """One past the last session id (half-open, like ranges)."""
        return self.start_session_id + self.size

    @property
    def session_ids(self) -> range:
        return range(self.start_session_id, self.end_session_id)


def iter_cells(config: EdgeConfig) -> Iterator[Cell]:
    """Endless stream of cells partitioning session ids ``0, 1, 2, ...``."""
    cell_id = 0
    start = 0
    while True:
        size = config.cell_size(cell_id)
        yield Cell(cell_id=cell_id, start_session_id=start, size=size)
        start += size
        cell_id += 1


def cells_for(config: EdgeConfig, n_sessions: int) -> List[Cell]:
    """Cells covering sessions ``[0, n_sessions)``.

    The last cell is truncated at the fleet's actual session count (its
    seeded draws — shared link, popularity — depend only on ``cell_id``,
    so truncation does not perturb any other cell).
    """
    if n_sessions < 0:
        raise ValueError("n_sessions must be non-negative")
    out: List[Cell] = []
    for cell in iter_cells(config):
        if cell.start_session_id >= n_sessions:
            break
        if cell.end_session_id > n_sessions:
            out.append(
                Cell(
                    cell_id=cell.cell_id,
                    start_session_id=cell.start_session_id,
                    size=n_sessions - cell.start_session_id,
                )
            )
            break
        out.append(cell)
    return out


def cell_covering(config: EdgeConfig, session_id: int) -> Cell:
    """The cell containing ``session_id`` (resume uses this to find the
    first uncommitted cell boundary)."""
    if session_id < 0:
        raise ValueError("session_id must be non-negative")
    for cell in iter_cells(config):
        if cell.end_session_id > session_id:
            return cell
    raise AssertionError("unreachable: iter_cells is endless")

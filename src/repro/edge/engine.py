"""The cell co-simulation: N session machines over one shared bottleneck.

:func:`run_cell` is the edge tier's pure unit of work, the analogue of
:func:`repro.experiment.harness.run_session` with a cell as the grain.  It
is a pure function of ``(specs, config, cell, edge, offsets)`` — every
random draw inside is keyed on domain-separated tuple seeds derived from
those arguments — and a declared purity root (``purity-roots.json``), which
is what lets the fleet runner fork it across workers and resume it after
``kill -9`` byte-identically.

Two execution paths:

* **degenerate** (``cell.size == 1``) — dispatches directly to
  :func:`run_session`: one viewer alone at an edge has a private
  bottleneck, no contention, and a cache shared with nobody, so the
  private-link path *is* the correct model and the results are
  bit-identical to it (the property ``tests/edge/test_degenerate_
  equivalence.py`` enforces).
* **shared** (``cell.size >= 2``) — event-driven fluid co-simulation.
  Each session runs as a :func:`~repro.experiment.harness.session_machine`
  generator; its transmit requests become fluid downloads over the cell's
  shared :class:`~repro.net.link.LinkModel`.  Active downloads advance at
  weighted max-min fair shares (:func:`repro.edge.fairshare
  .max_min_shares`), capped by each flow's private access link; shares are
  re-solved at every join, leave, and capacity-epoch boundary.  Chunk
  requests first probe the cell's LRU cache — hits serve in one RTT off
  the edge, misses traverse the origin path and are admitted on
  completion.

Time bookkeeping: each session machine keeps its own session-relative
clock (second 0 = the viewer arrives); the engine places session ``i`` at
``offsets[i]`` in cell time and converts at the boundary.  Events at equal
times resolve in session-id order, so the co-simulation is deterministic
by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro import obs, sanitizer
from repro.abr.base import AbrAlgorithm
from repro.edge.cache import ChunkKey, EdgeCache
from repro.edge.cells import Cell, EdgeConfig
from repro.edge.fairshare import max_min_shares
from repro.edge.transport import FluidFlow
from repro.edge.zipf import ZipfChannelPopularity
from repro.experiment.harness import (
    ChannelChooser,
    ConnectRequest,
    SessionMachine,
    SessionShard,
    TrialConfig,
    assign_expt_ids,
    run_session,
    session_machine,
)
from repro.experiment.schemes import SchemeSpec
from repro.media.source import Channel
from repro.net.link import LinkModel
from repro.net.tcp import TcpInfo, TransmissionResult
from repro.streaming.simulator import TransmitRequest

_COMPLETION_TOL_BYTES = 1e-6
"""A download with fewer residual bytes than this has completed (absorbs
float rounding in the fluid advance)."""

_MAX_EVENTS = 50_000_000
"""Runaway guard on the event loop, far above any real cell."""


@dataclass
class CellResult:
    """Everything one cell contributes to a fleet."""

    cell: Cell
    shards: List[SessionShard]
    cache_hits: int
    cache_misses: int
    shared: bool
    """Whether the fluid co-simulation ran (``False`` for the degenerate
    private-link dispatch)."""


class _Flow:
    """Engine-side state for one session in a shared cell.

    ``transport`` is assigned by :func:`run_cell` immediately after the
    machine's :class:`ConnectRequest` (before any other field is read),
    so it is declared non-optional.
    """

    __slots__ = (
        "session_id",
        "machine",
        "offset",
        "transport",
        "obs_ctx",
        "request",
        "start_at",
        "key",
        "remaining_bytes",
        "download_start",
        "info_at_send",
        "active",
        "done",
        "shard",
        "weight",
    )

    transport: FluidFlow

    def __init__(
        self, session_id: int, machine: SessionMachine, offset: float
    ) -> None:
        self.session_id = session_id
        self.machine = machine
        self.offset = float(offset)
        self.obs_ctx: Optional["obs.ObsContext"] = None
        self.request: Optional[TransmitRequest] = None
        self.start_at = math.inf
        self.key: Optional[ChunkKey] = None
        self.remaining_bytes = 0.0
        self.download_start = 0.0
        self.info_at_send: Optional[TcpInfo] = None
        self.active = False
        self.done = False
        self.shard: Optional[SessionShard] = None
        self.weight = 1.0


def _strict_boundary_after(
    link: LinkModel, now: float, offset: float
) -> float:
    """Next capacity boundary of ``link`` strictly after cell time ``now``.

    The link runs on a clock shifted by ``offset`` (session-relative).
    Mapping the boundary back to cell time (``offset + boundary``) can land
    at or before ``now`` through float rounding; the event loop must make
    strict progress, so re-query past the boundary until it does.
    """
    local = max(now - offset, 0.0)
    boundary = link.next_change_after(local)
    while offset + boundary <= now:
        boundary = link.next_change_after(boundary)
    return offset + boundary


def _popularity_chooser(
    popularity: ZipfChannelPopularity,
) -> ChannelChooser:
    """Channel chooser plugging the cell's Zipf popularity into the
    session machine (consumes one uniform from the session's own rng)."""

    def choose(
        rng: np.random.Generator, channels: Sequence[Channel]
    ) -> Channel:
        return channels[popularity.sample(rng)]

    return choose


def _resume(flow: _Flow, value: "FluidFlow | TransmissionResult") -> None:
    """Advance a session machine one step under its obs context.

    Stores the next pending transmit request on the flow, or the final
    shard when the machine finishes.
    """
    with obs.activate(flow.obs_ctx):
        try:
            request = flow.machine.send(value)
        except StopIteration as stop:
            flow.shard = stop.value
            flow.done = True
            flow.request = None
            flow.start_at = math.inf
            return
    assert isinstance(request, TransmitRequest)
    flow.request = request
    flow.start_at = flow.offset + request.send_at
    flow.key = (request.channel, request.chunk_index, request.rung)


@sanitizer.guarded("run_cell")
def run_cell(
    specs: Sequence[SchemeSpec],
    config: TrialConfig,
    cell: Cell,
    edge: EdgeConfig,
    offsets: Sequence[float],
    expt_ids: Optional[Mapping[str, int]] = None,
    algorithms: Optional[Mapping[str, AbrAlgorithm]] = None,
) -> CellResult:
    """Simulate one edge cell — the pure, fork-safe unit of cell-mode work.

    Parameters
    ----------
    cell:
        The cell's identity and session-id block.
    edge:
        The edge tier's configuration (bottleneck, cache, popularity).
    offsets:
        Cell-relative arrival offsets (seconds), one per session in the
        cell, aligned with ``cell.session_ids``.  The fleet runner derives
        them from the workload's arrival times; only the gaps matter.
    expt_ids / algorithms:
        As in :func:`run_session` — blinded id assignment and a per-process
        scheme-instance cache.  Scheme assignment itself stays keyed on
        ``(config.seed, session_id)``, independent of the cell partition,
        so randomization remains valid *within* every cell.
    """
    if len(offsets) != cell.size:
        raise ValueError(
            f"expected {cell.size} offsets for cell {cell.cell_id}, "
            f"got {len(offsets)}"
        )
    if any(o < 0 for o in offsets):
        raise ValueError("offsets must be non-negative")

    if cell.size == 1:
        # Degenerate cell: a private bottleneck and a cache shared with
        # nobody.  The private-link path is the exact model — dispatching
        # to it is what makes singleton-cell fleets byte-identical to the
        # classic executor.
        shard = run_session(
            specs, config, cell.start_session_id, expt_ids, algorithms
        )
        return CellResult(
            cell=cell,
            shards=[shard],
            cache_hits=0,
            cache_misses=0,
            shared=False,
        )

    if expt_ids is None:
        expt_ids = assign_expt_ids(specs, config.seed)
    if algorithms is None:
        algorithms = {spec.name: spec.build() for spec in specs}

    link = edge.shared_link(cell.cell_id)
    cache = EdgeCache(edge.cache_chunks)
    chooser = _popularity_chooser(
        edge.popularity(cell.cell_id, len(config.channels))
    )

    flows: List[_Flow] = []
    for index, session_id in enumerate(cell.session_ids):
        machine = session_machine(
            specs,
            config,
            session_id,
            expt_ids=expt_ids,
            algorithms=algorithms,
            channel_chooser=chooser,
        )
        flow = _Flow(session_id, machine, offsets[index])
        # First resume runs the machine's pre-connect setup (scheme
        # assignment, path sampling) — historically outside any obs
        # activation, and kept that way.
        connect = machine.send(None)  # type: ignore[arg-type]
        assert isinstance(connect, ConnectRequest)
        flow.obs_ctx = connect.obs_ctx
        flow.transport = FluidFlow(connect.path)
        if flow.transport.cc_name == "cubic":
            flow.weight = edge.cubic_weight
        flows.append(flow)

    # Answer the connects; each machine runs to its first transmit request
    # (or straight to completion for a zero-chunk session).
    for flow in flows:
        _resume(flow, flow.transport)

    def begin_download(flow: _Flow, now: float) -> None:
        """Start the pending request at its due time (cache probe first)."""
        request = flow.request
        assert request is not None
        if cache.lookup(flow.key):  # type: ignore[arg-type]
            # Edge hit: served from the cell cache in one RTT, never
            # touching the shared bottleneck or the origin path.
            transmission_time = flow.transport.base_rtt
            with obs.activate(flow.obs_ctx):
                if obs.ENABLED:
                    obs.counter_inc("edge.cache_hits")
                    obs.counter_inc(
                        "edge.cache_hit_bytes", float(request.size_bytes)
                    )
            info = flow.transport.tcp_info()
            flow.transport.record_download(
                request.size_bytes,
                transmission_time,
                request.send_at + transmission_time,
            )
            flow.request = None
            flow.start_at = math.inf
            _resume(
                flow,
                TransmissionResult(
                    transmission_time=transmission_time,
                    info_at_send=info,
                    rounds=1,
                ),
            )
            return
        with obs.activate(flow.obs_ctx):
            if obs.ENABLED:
                obs.counter_inc("edge.cache_misses")
        flow.remaining_bytes = float(request.size_bytes)
        flow.download_start = now
        flow.info_at_send = flow.transport.tcp_info()
        flow.transport.downloading = True
        flow.active = True

    def finish_download(flow: _Flow, now: float) -> None:
        """Complete the active download and hand the result back."""
        request = flow.request
        assert request is not None
        transmission_time = now - flow.download_start
        srtt = max(flow.transport.srtt, 1e-6)
        result = TransmissionResult(
            transmission_time=transmission_time,
            info_at_send=flow.info_at_send,  # type: ignore[arg-type]
            rounds=max(1, int(round(transmission_time / srtt))),
        )
        flow.transport.record_download(
            request.size_bytes,
            transmission_time,
            request.send_at + transmission_time,
        )
        cache.insert(flow.key)  # type: ignore[arg-type]
        flow.active = False
        flow.request = None
        flow.start_at = math.inf
        flow.remaining_bytes = 0.0
        _resume(flow, result)

    now = 0.0
    events = 0
    while True:
        events += 1
        if events > _MAX_EVENTS:
            raise RuntimeError(
                f"cell {cell.cell_id} exceeded {_MAX_EVENTS} events"
            )
        # 1. Start every pending download that is due (session-id order;
        #    a start may resolve instantly as a cache hit and produce a
        #    new pending request, so sweep until quiescent).
        started = True
        while started:
            started = False
            for flow in flows:
                if flow.request is not None and not flow.active:
                    if flow.start_at <= now:
                        begin_download(flow, now)
                        started = True

        active = [f for f in flows if f.active]
        if not active:
            pending = [f.start_at for f in flows if f.request is not None]
            if not pending:
                break  # every machine has finished
            now = min(pending)
            continue

        # 2. Re-solve fair shares at the current instant.  Each flow is
        #    capped by its private access link (evaluated on the session's
        #    own clock) and weighted by its congestion-control class.
        capacity = link.capacity_at(now)
        caps = [
            f.transport.path.link.capacity_at(max(now - f.offset, 0.0))
            for f in active
        ]
        weights = [f.weight for f in active]
        shares = max_min_shares(capacity, caps, weights)

        # 3. The advance horizon: the earliest of any completion at the
        #    current rates, any capacity-epoch boundary (shared or private
        #    per-flow), and any pending future start.  Boundary candidates
        #    are strictly after ``now`` by construction, so only completion
        #    candidates can land at (or, by underflow, before) the current
        #    instant.
        horizon = _strict_boundary_after(link, now, 0.0)
        for f in active:
            horizon = min(
                horizon,
                _strict_boundary_after(
                    f.transport.path.link, now, f.offset
                ),
            )
        for f in flows:
            if f.request is not None and not f.active and f.start_at > now:
                horizon = min(horizon, f.start_at)
        t_next = horizon
        for f, share in zip(active, shares):
            if share > 0:
                t_next = min(t_next, now + f.remaining_bytes * 8.0 / share)

        if not math.isfinite(t_next):
            raise RuntimeError(
                f"cell {cell.cell_id} stalled at t={now}: no capacity and "
                f"no future event (shared link dead forever?)"
            )
        if t_next <= now:
            # A completion candidate fell below float time resolution
            # (residual bytes under one ulp of ``now`` at the current
            # share).  Finish those downloads at the current instant
            # instead of spinning on a zero-length advance.
            t_next = now
            for f, share in zip(active, shares):
                if (
                    share > 0
                    and now + f.remaining_bytes * 8.0 / share <= now
                ):
                    f.remaining_bytes = 0.0

        # 4. Advance the fluid state to t_next and complete what finished.
        dt = t_next - now
        for f, share in zip(active, shares):
            if share > 0:
                f.remaining_bytes -= share * dt / 8.0
        now = t_next
        for f in active:
            if f.remaining_bytes <= _COMPLETION_TOL_BYTES:
                finish_download(f, now)

    shards = [f.shard for f in flows]
    assert all(shard is not None for shard in shards)
    return CellResult(
        cell=cell,
        shards=[s for s in shards if s is not None],
        cache_hits=cache.hits,
        cache_misses=cache.misses,
        shared=True,
    )

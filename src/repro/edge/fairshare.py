"""Exact weighted max-min fair share (water-filling).

The cell engine re-solves shares every time a flow joins, leaves, or the
shared link steps to a new epoch, so the solver must be *order independent*:
a checkpointed run that rebuilds its active set in session-id order has to
produce bit-identical shares to the original run.  Floating-point
water-filling is not order independent (the running remainder accumulates
differently under permutation), so the solve runs in exact rational
arithmetic — ``Fraction(float)`` is lossless — and converts to float once,
per flow, at the end.  That single rounding step is a per-flow function of
exact rationals, hence permutation invariant.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Sequence


def max_min_shares(
    capacity_bps: float,
    caps_bps: Sequence[float],
    weights: Optional[Sequence[float]] = None,
) -> List[float]:
    """Split ``capacity_bps`` across flows by weighted max-min fairness.

    Parameters
    ----------
    capacity_bps:
        The shared bottleneck's current capacity.
    caps_bps:
        Per-flow rate caps (each flow's private access-link capacity); a
        flow never receives more than its cap.
    weights:
        Optional positive fairness weights (CC aggressiveness: a CUBIC flow
        competing against BBR can be given a different weight).  Defaults
        to equal weights.

    Returns
    -------
    Per-flow shares in bits/s, aligned with ``caps_bps``.  Invariants
    (exact in the underlying rationals):

    * conservation — shares sum to ``min(capacity, sum(caps))``;
    * permutation invariance — shares follow their flow under any
      reordering of the input;
    * singleton collapse — one flow receives ``min(capacity, cap)``, the
      private-link rate.
    """
    n = len(caps_bps)
    if n == 0:
        return []
    if capacity_bps < 0:
        raise ValueError("capacity must be non-negative")
    if weights is None:
        weight_f = [Fraction(1)] * n
    else:
        if len(weights) != n:
            raise ValueError("weights must align with caps")
        weight_f = [Fraction(float(w)) for w in weights]
        if any(w <= 0 for w in weight_f):
            raise ValueError("weights must be positive")
    cap_f = [Fraction(float(c)) for c in caps_bps]
    if any(c < 0 for c in cap_f):
        raise ValueError("caps must be non-negative")

    shares: List[Fraction] = [Fraction(0)] * n
    remaining = Fraction(float(capacity_bps))
    active = list(range(n))
    # Water-filling: raise the common water level until some flows hit
    # their caps, freeze those, redistribute the rest.  Terminates in at
    # most n rounds (every round freezes >= 1 flow or exits).
    while active and remaining > 0:
        total_weight = sum(weight_f[i] for i in active)
        level = remaining / total_weight
        capped = [i for i in active if cap_f[i] <= level * weight_f[i]]
        if not capped:
            for i in active:
                shares[i] = level * weight_f[i]
            remaining = Fraction(0)
            break
        for i in capped:
            shares[i] = cap_f[i]
            remaining -= cap_f[i]
        active = [i for i in active if i not in set(capped)]
    return [float(s) for s in shares]

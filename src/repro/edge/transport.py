"""Fluid per-session transport for shared-bottleneck cells.

When a session's downloads are paced by externally allocated fair-share
rates, the RTT-round TCP machinery of :class:`repro.net.tcp.TcpConnection`
no longer applies — the cell engine *is* the congestion controller.  A
:class:`FluidFlow` is what remains of the connection from the ABR's point
of view: the ``tcp_info()`` snapshot it reads before choosing a rung, and
the ``busy_until`` serialization point the session machine consults between
streams.

The snapshot is a documented fluid approximation of the kernel statistics:

* ``delivery_rate`` — the measured rate of the most recent completed
  download (``size * 8 / transmission_time``), exactly the quantity Linux's
  rate sampler would converge to over the transfer;
* ``cwnd`` — the bandwidth-delay product of that rate at the path's base
  RTT (a saturated fluid sender keeps one BDP in flight), floored at
  TCP's ten-segment initial window;
* ``rtt``/``min_rtt`` — the path's propagation delay (fluid flows do not
  model queueing delay; contention appears as reduced rate instead).
"""

from __future__ import annotations

from repro.net.cc.base import DEFAULT_MSS
from repro.net.path import NetworkPath
from repro.net.tcp import TcpInfo

_INITIAL_WINDOW_SEGMENTS = 10.0
"""TCP's IW10: what ``cwnd`` reads before any download completes."""


class FluidFlow:
    """One session's flow through a shared cell bottleneck.

    State is mutated only by the cell engine (single-threaded, in event
    order), so the flow is as deterministic as the engine driving it.
    Times are session-relative, matching the session machine's own clock.
    """

    def __init__(self, path: NetworkPath, mss: int = DEFAULT_MSS) -> None:
        self.path = path
        self.base_rtt = float(path.base_rtt)
        self.cc_name = path.cc_name
        self.mss = int(mss)
        self.min_rtt = self.base_rtt
        self.srtt = self.base_rtt
        self.delivery_rate_bps = 0.0
        self.busy_until = 0.0
        self.downloading = False

    def tcp_info(self) -> TcpInfo:
        """Sender statistics under the fluid approximation (see module
        docstring)."""
        bdp_segments = (
            self.delivery_rate_bps / 8.0 * self.srtt
        ) / self.mss
        cwnd = max(bdp_segments, _INITIAL_WINDOW_SEGMENTS)
        return TcpInfo(
            cwnd=cwnd,
            in_flight=cwnd if self.downloading else 0.0,
            min_rtt=self.min_rtt,
            rtt=self.srtt,
            delivery_rate=self.delivery_rate_bps,
        )

    def record_download(
        self, size_bytes: float, transmission_time: float, end_time: float
    ) -> None:
        """Fold one completed download into the flow's statistics.

        ``end_time`` is session-relative (``send_at + transmission_time``);
        it becomes the new ``busy_until`` — chunks are serialized in order
        on the one flow, exactly as on a real connection.
        """
        if transmission_time > 0:
            self.delivery_rate_bps = size_bytes * 8.0 / transmission_time
        self.busy_until = end_time
        self.downloading = False

"""Seeded Zipf channel popularity.

Content popularity at an edge is famously Zipf-like: a handful of channels
account for most concurrent viewers, which is what makes edge caches work
and what correlates the load inside a cell.  Global rank order is not
universal, though — a regional edge sees its own ordering — so each cell
gets a seeded *rank permutation* of the channel list: channel popularity is
Zipf everywhere, but *which* channel is locally hot varies by cell.

All randomness here uses domain-separated tuple seeds
``(seed, _ZIPF_STREAM, cell_id)`` so popularity draws can never collide
with any other stream of the experiment (SEED001–004 clean under the
whole-program analyzer).
"""

from __future__ import annotations

import numpy as np

_ZIPF_STREAM = 0x21E0
"""Domain-separation constant for the per-cell rank permutation."""


def zipf_weights(n: int, alpha: float) -> np.ndarray:
    """Normalized Zipf weights over ranks ``1..n``: ``w_r ∝ r^-alpha``.

    ``alpha = 0`` degenerates to uniform; typical edge content popularity
    fits ``alpha`` around 0.8–1.2.
    """
    if n <= 0:
        raise ValueError("need at least one item")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-alpha
    return np.asarray(weights / weights.sum(), dtype=np.float64)


class ZipfChannelPopularity:
    """Per-cell channel popularity: Zipf weights over a seeded permutation.

    ``weight(i)`` is the probability that a viewer in this cell watches
    channel index ``i``; ``sample(rng)`` draws a channel index using the
    caller's generator (the session's own seeded stream), so the sampler
    itself holds no generator state and is safe to share within a cell.
    """

    def __init__(
        self, n_channels: int, alpha: float, seed: int, cell_id: int
    ) -> None:
        if cell_id < 0:
            raise ValueError("cell_id must be non-negative")
        self.n_channels = int(n_channels)
        self.alpha = float(alpha)
        self.cell_id = int(cell_id)
        rank_rng = np.random.default_rng((seed, _ZIPF_STREAM, cell_id))
        # ranks[i] is the popularity rank (0 = hottest) of channel i in
        # this cell; the permutation is the cell's local taste.
        self._ranks = rank_rng.permutation(self.n_channels)
        by_rank = zipf_weights(self.n_channels, self.alpha)
        self._weights = by_rank[self._ranks]
        self._cumulative = np.cumsum(self._weights)

    @property
    def weights(self) -> np.ndarray:
        """Per-channel probabilities (index-aligned with the channel list)."""
        return self._weights.copy()

    def rank_of(self, channel_index: int) -> int:
        """This cell's popularity rank of a channel (0 = hottest)."""
        return int(self._ranks[channel_index])

    def hottest(self) -> int:
        """The locally most popular channel index."""
        return int(np.argmin(self._ranks))

    def weight(self, channel_index: int) -> float:
        return float(self._weights[channel_index])

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one channel index (inverse-CDF on a single uniform)."""
        u = float(rng.random())
        return int(np.searchsorted(self._cumulative, u, side="right").clip(
            0, self.n_channels - 1
        ))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vector draw (diagnostics/tests; one uniform per sample)."""
        u = rng.random(n)
        idx = np.searchsorted(self._cumulative, u, side="right")
        return np.clip(idx, 0, self.n_channels - 1)

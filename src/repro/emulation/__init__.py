"""Emulation environment (mahimahi + FCC traces), for the Fig. 11 study."""

from repro.emulation.env import (
    CLIP_MINUTES,
    EMULATION_DELAY_S,
    EmulationEnvironment,
    train_fugu_in_emulation,
)

__all__ = [
    "EmulationEnvironment",
    "train_fugu_in_emulation",
    "EMULATION_DELAY_S",
    "CLIP_MINUTES",
]

"""Mahimahi-style emulation environment (§5.2, Fig. 11).

Reconstructs the paper's emulation testbed: "Each mahimahi shell imposed a
40 ms end-to-end delay on traffic originating inside it and limited the
downlink capacity over time to match the capacity recorded in a set of FCC
broadband network traces ... clients ... would play a 10 minute clip
recorded on NBC over each network trace."

The environment runs any ABR scheme over each trace and can generate
TTP training data, producing the *emulation-trained Fugu* whose collapse in
deployment is the paper's starkest result (Fig. 11, middle panel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.abr.base import AbrAlgorithm
from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm
from repro.core.fugu import Fugu
from repro.core.train import TtpTrainer, build_ttp_datasets
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.media.chunk import ChunkMenu
from repro.media.encoder import VbrEncoder
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net.link import TraceLink
from repro.net.tcp import TcpConnection
from repro.streaming.session import StreamResult
from repro.streaming.simulator import simulate_stream
from repro.traces.fcc import FccTraceConfig, generate_fcc_dataset

EMULATION_DELAY_S = 0.040
"""One-way mahimahi shell delay: 40 ms end-to-end (§5.2)."""

_LOSS_STREAM = 0x70CC
"""Domain-separation constant for per-run loss RNG seeds."""

CLIP_MINUTES = 10.0
"""Length of the recorded NBC clip the emulated clients replay."""


@dataclass
class EmulationEnvironment:
    """FCC traces + 40 ms delay shells + a fixed 10-minute NBC clip.

    Parameters
    ----------
    n_traces:
        Number of synthetic FCC traces (the paper used >15 hours of traces).
    trace_config:
        FCC generator settings (0.2–6 Mbit/s means, 12 Mbit/s cap).
    seed:
        Controls trace synthesis and the recorded clip.
    """

    n_traces: int = 30
    trace_config: FccTraceConfig = field(default_factory=FccTraceConfig)
    seed: int = 0
    _traces: List[List[float]] = field(default_factory=list, repr=False)
    _clip: List[ChunkMenu] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.n_traces <= 0:
            raise ValueError("need at least one trace")
        self._traces = generate_fcc_dataset(
            self.n_traces, self.trace_config, seed=self.seed
        )
        rng = np.random.default_rng(self.seed + 2)
        nbc = DEFAULT_CHANNELS[2]  # the clip was recorded on NBC
        source = VideoSource(nbc, rng=rng)
        encoder = VbrEncoder(rng=rng)
        n_chunks = int(CLIP_MINUTES * 60.0 / 2.002)
        self._clip = encoder.encode_source(source, n_chunks)

    @property
    def traces(self) -> List[List[float]]:
        return self._traces

    @property
    def clip(self) -> List[ChunkMenu]:
        return self._clip

    def run_scheme(
        self,
        algorithm: AbrAlgorithm,
        runs_per_trace: int = 1,
        seed: int = 0,
        salt: int = 0,
    ) -> List[StreamResult]:
        """Play the clip over every trace; returns one result per run.

        The emulator's defining property versus the real deployment: *the
        same conditions replay identically for every scheme* — no play of
        chance in which network a scheme happens to draw (§5.3).  ``salt``
        distinguishes repeated invocations (e.g. per-iteration on-policy
        collection) without callers deriving seeds arithmetically.
        """
        results: List[StreamResult] = []
        clip_duration = len(self._clip) * self._clip[0].duration
        for trace_i, trace in enumerate(self._traces):
            for run in range(runs_per_trace):
                link = TraceLink(trace, epoch=self.trace_config.epoch_s, loop=True)
                connection = TcpConnection(
                    link,
                    base_rtt=2 * EMULATION_DELAY_S,
                    loss_rng=np.random.default_rng(
                        (seed, _LOSS_STREAM, salt, trace_i, run)
                    ),
                )
                result = simulate_stream(
                    iter(self._clip),
                    algorithm,
                    connection,
                    watch_time_s=clip_duration * 3.0,  # watch the whole clip
                    stream_id=trace_i * 1000 + run,
                )
                result.scheme_name = algorithm.name
                results.append(result)
        return results


def train_fugu_in_emulation(
    env: Optional[EmulationEnvironment] = None,
    ttp_config: TtpConfig = TtpConfig(),
    epochs: int = 15,
    iterations: int = 1,
    seed: int = 0,
) -> TransmissionTimePredictor:
    """Produce "Emulation-trained Fugu" (Fig. 5 / Fig. 11): the same TTP
    architecture, trained with supervised learning *in emulation* — on
    telemetry collected inside the FCC-trace environment instead of the
    deployment."""
    if env is None:
        env = EmulationEnvironment(seed=seed)
    predictor = TransmissionTimePredictor(ttp_config, seed=seed)
    streams = env.run_scheme(BBA(), seed=seed) + env.run_scheme(
        MpcHm(), seed=seed, salt=1
    )
    trainer = TtpTrainer(predictor, epochs=epochs, seed=seed)
    trainer.train(build_ttp_datasets(streams, predictor))
    for iteration in range(iterations):
        on_policy = env.run_scheme(
            Fugu(predictor), seed=seed, salt=100 + iteration
        )
        streams = streams + on_policy
        trainer.train(build_ttp_datasets(streams, predictor))
    return predictor

"""The Puffer randomized controlled trial (§3) as a harness.

Blinded random assignment of sessions to schemes, heavy-tailed viewer
behaviour, CONSORT exclusion accounting, and the in-situ training loop that
produces Fugu's deployed predictor.
"""

from repro.experiment.consort import (
    MIN_WATCH_TIME_S,
    ConsortArm,
    ConsortFlow,
    classify_stream,
    eligible_streams,
)
from repro.experiment.harness import (
    RandomizedTrial,
    SessionResult,
    SessionShard,
    ThroughputReport,
    TrialConfig,
    TrialResult,
    WorkerTiming,
    assign_expt_ids,
    merge_shards,
    run_session,
)
from repro.experiment.parallel import run_trial_parallel
from repro.experiment.insitu import (
    InSituTrainingConfig,
    deploy_and_collect,
    train_fugu_in_situ,
    train_pensieve_in_simulation,
)
from repro.experiment.operations import (
    DayReport,
    OperationsReport,
    simulate_operation,
)
from repro.experiment.presets import (
    bench_trial_config,
    paper_scale_trial_config,
    smoke_trial_config,
)
from repro.experiment.schemes import (
    SchemeSpec,
    primary_experiment_schemes,
    scheme_table,
)
from repro.experiment.watch import PAPER_SCALE_VIEWER, ViewerModel

__all__ = [
    "RandomizedTrial",
    "TrialConfig",
    "TrialResult",
    "SessionResult",
    "SessionShard",
    "ThroughputReport",
    "WorkerTiming",
    "assign_expt_ids",
    "merge_shards",
    "run_session",
    "run_trial_parallel",
    "SchemeSpec",
    "primary_experiment_schemes",
    "scheme_table",
    "ViewerModel",
    "PAPER_SCALE_VIEWER",
    "ConsortFlow",
    "ConsortArm",
    "classify_stream",
    "eligible_streams",
    "MIN_WATCH_TIME_S",
    "InSituTrainingConfig",
    "train_fugu_in_situ",
    "train_pensieve_in_simulation",
    "deploy_and_collect",
    "simulate_operation",
    "OperationsReport",
    "DayReport",
    "smoke_trial_config",
    "bench_trial_config",
    "paper_scale_trial_config",
]

"""CONSORT-style experimental-flow accounting (Fig. A1).

The paper reports its randomized trial in the standardized CONSORT format
[32]: sessions randomized per arm, streams excluded (did not begin playing /
watch time under 4 s / stalled from a slow video decoder), streams truncated
by loss of contact, and streams considered for the primary analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.streaming.session import StreamResult

MIN_WATCH_TIME_S = 4.0
"""Primary-analysis eligibility: streams that played at least 4 s (§5)."""


@dataclass
class ConsortArm:
    """Exclusion accounting for one randomization arm."""

    scheme: str
    sessions_assigned: int = 0
    streams_assigned: int = 0
    did_not_begin: int = 0
    watch_time_under_4s: int = 0
    slow_video_decoder: int = 0
    truncated_loss_of_contact: int = 0
    considered: int = 0
    considered_watch_time_s: float = 0.0

    @property
    def excluded(self) -> int:
        return self.did_not_begin + self.watch_time_under_4s + self.slow_video_decoder

    def check(self) -> None:
        """Internal consistency: every stream is excluded or considered."""
        if self.excluded + self.considered != self.streams_assigned:
            raise ValueError(
                f"arm {self.scheme}: {self.excluded} excluded + "
                f"{self.considered} considered != {self.streams_assigned} assigned"
            )

    def merge_from(self, other: "ConsortArm") -> None:
        """Accumulate another arm's counters (sharded-trial merge)."""
        if other.scheme != self.scheme:
            raise ValueError(
                f"cannot merge arm {other.scheme!r} into {self.scheme!r}"
            )
        self.sessions_assigned += other.sessions_assigned
        self.streams_assigned += other.streams_assigned
        self.did_not_begin += other.did_not_begin
        self.watch_time_under_4s += other.watch_time_under_4s
        self.slow_video_decoder += other.slow_video_decoder
        self.truncated_loss_of_contact += other.truncated_loss_of_contact
        self.considered += other.considered
        self.considered_watch_time_s += other.considered_watch_time_s


@dataclass
class ConsortFlow:
    """The full Fig. A1 diagram as data."""

    arms: Dict[str, ConsortArm] = field(default_factory=dict)

    def arm(self, scheme: str) -> ConsortArm:
        if scheme not in self.arms:
            self.arms[scheme] = ConsortArm(scheme=scheme)
        return self.arms[scheme]

    @property
    def sessions_randomized(self) -> int:
        return sum(arm.sessions_assigned for arm in self.arms.values())

    @property
    def streams_total(self) -> int:
        return sum(arm.streams_assigned for arm in self.arms.values())

    @property
    def streams_considered(self) -> int:
        return sum(arm.considered for arm in self.arms.values())

    @property
    def considered_watch_years(self) -> float:
        seconds = sum(arm.considered_watch_time_s for arm in self.arms.values())
        return seconds / (365.25 * 24 * 3600)

    def check(self) -> None:
        for arm in self.arms.values():
            arm.check()

    def merge_from(self, other: "ConsortFlow") -> None:
        """Accumulate another flow's arms (sharded-trial merge).

        Arms unseen so far are created in ``other``'s order, so merging
        per-session flows in session order reproduces the serial loop's arm
        insertion order exactly.
        """
        for name, arm in other.arms.items():
            self.arm(name).merge_from(arm)


def classify_stream(result: StreamResult) -> str:
    """CONSORT category of one stream: 'did_not_begin',
    'watch_time_under_4s', 'slow_video_decoder', or 'considered'."""
    if result.never_began or result.startup_delay is None:
        return "did_not_begin"
    if result.watch_time < MIN_WATCH_TIME_S:
        return "watch_time_under_4s"
    if result.excluded:
        return "slow_video_decoder"
    return "considered"


def eligible_streams(results: Sequence[StreamResult]) -> List[StreamResult]:
    """Streams passing the primary-analysis filter (played >= 4 s)."""
    return [r for r in results if classify_stream(r) == "considered"]

"""The randomized controlled trial harness (§3.4).

Reproduces Puffer's experimental design: each *session* (one visit to the
player) is randomly assigned, blinded, to one scheme; a session may contain
several *streams* (channel changes keep the TCP connection and the assigned
algorithm, Fig. A1); client telemetry is recorded; exclusions follow the
CONSORT flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiment.consort import (
    ConsortFlow,
    classify_stream,
    eligible_streams,
)
from repro.experiment.schemes import SchemeSpec
from repro.experiment.watch import ViewerModel
from repro.media.encoder import VbrEncoder
from repro.media.source import DEFAULT_CHANNELS, Channel, VideoSource
from repro.net.path import PathSampler, PopulationModel
from repro.streaming.session import StreamResult
from repro.streaming.simulator import simulate_stream
from repro.streaming.telemetry import TelemetryLog


@dataclass(frozen=True)
class TrialConfig:
    """Scale and environment knobs for one randomized trial."""

    n_sessions: int = 500
    seed: int = 0
    population: PopulationModel = field(default_factory=PopulationModel)
    viewer: ViewerModel = field(default_factory=ViewerModel)
    channels: Sequence[Channel] = tuple(DEFAULT_CHANNELS)
    extra_stream_prob: float = 0.55
    max_streams_per_session: int = 8
    slow_decoder_prob: float = 0.0002
    loss_of_contact_prob: float = 0.01
    collect_telemetry: bool = False

    def __post_init__(self) -> None:
        if self.n_sessions <= 0:
            raise ValueError("n_sessions must be positive")
        if not 0.0 <= self.extra_stream_prob < 1.0:
            raise ValueError("extra_stream_prob must lie in [0, 1)")
        if self.max_streams_per_session < 1:
            raise ValueError("sessions contain at least one stream")


@dataclass
class SessionResult:
    """All streams of one randomized session."""

    session_id: int
    scheme: str
    expt_id: int
    streams: List[StreamResult] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Total time on the video player (Fig. 10's x-axis)."""
        return sum(stream.total_time for stream in self.streams)


@dataclass
class TrialResult:
    """Outcome of a randomized trial."""

    sessions: List[SessionResult]
    consort: ConsortFlow
    scheme_names: List[str]
    expt_ids: Dict[str, int]
    telemetry: Optional[TelemetryLog] = None

    def sessions_for(self, scheme: str) -> List[SessionResult]:
        return [s for s in self.sessions if s.scheme == scheme]

    def all_streams_for(self, scheme: str) -> List[StreamResult]:
        return [
            stream
            for session in self.sessions_for(scheme)
            for stream in session.streams
        ]

    def streams_for(self, scheme: str) -> List[StreamResult]:
        """Streams eligible for the primary analysis (played >= 4 s)."""
        return eligible_streams(self.all_streams_for(scheme))

    def session_durations_for(self, scheme: str) -> List[float]:
        return [s.duration for s in self.sessions_for(scheme)]


class RandomizedTrial:
    """Run a blinded randomized comparison of a set of schemes.

    One algorithm instance per scheme is built up front and reused across
    its sessions (``begin_stream`` resets per-stream state); the *viewer*
    cannot observe which scheme serves them — assignment is a uniform draw
    keyed only by the session id, and ``expt_id`` is an opaque integer as in
    the open data.
    """

    def __init__(self, specs: Sequence[SchemeSpec], config: TrialConfig) -> None:
        if not specs:
            raise ValueError("need at least one scheme")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("scheme names must be unique")
        self.specs = list(specs)
        self.config = config
        self._algorithms = {spec.name: spec.build() for spec in self.specs}
        # Blinding: expt_id is a shuffled opaque id, not the list position.
        id_rng = np.random.default_rng(config.seed ^ 0x5EED)
        ids = id_rng.permutation(len(self.specs)) + 1
        self._expt_ids = {spec.name: int(ids[i]) for i, spec in enumerate(self.specs)}

    def run(self) -> TrialResult:
        config = self.config
        consort = ConsortFlow()
        sessions: List[SessionResult] = []
        telemetry = TelemetryLog() if config.collect_telemetry else None

        for session_id in range(config.n_sessions):
            # Each session draws from its own generator, so one arm's
            # behaviour (e.g., how long its streams run) cannot perturb the
            # randomness any other session sees — arms are independent, as
            # in the real trial where users arrive independently.
            rng = np.random.default_rng((config.seed, session_id))
            spec = self.specs[int(rng.integers(len(self.specs)))]
            algorithm = self._algorithms[spec.name]
            arm = consort.arm(spec.name)
            arm.sessions_assigned += 1
            session = SessionResult(
                session_id=session_id,
                scheme=spec.name,
                expt_id=self._expt_ids[spec.name],
            )

            path = PathSampler(
                population=config.population, seed=config.seed * 1_000_003 + session_id
            ).next_path()
            connection = path.connect(seed=session_id)
            clock = 0.0  # connection time shared across the session's streams

            n_streams = 1
            while (
                n_streams < config.max_streams_per_session
                and rng.random() < config.extra_stream_prob
            ):
                n_streams += 1

            for stream_no in range(n_streams):
                kind = config.viewer.sample_stream_kind(rng)
                watch = config.viewer.sample_watch_time(kind, rng)
                channel = config.channels[int(rng.integers(len(config.channels)))]
                media_rng = np.random.default_rng(
                    (session_id * 31 + stream_no) * 2 + 1
                )
                source = VideoSource(channel, rng=media_rng)
                encoder = VbrEncoder(rng=media_rng)
                hook = (
                    config.viewer.make_extension_hook(rng)
                    if kind == "view"
                    else None
                )
                stream_id = session_id * config.max_streams_per_session + stream_no
                result = simulate_stream(
                    encoder.stream(source),
                    algorithm,
                    connection,
                    watch_time_s=watch,
                    stream_id=stream_id,
                    expt_id=session.expt_id,
                    telemetry=telemetry,
                    extension_hook=hook,
                    start_time=clock,
                )
                result.scheme_name = spec.name
                clock += result.total_time + float(rng.uniform(0.1, 2.0))
                # A viewer may change channels while a chunk is still in
                # flight; the connection must finish (or the kernel flush)
                # before the next stream's first chunk goes out.
                clock = max(clock, connection.busy_until + 1e-6)
                session.streams.append(result)

                arm.streams_assigned += 1
                category = classify_stream(result)
                if category == "considered" and rng.random() < config.slow_decoder_prob:
                    result.excluded = True
                    category = "slow_video_decoder"
                if category == "did_not_begin":
                    arm.did_not_begin += 1
                elif category == "watch_time_under_4s":
                    arm.watch_time_under_4s += 1
                elif category == "slow_video_decoder":
                    arm.slow_video_decoder += 1
                else:
                    arm.considered += 1
                    arm.considered_watch_time_s += result.watch_time
                    if rng.random() < config.loss_of_contact_prob:
                        arm.truncated_loss_of_contact += 1
            sessions.append(session)

        consort.check()
        return TrialResult(
            sessions=sessions,
            consort=consort,
            scheme_names=[spec.name for spec in self.specs],
            expt_ids=dict(self._expt_ids),
            telemetry=telemetry,
        )

"""The randomized controlled trial harness (§3.4).

Reproduces Puffer's experimental design: each *session* (one visit to the
player) is randomly assigned, blinded, to one scheme; a session may contain
several *streams* (channel changes keep the TCP connection and the assigned
algorithm, Fig. A1); client telemetry is recorded; exclusions follow the
CONSORT flow.

Sessions are independent by construction: every random draw a session makes
is keyed on ``(config.seed, session_id)``, so one arm's behaviour (how long
its streams run, which channels it watches) cannot perturb the randomness
any other session sees — exactly as in the real trial, where users arrive
independently.  That independence is what makes the trial *embarrassingly
parallel*: :func:`run_session` is a pure function of
``(specs, config, session_id)`` and the process-pool engine in
:mod:`repro.experiment.parallel` shards sessions across workers and merges
the shards back bit-identically to the serial loop.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Generator,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from repro import obs, sanitizer
from repro.atomio import atomic_write_text
from repro.abr.base import AbrAlgorithm
from repro.experiment.consort import (
    ConsortFlow,
    classify_stream,
    eligible_streams,
)
from repro.experiment.schemes import SchemeSpec
from repro.experiment.watch import ViewerModel
from repro.media.encoder import VbrEncoder
from repro.media.source import DEFAULT_CHANNELS, Channel, VideoSource
from repro.net.path import NetworkPath, PathSampler, PopulationModel
from repro.net.tcp import TransmissionResult
from repro.streaming.session import StreamResult
from repro.streaming.simulator import (
    TransmitRequest,
    Transport,
    simulate_stream,
    stream_machine,
)
from repro.streaming.telemetry import TelemetryLog

__all__ = [
    "ConnectRequest",
    "RandomizedTrial",
    "SessionResult",
    "SessionShard",
    "TrialConfig",
    "TrialResult",
    "assign_expt_ids",
    "connection_seed",
    "media_seed",
    "merge_shards",
    "run_session",
    "session_machine",
    "simulate_stream",
]


@dataclass(frozen=True)
class TrialConfig:
    """Scale and environment knobs for one randomized trial."""

    n_sessions: int = 500
    seed: int = 0
    population: PopulationModel = field(default_factory=PopulationModel)
    viewer: ViewerModel = field(default_factory=ViewerModel)
    channels: Sequence[Channel] = tuple(DEFAULT_CHANNELS)
    extra_stream_prob: float = 0.55
    max_streams_per_session: int = 8
    slow_decoder_prob: float = 0.0002
    loss_of_contact_prob: float = 0.01
    collect_telemetry: bool = False
    observability: bool = False
    """Collect per-session :class:`repro.obs.ObsContext` metrics/events and
    merge them (deterministically, by session id) onto the trial result.
    Instrumentation never perturbs the simulation — stream records are
    bit-identical with this on or off."""

    def __post_init__(self) -> None:
        if self.n_sessions <= 0:
            raise ValueError("n_sessions must be positive")
        if not 0.0 <= self.extra_stream_prob < 1.0:
            raise ValueError("extra_stream_prob must lie in [0, 1)")
        if self.max_streams_per_session < 1:
            raise ValueError("sessions contain at least one stream")


@dataclass
class SessionResult:
    """All streams of one randomized session."""

    session_id: int
    scheme: str
    expt_id: int
    streams: List[StreamResult] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Total time on the video player (Fig. 10's x-axis)."""
        return sum(stream.total_time for stream in self.streams)


@dataclass(frozen=True)
class WorkerTiming:
    """How much work one worker process did during a trial."""

    worker: int
    """Worker identity (the OS pid for pool workers; 0 for the serial path)."""

    sessions: int
    streams: int
    busy_s: float
    """Seconds the worker spent simulating (excludes pool overhead)."""

    chunks: int = 1
    """Number of session chunks this worker executed (load-balance grain)."""


@dataclass(frozen=True)
class ThroughputReport:
    """Lightweight throughput accounting for one trial run."""

    mode: str
    """``"serial"`` or the multiprocessing start method (``"fork"`` …)."""

    workers: int
    n_sessions: int
    n_streams: int
    wall_s: float
    chunk_size: int
    per_worker: List[WorkerTiming] = field(default_factory=list)

    merge_s: float = 0.0
    """Seconds spent merging session shards back into the trial result
    (serialization + fold; the non-parallelizable tail of Amdahl's law)."""

    @property
    def sessions_per_s(self) -> float:
        return self.n_sessions / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def streams_per_s(self) -> float:
        return self.n_streams / self.wall_s if self.wall_s > 0 else float("inf")

    def format(self) -> str:
        """Human-readable multi-line summary (for the CLI's stderr)."""
        lines = [
            f"trial throughput: {self.n_sessions} sessions "
            f"({self.n_streams} streams) in {self.wall_s:.2f}s "
            f"= {self.sessions_per_s:.1f} sessions/s, "
            f"{self.streams_per_s:.1f} streams/s "
            f"[{self.mode}, workers={self.workers}, chunk={self.chunk_size}, "
            f"merge {self.merge_s * 1e3:.0f}ms]"
        ]
        for w in self.per_worker:
            lines.append(
                f"  worker {w.worker}: {w.sessions} sessions "
                f"({w.chunks} chunks), {w.streams} streams, "
                f"busy {w.busy_s:.2f}s"
            )
        return "\n".join(lines)


@dataclass
class TrialResult:
    """Outcome of a randomized trial."""

    sessions: List[SessionResult]
    consort: ConsortFlow
    scheme_names: List[str]
    expt_ids: Dict[str, int]
    telemetry: Optional[TelemetryLog] = None
    throughput: Optional[ThroughputReport] = None
    """Populated by :meth:`RandomizedTrial.run`; not part of the scientific
    result (excluded from serial/parallel equivalence comparisons)."""

    obs: Optional["obs.ObsContext"] = None
    """Merged observability context (``TrialConfig.observability=True``).
    The deterministic part (``to_dict(include_wallclock=False)``) is
    bit-identical between the serial loop and any worker count."""

    metrics_path: Optional[str] = None
    """Where :meth:`dump_metrics` last wrote the metrics JSON, if it did."""

    def dump_metrics(
        self, path: str, include_wallclock: bool = True
    ) -> str:
        """Write the merged observability dump as JSON and record the path.

        The JSON layout (``schema_version``, ``metrics.counters/gauges/
        histograms``, ``events``) is the stable contract dashboards and
        regression tooling consume; see EXPERIMENTS.md.
        """
        if self.obs is None:
            raise ValueError(
                "no observability data collected "
                "(run with TrialConfig(observability=True))"
            )
        data = self.obs.to_dict(include_wallclock=include_wallclock)
        payload = json.dumps(data, sort_keys=True, indent=2)
        atomic_write_text(path, payload + "\n")
        self.metrics_path = path
        return path

    def sessions_for(self, scheme: str) -> List[SessionResult]:
        return [s for s in self.sessions if s.scheme == scheme]

    def all_streams_for(self, scheme: str) -> List[StreamResult]:
        return [
            stream
            for session in self.sessions_for(scheme)
            for stream in session.streams
        ]

    def streams_for(self, scheme: str) -> List[StreamResult]:
        """Streams eligible for the primary analysis (played >= 4 s)."""
        return eligible_streams(self.all_streams_for(scheme))

    def session_durations_for(self, scheme: str) -> List[float]:
        return [s.duration for s in self.sessions_for(scheme)]


@dataclass
class SessionShard:
    """Everything one simulated session contributes to a trial.

    The serial loop and the process-pool engine both produce a stream of
    shards; :func:`merge_shards` folds them into a :class:`TrialResult`
    deterministically (by session id), which is what makes the two paths
    bit-identical.
    """

    session: SessionResult
    consort: ConsortFlow
    telemetry: Optional[TelemetryLog]
    obs: Optional["obs.ObsContext"] = None
    """Per-session metrics/events (``TrialConfig.observability=True``)."""


def assign_expt_ids(specs: Sequence[SchemeSpec], seed: int) -> Dict[str, int]:
    """Blinding: ``expt_id`` is a shuffled opaque id, not the list position,
    exactly as in the open data."""
    id_rng = np.random.default_rng(seed ^ 0x5EED)
    ids = id_rng.permutation(len(specs)) + 1
    return {spec.name: int(ids[i]) for i, spec in enumerate(specs)}


def media_seed(trial_seed: int, session_id: int, stream_no: int) -> tuple:
    """Seed of the generator that draws video content and encoder noise.

    Folds the trial seed in (two trials with different seeds must not replay
    identical video), and keys on ``(session, stream)`` so every stream sees
    fresh content regardless of how sessions are scheduled across workers.
    """
    return (trial_seed, 0x7E1E, session_id, stream_no)


def connection_seed(trial_seed: int, session_id: int) -> tuple:
    """Seed of the per-connection loss process (folds the trial seed in)."""
    return (trial_seed, 0x1055, session_id)


@dataclass(frozen=True)
class ConnectRequest:
    """First yield of :func:`session_machine`: the session's sampled path
    and the seed for its loss process.

    The driver answers with a transport — :meth:`NetworkPath.connect` for
    the classic private-link trial, or a shared-bottleneck fluid flow built
    from the same path in :mod:`repro.edge`.  ``obs_ctx`` is the session's
    observability context (``None`` when collection is off); drivers must
    activate it around every resume of the machine so instrumentation in
    the streaming/net layers lands on the right shard.
    """

    session_id: int
    path: NetworkPath
    seed: tuple
    obs_ctx: Optional["obs.ObsContext"] = None


SessionMachine = Generator[
    Union[ConnectRequest, TransmitRequest],
    Union[Transport, TransmissionResult],
    SessionShard,
]


ChannelChooser = Callable[[np.random.Generator, Sequence[Channel]], Channel]
"""Optional channel-selection hook for :func:`session_machine`: called with
the session's own generator and the trial's channel list.  ``None`` keeps
the historical uniform draw (one ``rng.integers`` call).  The edge tier
passes a cell-local Zipf popularity sampler here — viewers at the same
edge concentrate on locally hot channels, which is what gives the cell
cache its hit ratio."""


def session_machine(
    specs: Sequence[SchemeSpec],
    config: TrialConfig,
    session_id: int,
    expt_ids: Optional[Mapping[str, int]] = None,
    algorithms: Optional[Mapping[str, AbrAlgorithm]] = None,
    channel_chooser: Optional[ChannelChooser] = None,
) -> SessionMachine:
    """One randomized session as a resumable generator.

    Yields a single :class:`ConnectRequest` (answered with the session's
    transport), then :class:`~repro.streaming.simulator.TransmitRequest`
    objects forwarded from :func:`stream_machine` (each answered with a
    :class:`~repro.net.tcp.TransmissionResult`), and returns the
    :class:`SessionShard` via ``StopIteration.value``.

    Every random draw is keyed on ``(config.seed, session_id)`` in exactly
    the order of the historical ``run_session`` body, so a driver that
    answers requests the way a private connection would reproduces the old
    results bit for bit — that equivalence is what lets
    :func:`repro.edge.engine.run_cell` reuse this machine unchanged.
    """
    if expt_ids is None:
        expt_ids = assign_expt_ids(specs, config.seed)
    if algorithms is None:
        algorithms = {spec.name: spec.build() for spec in specs}

    consort = ConsortFlow()
    telemetry = TelemetryLog() if config.collect_telemetry else None
    # Shard-local observability: a fresh context per session, activated by
    # the driver around every resume, shipped back on the shard, and merged
    # by session id — which is what keeps the merged metrics bit-identical
    # between the serial loop and the process pool.
    obs_ctx = obs.ObsContext() if config.observability else None
    # repro: allow-DET002(wall-clock session cost; quarantined profile.* metric) repro: allow-PURE002(profiling only; value never reaches session results)
    wall_start = time.perf_counter()

    # repro: allow-SEED003(scheme-assignment fold; the batch lane replays it bit-for-bit, and a stream constant would re-randomize every historical assignment)
    rng = np.random.default_rng((config.seed, session_id))
    spec = specs[int(rng.integers(len(specs)))]
    algorithm = algorithms[spec.name]
    arm = consort.arm(spec.name)
    arm.sessions_assigned += 1
    session = SessionResult(
        session_id=session_id,
        scheme=spec.name,
        expt_id=expt_ids[spec.name],
    )

    path = PathSampler(
        # repro: allow-SEED001(legacy path seed; the batch lane and all collected telemetry depend on this exact arithmetic form staying bit-identical)
        population=config.population, seed=config.seed * 1_000_003 + session_id
    ).next_path()
    transport = yield ConnectRequest(
        session_id=session_id,
        path=path,
        seed=connection_seed(config.seed, session_id),
        obs_ctx=obs_ctx,
    )
    assert not isinstance(transport, TransmissionResult)
    clock = 0.0  # connection time shared across the session's streams

    n_streams = 1
    while (
        n_streams < config.max_streams_per_session
        and rng.random() < config.extra_stream_prob
    ):
        n_streams += 1

    for stream_no in range(n_streams):
        kind = config.viewer.sample_stream_kind(rng)
        watch = config.viewer.sample_watch_time(kind, rng)
        if channel_chooser is None:
            channel = config.channels[int(rng.integers(len(config.channels)))]
        else:
            channel = channel_chooser(rng, config.channels)
        media_rng = np.random.default_rng(
            media_seed(config.seed, session_id, stream_no)
        )
        source = VideoSource(channel, rng=media_rng)
        encoder = VbrEncoder(rng=media_rng)
        hook = (
            config.viewer.make_extension_hook(rng)
            if kind == "view"
            else None
        )
        stream_id = session_id * config.max_streams_per_session + stream_no
        result = yield from stream_machine(
            encoder.stream(source),
            algorithm,
            transport,
            watch_time_s=watch,
            stream_id=stream_id,
            expt_id=session.expt_id,
            telemetry=telemetry,
            extension_hook=hook,
            start_time=clock,
            channel_name=channel.name,
        )
        result.scheme_name = spec.name
        clock += result.total_time + float(rng.uniform(0.1, 2.0))
        # A viewer may change channels while a chunk is still in
        # flight; the connection must finish (or the kernel flush)
        # before the next stream's first chunk goes out.
        clock = max(clock, transport.busy_until + 1e-6)
        session.streams.append(result)

        arm.streams_assigned += 1
        category = classify_stream(result)
        if (
            category == "considered"
            and rng.random() < config.slow_decoder_prob
        ):
            result.excluded = True
            category = "slow_video_decoder"
        if category == "did_not_begin":
            arm.did_not_begin += 1
        elif category == "watch_time_under_4s":
            arm.watch_time_under_4s += 1
        elif category == "slow_video_decoder":
            arm.slow_video_decoder += 1
        else:
            arm.considered += 1
            arm.considered_watch_time_s += result.watch_time
            if rng.random() < config.loss_of_contact_prob:
                arm.truncated_loss_of_contact += 1

    if obs_ctx is not None:
        obs_ctx.metrics.inc("trial.sessions")
        obs_ctx.metrics.inc("trial.streams", float(n_streams))
        obs_ctx.metrics.observe(
            "profile.session_wall_s",
            # repro: allow-DET002(wall-clock profiling, tagged wallclock=True) repro: allow-PURE002(profiling only; quarantined wallclock obs metric)
            time.perf_counter() - wall_start,
            spec=obs.TIME_SPEC,
            wallclock=True,
        )
    return SessionShard(
        session=session, consort=consort, telemetry=telemetry, obs=obs_ctx
    )


@sanitizer.guarded("run_session")
def run_session(
    specs: Sequence[SchemeSpec],
    config: TrialConfig,
    session_id: int,
    expt_ids: Optional[Mapping[str, int]] = None,
    algorithms: Optional[Mapping[str, AbrAlgorithm]] = None,
) -> SessionShard:
    """Simulate one randomized session — the pure unit of work both the
    serial loop and the parallel engine execute.

    Drives :func:`session_machine` against a private per-session TCP
    connection: the connect request is answered with
    ``path.connect(seed)`` and every transmit request with
    ``connection.transmit(...)`` — the exact call sequence of the
    historical inline implementation, so results are bit-identical to it.

    Every random draw is keyed on ``(config.seed, session_id)`` so the
    result depends only on the arguments, never on which sessions ran
    before it or on which process runs it.  This is also the declared
    purity root of the static analyzer (``purity-roots.json``); under
    ``REPRO_SANITIZE=1`` the body runs inside a :mod:`repro.sanitizer`
    guard that turns any surviving impurity into a hard error.

    Parameters
    ----------
    expt_ids:
        The trial's blinded id assignment; derived from ``config.seed`` when
        omitted.
    algorithms:
        Cache of built scheme instances keyed by name.  Callers that run
        many sessions pass a long-lived cache (one per trial in the serial
        path, one per worker process in the parallel path — never shared
        across processes, which is what removes the shared-instance
        hazard); when omitted, fresh instances are built for this session.
    """
    machine = session_machine(
        specs, config, session_id, expt_ids=expt_ids, algorithms=algorithms
    )
    # The machine's pre-connect setup (scheme assignment, path sampling)
    # historically ran outside the observability activation; preserve that.
    connect = machine.send(None)  # type: ignore[arg-type]
    assert isinstance(connect, ConnectRequest)
    connection = connect.path.connect(seed=connect.seed)
    with obs.activate(connect.obs_ctx):
        response: "Transport | TransmissionResult" = connection
        while True:
            try:
                request = machine.send(response)
            except StopIteration as stop:
                shard: SessionShard = stop.value
                return shard
            assert isinstance(request, TransmitRequest)
            response = connection.transmit(request.size_bytes, request.send_at)


def merge_shards(
    specs: Sequence[SchemeSpec],
    config: TrialConfig,
    expt_ids: Mapping[str, int],
    shards: Sequence[SessionShard],
    throughput: Optional[ThroughputReport] = None,
) -> TrialResult:
    """Fold session shards into a :class:`TrialResult`.

    Shards are merged in session-id order regardless of the order in which
    they arrive, so the result — including telemetry record order and the
    CONSORT arms' insertion order — is identical to the serial loop's.
    """
    ordered = sorted(shards, key=lambda shard: shard.session.session_id)
    ids = [shard.session.session_id for shard in ordered]
    if ids != list(range(config.n_sessions)):
        raise ValueError(
            f"expected shards for sessions 0..{config.n_sessions - 1}, "
            f"got {len(ids)} shards"
        )
    consort = ConsortFlow()
    telemetry = TelemetryLog() if config.collect_telemetry else None
    sessions: List[SessionResult] = []
    for shard in ordered:
        sessions.append(shard.session)
        consort.merge_from(shard.consort)
        if telemetry is not None and shard.telemetry is not None:
            telemetry.extend(shard.telemetry)
    consort.check()
    # Observability shards fold in the same session-id order as everything
    # else, so the merged registry/trace is bit-identical to the serial
    # loop's (counters and histogram sums see the exact same sequence of
    # additions on both paths).
    merged_obs = obs.merge_contexts(
        shard.obs for shard in ordered if shard.obs is not None
    )
    if merged_obs is not None:
        merged_obs.metrics.inc("trial.shards_merged", float(len(ordered)))
    return TrialResult(
        sessions=sessions,
        consort=consort,
        scheme_names=[spec.name for spec in specs],
        expt_ids=dict(expt_ids),
        telemetry=telemetry,
        throughput=throughput,
        obs=merged_obs,
    )


class RandomizedTrial:
    """Run a blinded randomized comparison of a set of schemes.

    One algorithm instance per scheme is built up front and reused across
    its sessions (``begin_stream`` resets per-stream state); the *viewer*
    cannot observe which scheme serves them — assignment is a uniform draw
    keyed only by the session id, and ``expt_id`` is an opaque integer as in
    the open data.

    ``run(workers=N)`` shards the sessions across ``N`` worker processes
    (each with its own scheme instances) and merges the shards back
    bit-identically to the serial loop; see
    :mod:`repro.experiment.parallel`.
    """

    def __init__(self, specs: Sequence[SchemeSpec], config: TrialConfig) -> None:
        if not specs:
            raise ValueError("need at least one scheme")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError("scheme names must be unique")
        self.specs = list(specs)
        self.config = config
        self._algorithms = {spec.name: spec.build() for spec in self.specs}
        self._expt_ids = assign_expt_ids(self.specs, config.seed)

    def run(
        self, workers: int = 1, chunk_size: Optional[int] = None
    ) -> TrialResult:
        """Run the trial.

        Parameters
        ----------
        workers:
            Number of worker processes.  ``1`` (the default) runs the
            sessions in this process; ``N > 1`` shards them across ``N``
            processes.  The result is bit-identical either way.
        chunk_size:
            Sessions per parallel task (``workers > 1`` only); defaults to
            a value that gives each worker several chunks for load balance.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers > 1:
            from repro.experiment.parallel import run_trial_parallel

            return run_trial_parallel(
                self.specs, self.config, workers=workers, chunk_size=chunk_size
            )

        config = self.config
        # repro: allow-DET002(throughput report timing; never enters results)
        start = time.perf_counter()
        shards = [
            run_session(
                self.specs, config, session_id, self._expt_ids, self._algorithms
            )
            for session_id in range(config.n_sessions)
        ]
        wall = time.perf_counter() - start  # repro: allow-DET002(throughput report timing; never enters results)
        n_streams = sum(len(shard.session.streams) for shard in shards)
        # repro: allow-DET002(throughput report timing; never enters results)
        merge_start = time.perf_counter()
        result = merge_shards(self.specs, config, self._expt_ids, shards)
        merge_s = time.perf_counter() - merge_start  # repro: allow-DET002(throughput report timing; never enters results)
        result.throughput = ThroughputReport(
            mode="serial",
            workers=1,
            n_sessions=config.n_sessions,
            n_streams=n_streams,
            wall_s=wall,
            chunk_size=config.n_sessions,
            merge_s=merge_s,
            per_worker=[
                WorkerTiming(
                    worker=os.getpid(),
                    sessions=config.n_sessions,
                    streams=n_streams,
                    busy_s=wall,
                    chunks=1,
                )
            ],
        )
        if result.obs is not None:
            result.obs.metrics.observe(
                "profile.trial_merge_s",
                merge_s,
                spec=obs.TIME_SPEC,
                wallclock=True,
            )
        return result

"""In-situ training orchestration — the paper's central recipe.

"The simplest way to obtain representative training data is to learn in
situ, on real data from the actual deployment environment" (§1). On Puffer,
Fugu's TTP is trained on telemetry from the deployment itself and retrained
daily. This module reproduces that loop against the simulated deployment:

1. *bootstrap*: run the deployment with the pre-Fugu schemes (BBA, MPC-HM)
   and collect telemetry;
2. *train*: fit the TTP on the collected (features, transmission-time)
   pairs;
3. *iterate*: deploy Fugu itself, collect on-policy telemetry, retrain —
   mirroring the daily retraining cycle in which most data comes from the
   environment Fugu actually operates in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.abr.base import AbrAlgorithm
from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm
from repro.abr.pensieve import (
    ActorCritic,
    PensieveTrainer,
    PensieveTrainingConfig,
    SimpleChunkEnv,
)
from repro.core.fugu import Fugu
from repro.core.train import TtpTrainer, build_ttp_datasets
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.experiment.consort import eligible_streams
from repro.experiment.harness import TrialConfig
from repro.media.encoder import VbrEncoder
from repro.media.source import DEFAULT_CHANNELS, VideoSource
from repro.net.path import PathSampler
from repro.streaming.session import StreamResult
from repro.streaming.simulator import simulate_stream
from repro.traces import generate_fcc_dataset

import numpy as np

# Domain-separation constants for the per-stream RNG families.  Each
# independent consumer of the trial seed folds a distinct constant into a
# tuple seed so no two families can ever draw the same stream, whatever
# the stream index ``i`` is (this replaced ``seed * 1_000_003 + i`` being
# reused verbatim for media, path, *and* connection — three identical
# streams).  The change is an intentional break in collected traces:
# telemetry gathered before it is not bit-comparable with telemetry after.
_MEDIA_STREAM = 0x3ED1A
_PATH_STREAM = 0x9A7B5
_CONN_STREAM = 0xC0881

# Candidate-training stream families for train_pensieve_in_simulation.
_ENV_STREAM = 0xE27
_POLICY_STREAM = 0x901C
_TRAIN_STREAM = 0x7217
_HOLDOUT_STREAM = 0x801D


def _collect_one_stream(payload, i: int) -> StreamResult:
    """One round-robin collection stream — pure in ``(payload, i)``.

    Module-level so the parallel engine's :func:`fork_map` can address it;
    ``payload`` carries the (possibly unpicklable) algorithm instances by
    fork inheritance, so each worker process operates on its own copies.
    """
    algorithms, population, watch_time_s, seed = payload
    algorithm = algorithms[i % len(algorithms)]
    rng = np.random.default_rng((seed, _MEDIA_STREAM, i))
    channel = DEFAULT_CHANNELS[i % len(DEFAULT_CHANNELS)]
    source = VideoSource(channel, rng=rng)
    encoder = VbrEncoder(rng=rng)
    path = PathSampler(
        population=population, seed=(seed, _PATH_STREAM, i)
    ).next_path()
    connection = path.connect(seed=(seed, _CONN_STREAM, i))
    return simulate_stream(
        encoder.stream(source),
        algorithm,
        connection,
        watch_time_s=watch_time_s,
        stream_id=i,
    )


def deploy_and_collect(
    algorithms: Sequence[AbrAlgorithm],
    n_streams: int,
    seed: int,
    config: Optional[TrialConfig] = None,
    watch_time_s: float = 240.0,
    workers: int = 1,
) -> List[StreamResult]:
    """Run a round-robin deployment of ``algorithms`` and return the
    eligible streams — the telemetry-collection half of the in-situ loop.

    A lighter-weight path than the full RCT harness: every stream is a
    "view" of fixed length so the collected dataset is dense.  Streams are
    seeded independently, so with ``workers > 1`` they are sharded across a
    process pool (each worker operating on fork-inherited copies of the
    algorithms) with results identical to the serial loop.
    """
    if not algorithms:
        raise ValueError("need at least one algorithm")
    if n_streams <= 0:
        raise ValueError("n_streams must be positive")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    population = config.population if config is not None else TrialConfig().population
    payload = (list(algorithms), population, watch_time_s, seed)
    if workers > 1:
        from repro.experiment.parallel import fork_map

        results = fork_map(
            _collect_one_stream, payload, range(n_streams), workers
        )
    else:
        results = [_collect_one_stream(payload, i) for i in range(n_streams)]
    return eligible_streams(results)


@dataclass
class InSituTrainingConfig:
    """Knobs for the bootstrap-and-iterate training loop."""

    bootstrap_streams: int = 120
    iteration_streams: int = 120
    iterations: int = 2
    epochs: int = 15
    watch_time_s: float = 240.0
    ttp_config: TtpConfig = field(default_factory=TtpConfig)
    seed: int = 0
    workers: int = 1
    """Worker processes for the telemetry-collection phases (the training
    phases are already vectorized); results are identical at any count."""


def train_fugu_in_situ(
    config: InSituTrainingConfig = InSituTrainingConfig(),
    trial_config: Optional[TrialConfig] = None,
) -> TransmissionTimePredictor:
    """Produce a deployment-trained TTP (the "Fugu" arm of the experiments).

    Returns the trained predictor; wrap it with
    :class:`repro.core.fugu.Fugu` to obtain the scheme.
    """
    predictor = TransmissionTimePredictor(config.ttp_config, seed=config.seed)
    bootstrap_schemes: List[AbrAlgorithm] = [BBA(), MpcHm()]
    streams = deploy_and_collect(
        bootstrap_schemes,
        config.bootstrap_streams,
        seed=config.seed,
        config=trial_config,
        watch_time_s=config.watch_time_s,
        workers=config.workers,
    )
    all_streams = list(streams)
    predictor.calibrate_tail(all_streams)
    trainer = TtpTrainer(predictor, epochs=config.epochs, seed=config.seed)
    trainer.train(build_ttp_datasets(all_streams, predictor))
    for iteration in range(config.iterations):
        fugu = Fugu(predictor)
        on_policy = deploy_and_collect(
            [fugu],
            config.iteration_streams,
            seed=config.seed + 7919 * (iteration + 1),
            config=trial_config,
            watch_time_s=config.watch_time_s,
            workers=config.workers,
        )
        all_streams.extend(on_policy)
        predictor.calibrate_tail(all_streams)
        trainer.train(build_ttp_datasets(all_streams, predictor))
    return predictor


def _greedy_simulation_score(
    model: ActorCritic, traces, chunks_per_episode: int, seed
) -> float:
    """Mean greedy-episode QoE of a policy on held-out simulator traces."""
    env = SimpleChunkEnv(traces, chunks_per_episode=chunks_per_episode, seed=seed)
    total = 0.0
    n_episodes = max(len(traces), 10)
    for _ in range(n_episodes):
        state = env.reset()
        done = False
        while not done:
            state, reward, done = env.step(model.act(state, greedy=True))
            total += reward
    return total / n_episodes


def train_pensieve_in_simulation(
    episodes: int = 800,
    n_traces: int = 40,
    seed: int = 0,
    chunks_per_episode: int = 100,
    n_candidates: int = 6,
) -> ActorCritic:
    """Train the Pensieve policy the way the original was trained: RL in a
    chunk-level simulator over broadband-style traces (§3.3).

    The trace band spans the full 12 Mbit/s mahimahi cap. Policy-gradient
    training is high-variance across seeds, and the paper reports that the
    Pensieve authors' recommended procedure was to train several multi-video
    models (with entropy tuning) and select the best ("We wrote an automated
    tool to train 6 different models ... then selected the model with the
    best performance"). We reproduce that: ``n_candidates`` seeds are
    trained and the best by greedy QoE on held-out simulator traces wins.
    """
    if n_candidates <= 0:
        raise ValueError("need at least one candidate")
    from repro.traces.fcc import FccTraceConfig

    trace_config = FccTraceConfig(max_mean_bps=12e6)
    traces = generate_fcc_dataset(n_traces, trace_config, seed=seed)
    # Selection mirrors the authors testing candidates "manually over a few
    # real networks" — which are far faster than the FCC training band, so
    # the holdout draws from the upper part of the range.
    holdout_config = FccTraceConfig(min_mean_bps=2e6, max_mean_bps=12e6)
    holdout = generate_fcc_dataset(
        max(n_traces // 2, 5), holdout_config, seed=seed + 424_242
    )
    best_model: Optional[ActorCritic] = None
    best_score = -np.inf
    for candidate in range(n_candidates):
        # One tuple seed per RNG family, domain-separated by a stream
        # constant: the env, the policy init, the trainer, and the holdout
        # scorer previously all consumed the *same* ``seed + 1000 *
        # candidate`` value and therefore drew identical streams.
        env = SimpleChunkEnv(
            traces,
            chunks_per_episode=chunks_per_episode,
            seed=(seed, _ENV_STREAM, candidate),
        )
        model = ActorCritic(seed=(seed, _POLICY_STREAM, candidate))
        PensieveTrainer(
            model,
            env,
            PensieveTrainingConfig(
                episodes=episodes, seed=(seed, _TRAIN_STREAM, candidate)
            ),
        ).train()
        score = _greedy_simulation_score(
            model,
            holdout,
            chunks_per_episode,
            seed=(seed, _HOLDOUT_STREAM, candidate),
        )
        if score > best_score:
            best_score = score
            best_model = model
    assert best_model is not None
    return best_model

"""Day-by-day Puffer operations: serve, collect, retrain nightly (§4.3).

"We retrain the TTP every day, using training data collected on Puffer over
the prior 14 days ... The weights from the previous day's model are loaded
to warm-start the retraining."

:func:`simulate_operation` runs that loop against the simulated deployment:
each "day", a mixture of schemes (Fugu among them) serves traffic; each
night the :class:`~repro.core.train.DailyRetrainer` refits the TTP on the
sliding telemetry window; snapshots can be taken for the §4.6 staleness
study. The per-day history shows Fugu's cold-start problem and its
improvement as in-situ data accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.abr.base import AbrAlgorithm
from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm
from repro.core.fugu import Fugu
from repro.core.train import DailyRetrainer
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.experiment.insitu import deploy_and_collect


@dataclass
class DayReport:
    """One day of operation."""

    day: int
    streams_served: int
    fugu_stall_percent: float
    fugu_ssim_db: float
    baseline_stall_percent: float
    baseline_ssim_db: float
    training_loss: Optional[float] = None


@dataclass
class OperationsReport:
    """Full history of an operations run."""

    days: List[DayReport] = field(default_factory=list)
    snapshots: Dict[int, TransmissionTimePredictor] = field(
        default_factory=dict
    )

    @property
    def final_day(self) -> DayReport:
        if not self.days:
            raise ValueError("no days recorded")
        return self.days[-1]


def _arm_metrics(streams, scheme_name):
    mine = [s for s in streams if s.scheme_name == scheme_name]
    if not mine:
        return float("nan"), float("nan")
    stall = sum(s.stall_time for s in mine) / sum(s.watch_time for s in mine)
    ssim = float(np.mean([s.mean_ssim_db for s in mine]))
    return stall * 100.0, ssim


def simulate_operation(
    n_days: int = 5,
    streams_per_day: int = 90,
    epochs_per_day: int = 8,
    window_days: int = 14,
    snapshot_days: Optional[List[int]] = None,
    ttp_config: TtpConfig = TtpConfig(),
    watch_time_s: float = 240.0,
    seed: int = 0,
) -> "tuple[TransmissionTimePredictor, OperationsReport]":
    """Operate the deployment for ``n_days`` with nightly retraining.

    Traffic is split round-robin among BBA, MPC-HM, and Fugu (whose TTP
    starts untrained — day 0 is Fugu's first day in production, deliberately
    rough). Returns the final predictor and the per-day history.
    """
    if n_days <= 0:
        raise ValueError("need at least one day")
    predictor = TransmissionTimePredictor(ttp_config, seed=seed)
    retrainer = DailyRetrainer(
        predictor,
        window_days=window_days,
        epochs_per_day=epochs_per_day,
        seed=seed,
    )
    report = OperationsReport()
    snapshot_days = set(snapshot_days or [])

    for day in range(n_days):
        algorithms: List[AbrAlgorithm] = [BBA(), MpcHm(), Fugu(predictor)]
        streams = deploy_and_collect(
            algorithms,
            streams_per_day,
            seed=seed * 104_729 + day,
            watch_time_s=watch_time_s,
        )
        fugu_stall, fugu_ssim = _arm_metrics(streams, "fugu")
        bba_stall, bba_ssim = _arm_metrics(streams, "bba")

        predictor.calibrate_tail(streams)
        retrainer.add_day(streams)
        training_reports = retrainer.retrain()
        report.days.append(
            DayReport(
                day=day,
                streams_served=len(streams),
                fugu_stall_percent=fugu_stall,
                fugu_ssim_db=fugu_ssim,
                baseline_stall_percent=bba_stall,
                baseline_ssim_db=bba_ssim,
                training_loss=float(
                    np.mean([r.final_train_loss for r in training_reports])
                ),
            )
        )
        if day in snapshot_days:
            report.snapshots[day] = retrainer.snapshot()

    return predictor, report

"""Process-pool parallel trial engine.

The paper's statistics rest on scale — 38.6 client-years of data from about
half a million streams — and a serial Python loop over sessions is the
bottleneck for anything paper-sized.  Sessions are independent by
construction (every draw is keyed on ``(config.seed, session_id)``; see
:func:`repro.experiment.harness.run_session`), so a trial is embarrassingly
parallel:

1. session ids are sharded into contiguous chunks (several chunks per
   worker, for load balance — sessions vary a lot in length, Fig. 10);
2. each worker process builds its **own** scheme instances via
   ``SchemeSpec.build()`` — instances are never shared across processes,
   which removes the cross-session shared-instance hazard of the historical
   single-loop harness;
3. the resulting :class:`~repro.experiment.harness.SessionShard` stream is
   merged by session id, making the output — stream records, CONSORT
   counts, telemetry record order — **bit-identical** to the serial path
   for the same :class:`~repro.experiment.harness.TrialConfig`.

Scheme factories often close over big model objects (a trained TTP, a
Pensieve policy) as lambdas, which do not pickle.  On platforms with the
``fork`` start method (Linux), workers inherit the specs by copy-on-write
fork, so nothing needs to pickle.  Elsewhere the engine tries to pickle the
payload for ``spawn`` workers and falls back to the serial loop when it
cannot — correctness first, speedup where the platform allows.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.abr.base import AbrAlgorithm
from repro.experiment.harness import (
    SessionShard,
    ThroughputReport,
    TrialConfig,
    TrialResult,
    WorkerTiming,
    assign_expt_ids,
    merge_shards,
    run_session,
)
from repro.experiment.schemes import SchemeSpec

DEFAULT_CHUNKS_PER_WORKER = 4
"""Target number of chunks handed to each worker (load balancing: sessions
have heavy-tailed durations, so fine-grained chunks stop one long chunk from
straggling the whole pool)."""

WorkerPayload = Tuple[List[SchemeSpec], TrialConfig, Dict[str, int]]


@dataclass
class _WorkerState:
    """Per-process worker state with explicit fork-inheritance semantics.

    There is exactly one instance per process, the module-level
    ``_WORKER_STATE`` singleton, and it is written at exactly three points:

    * ``payload`` is set by the **parent** immediately before the pool
      forks (and cleared when the pool is done), so forked children inherit
      the specs/config/expt-id mapping by copy-on-write without pickling.
      Spawn children receive a pickled copy via :func:`_init_spawn_worker`
      instead.
    * ``algorithms`` is the per-process scheme-instance cache: each
      **worker** builds it on the first chunk it executes and reuses it for
      every later chunk in that process.  Instances never cross a process
      boundary, and the parent's copy is never populated — which is what
      removes the cross-session shared-instance hazard of the historical
      single-loop harness.

    This is deliberate, documented impure state on the pure session path;
    the writes below carry ``repro: allow-PURE001`` suppressions that point
    back at this contract.
    """

    payload: Optional[WorkerPayload] = None
    algorithms: Optional[Dict[str, AbrAlgorithm]] = None

    def adopt_payload(self, payload: Optional[WorkerPayload]) -> None:
        """Parent-side: stage (or clear) the payload around a pool's life."""
        self.payload = payload
        # A stale cache must never outlive its payload (tests re-enter the
        # pool within one process; workers always start from None anyway).
        self.algorithms = None

    def require_payload(self) -> WorkerPayload:
        if self.payload is None:
            raise RuntimeError("worker payload missing (pool misconfigured)")
        return self.payload

_WORKER_STATE = _WorkerState()


@dataclass
class _ChunkResult:
    """One chunk of sessions simulated by one worker."""

    worker: int
    shards: List[SessionShard]
    busy_s: float


def _init_spawn_worker(payload_bytes: bytes) -> None:
    """Pool initializer for spawn-based platforms."""
    _WORKER_STATE.adopt_payload(pickle.loads(payload_bytes))


def _run_chunk(session_ids: Sequence[int]) -> _ChunkResult:
    """Simulate a contiguous chunk of sessions in this worker process."""
    specs, config, expt_ids = _WORKER_STATE.require_payload()
    if _WORKER_STATE.algorithms is None:
        # Per-worker scheme instances: built once per process, reused across
        # this worker's sessions, never shared with any other process (see
        # the _WorkerState contract above).
        # repro: allow-PURE001(per-process scheme cache; instances never cross a process boundary, see _WorkerState)
        _WORKER_STATE.algorithms = {spec.name: spec.build() for spec in specs}
    algorithms = _WORKER_STATE.algorithms
    # repro: allow-DET002(per-worker busy-time report; never enters results) repro: allow-PURE002(busy-time report only; never enters session results)
    start = time.perf_counter()
    shards = [
        run_session(specs, config, session_id, expt_ids, algorithms)
        for session_id in session_ids
    ]
    return _ChunkResult(
        worker=os.getpid(),
        shards=shards,
        # repro: allow-DET002(per-worker busy-time report; never enters results) repro: allow-PURE002(busy-time report only; never enters session results)
        busy_s=time.perf_counter() - start,
    )


def plan_chunks(
    n_sessions: int, workers: int, chunk_size: Optional[int] = None
) -> List[range]:
    """Contiguous session-id chunks for the pool (deterministic)."""
    if n_sessions <= 0:
        raise ValueError("n_sessions must be positive")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunk_size is None:
        chunk_size = max(
            1, math.ceil(n_sessions / (workers * DEFAULT_CHUNKS_PER_WORKER))
        )
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [
        range(start, min(start + chunk_size, n_sessions))
        for start in range(0, n_sessions, chunk_size)
    ]


def _payload_for_spawn(
    payload: Tuple[List[SchemeSpec], TrialConfig, Dict[str, int]],
) -> Optional[bytes]:
    """Pickle the worker payload, or ``None`` if it cannot travel."""
    try:
        return pickle.dumps(payload)
    except (pickle.PicklingError, AttributeError, TypeError):
        return None


def run_trial_parallel(
    specs: Sequence[SchemeSpec],
    config: TrialConfig,
    workers: int,
    chunk_size: Optional[int] = None,
) -> TrialResult:
    """Run a randomized trial sharded across ``workers`` processes.

    Bit-identical to ``RandomizedTrial(specs, config).run()`` for the same
    ``config``: same sessions, same stream records, same CONSORT counts,
    same telemetry records in the same order.  Falls back to the serial
    loop (with a ``mode="serial"`` throughput report) when the platform can
    neither fork nor pickle the scheme specs.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    specs = list(specs)
    names = [spec.name for spec in specs]
    if not specs:
        raise ValueError("need at least one scheme")
    if len(set(names)) != len(names):
        raise ValueError("scheme names must be unique")

    workers = min(workers, config.n_sessions)
    expt_ids = assign_expt_ids(specs, config.seed)
    payload = (specs, config, expt_ids)

    if workers == 1:
        from repro.experiment.harness import RandomizedTrial

        return RandomizedTrial(specs, config).run()

    chunks = plan_chunks(config.n_sessions, workers, chunk_size)
    effective_chunk = len(chunks[0])

    try:
        ctx = multiprocessing.get_context("fork")
        mode = "fork"
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context()
        mode = ctx.get_start_method()

    # repro: allow-DET002(throughput report timing; never enters results)
    start = time.perf_counter()
    chunk_results: List[_ChunkResult]
    if mode == "fork":
        # Parent-side payload staging: forked children inherit the singleton
        # copy-on-write (see the _WorkerState contract).
        _WORKER_STATE.adopt_payload(payload)
        try:
            with ctx.Pool(processes=workers) as pool:
                chunk_results = pool.map(_run_chunk, chunks, chunksize=1)
        finally:
            _WORKER_STATE.adopt_payload(None)
    else:  # pragma: no cover - non-fork platforms
        payload_bytes = _payload_for_spawn(payload)
        if payload_bytes is None:
            # Unpicklable factories and no fork: correctness over speedup.
            from repro.experiment.harness import RandomizedTrial

            return RandomizedTrial(specs, config).run()
        with ctx.Pool(
            processes=workers,
            initializer=_init_spawn_worker,
            initargs=(payload_bytes,),
        ) as pool:
            chunk_results = pool.map(_run_chunk, chunks, chunksize=1)
    wall = time.perf_counter() - start  # repro: allow-DET002(throughput report timing; never enters results)

    shards = [shard for result in chunk_results for shard in result.shards]
    per_worker: Dict[int, List[_ChunkResult]] = {}
    for result in chunk_results:
        per_worker.setdefault(result.worker, []).append(result)
    timings = [
        WorkerTiming(
            worker=worker,
            sessions=sum(len(r.shards) for r in results),
            streams=sum(
                len(shard.session.streams)
                for r in results
                for shard in r.shards
            ),
            busy_s=sum(r.busy_s for r in results),
            chunks=len(results),
        )
        for worker, results in sorted(per_worker.items())
    ]
    # repro: allow-DET002(throughput report timing; never enters results)
    merge_start = time.perf_counter()
    trial = merge_shards(specs, config, expt_ids, shards)
    merge_s = time.perf_counter() - merge_start  # repro: allow-DET002(throughput report timing; never enters results)
    trial.throughput = ThroughputReport(
        mode=mode,
        workers=workers,
        n_sessions=config.n_sessions,
        n_streams=sum(t.streams for t in timings),
        wall_s=wall,
        chunk_size=effective_chunk,
        merge_s=merge_s,
        per_worker=timings,
    )
    if trial.obs is not None:
        from repro import obs

        trial.obs.metrics.observe(
            "profile.trial_merge_s", merge_s, spec=obs.TIME_SPEC, wallclock=True
        )
    return trial


# ---------------------------------------------------------------------------
# Generic forked map — used by the in-situ collection loop.
# ---------------------------------------------------------------------------
_FORK_MAP_STATE: Optional[Tuple[object, object]] = None


def _fork_map_call(item):
    if _FORK_MAP_STATE is None:
        raise RuntimeError("fork_map worker state missing")
    fn, payload = _FORK_MAP_STATE
    return fn(payload, item)


def fork_map(fn, payload, items: Sequence, workers: int) -> List:
    """``[fn(payload, item) for item in items]`` across a forked pool.

    ``payload`` travels to the workers by fork inheritance (copy-on-write),
    so it may hold unpicklable objects such as live algorithm instances; the
    per-item results must pickle.  Order is preserved.  Falls back to an
    in-process loop when ``workers <= 1``, when there are few items, or when
    the platform cannot fork.
    """
    items = list(items)
    workers = min(int(workers), len(items))
    if workers <= 1:
        return [fn(payload, item) for item in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return [fn(payload, item) for item in items]
    global _FORK_MAP_STATE
    _FORK_MAP_STATE = (fn, payload)
    try:
        with ctx.Pool(processes=workers) as pool:
            return pool.map(_fork_map_call, items, chunksize=1)
    finally:
        _FORK_MAP_STATE = None

"""Scale presets for the randomized trial.

The paper's primary experiment is enormous (337,170 sessions, 8.5
stream-years considered). Simulating it verbatim is possible but slow, so
the harness ships three calibrated presets:

* ``smoke_trial_config`` — seconds; CI and unit tests.
* ``bench_trial_config`` — minutes; the default for the figure benchmarks
  (wide-but-honest confidence intervals, per §3.4).
* ``paper_scale_trial_config`` — hours; the paper's session count and
  time-scale viewer model, for when the fidelity of the statistical claims
  themselves is under study.
"""

from __future__ import annotations

from repro.experiment.harness import TrialConfig
from repro.experiment.watch import PAPER_SCALE_VIEWER, ViewerModel

PAPER_SESSIONS = 337_170
"""Sessions randomized in the paper's primary experiment (Fig. A1)."""


def smoke_trial_config(seed: int = 0) -> TrialConfig:
    """Tiny trial for tests: ~50 sessions, short views."""
    viewer = ViewerModel(
        view_log_mean_s=3.9,  # ~50 s median views
        view_log_sigma=0.8,
        tail_threshold_s=600.0,
        tail_block_s=120.0,
    )
    return TrialConfig(n_sessions=50, seed=seed, viewer=viewer)


def bench_trial_config(n_sessions: int = 1200, seed: int = 42) -> TrialConfig:
    """The benchmark default: enough streams for stable SSIM comparisons;
    stall-ratio CIs remain wide — which the statistical benches then
    quantify rather than hide."""
    return TrialConfig(n_sessions=n_sessions, seed=seed)


def paper_scale_trial_config(
    n_sessions: int = PAPER_SESSIONS, seed: int = 0
) -> TrialConfig:
    """The paper's scale: its session count and the full-time-scale viewer
    (mean session ~30 min, 2.5 h tail threshold). Expect hours of runtime
    and ~8 stream-years of simulated viewing."""
    return TrialConfig(
        n_sessions=n_sessions, seed=seed, viewer=PAPER_SCALE_VIEWER
    )

"""Scheme registry — the Fig. 5 feature matrix, executable.

Each :class:`SchemeSpec` records the distinguishing features the paper
tabulates (control type, predictor type, optimization goal, training mode)
and knows how to construct a fresh instance of the algorithm. ``expt_id``
assignment and blinding live in the harness; the registry is the ground
truth for which schemes exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.abr.base import AbrAlgorithm
from repro.abr.bba import BBA
from repro.abr.mpc import MpcHm, RobustMpcHm
from repro.abr.pensieve import ActorCritic, Pensieve
from repro.core.fugu import Fugu
from repro.core.ttp import TransmissionTimePredictor


@dataclass(frozen=True)
class SchemeSpec:
    """One row of the Fig. 5 table."""

    name: str
    control: str
    predictor: str
    optimization_goal: str
    how_trained: str
    factory: Callable[[], AbrAlgorithm]

    def build(self) -> AbrAlgorithm:
        algorithm = self.factory()
        if algorithm.name != self.name:
            raise ValueError(
                f"factory for {self.name!r} built {algorithm.name!r}"
            )
        return algorithm


def primary_experiment_schemes(
    fugu_predictor: TransmissionTimePredictor,
    pensieve_model: ActorCritic,
    emulation_fugu_predictor: Optional[TransmissionTimePredictor] = None,
) -> List[SchemeSpec]:
    """The five primary-experiment schemes (plus, optionally, the
    emulation-trained Fugu arm of Fig. 11), as specified in Fig. 5."""
    specs = [
        SchemeSpec(
            name="bba",
            control="classical (prop. control)",
            predictor="n/a",
            optimization_goal="+SSIM s.t. bitrate < limit",
            how_trained="n/a",
            factory=BBA,
        ),
        SchemeSpec(
            name="mpc_hm",
            control="classical (MPC)",
            predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a",
            factory=MpcHm,
        ),
        SchemeSpec(
            name="robust_mpc_hm",
            control="classical (robust MPC)",
            predictor="classical (HM)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="n/a",
            factory=RobustMpcHm,
        ),
        SchemeSpec(
            name="pensieve",
            control="learned (DNN)",
            predictor="n/a",
            optimization_goal="+bitrate, -stalls, -dbitrate",
            how_trained="reinforcement learning in simulation",
            factory=lambda: Pensieve(pensieve_model),
        ),
        SchemeSpec(
            name="fugu",
            control="classical (MPC)",
            predictor="learned (DNN)",
            optimization_goal="+SSIM, -stalls, -dSSIM",
            how_trained="supervised learning in situ",
            factory=lambda: Fugu(fugu_predictor),
        ),
    ]
    if emulation_fugu_predictor is not None:
        specs.append(
            SchemeSpec(
                name="fugu_emulation",
                control="classical (MPC)",
                predictor="learned (DNN)",
                optimization_goal="+SSIM, -stalls, -dSSIM",
                how_trained="supervised learning in emulation",
                factory=lambda: Fugu(
                    emulation_fugu_predictor, name="fugu_emulation"
                ),
            )
        )
    return specs


def generation_scheme_spec(
    name: str, predictor: TransmissionTimePredictor
) -> SchemeSpec:
    """One continually-retrained TTP generation as a fresh RCT arm.

    The continual retraining service (:mod:`repro.fleet.retrain`) enrolls
    every committed model generation under its own arm name, so the RCT
    compares generations against each other and against the classical
    baselines — extending the Fig. 9 cold-start plot into a continuous
    curve.  Each build gets a *copy* of the frozen generation predictor:
    arm instances never share mutable model state.
    """
    return SchemeSpec(
        name=name,
        control="classical (MPC)",
        predictor="learned (DNN)",
        optimization_goal="+SSIM, -stalls, -dSSIM",
        how_trained="continual supervised learning in situ",
        factory=lambda: Fugu(predictor.copy(), name=name),
    )


def scheme_table(specs: List[SchemeSpec]) -> Dict[str, Dict[str, str]]:
    """Render the registry as the Fig. 5 table (name -> feature columns)."""
    return {
        spec.name: {
            "control": spec.control,
            "predictor": spec.predictor,
            "optimization_goal": spec.optimization_goal,
            "how_trained": spec.how_trained,
        }
        for spec in specs
    }

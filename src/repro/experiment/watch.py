"""Viewer behaviour: stream types, watch times, and the QoE-sensitive tail.

The paper's watch-time distribution is heavily skewed (Fig. 10: CCDF
spanning minutes to 1,000 minutes) and a large share of streams never
played or were watched under 4 seconds (Fig. A1: of ~233k streams per arm,
~24% never began and ~37% were watched < 4 s — users rapidly changing
channels). Fugu's higher mean time-on-site was "driven solely by the upper
5% tail of viewership duration (sessions lasting more than 2.5 hours)"
(§5.1) — the distributions are nearly identical until then.

:class:`ViewerModel` reproduces those mechanics:

* a stream is a *zap* (brief channel surf) or a *view* (log-normal watch
  time);
* a view reaching the tail threshold keeps extending in blocks, with a
  continuation probability modulated by experienced QoE — so schemes that
  deliver better quality retain exactly the long-tail viewers, as observed.
"""

from __future__ import annotations

from dataclasses import dataclass


import numpy as np

from repro.streaming.session import StreamResult


@dataclass(frozen=True)
class ViewerModel:
    """Distribution of viewer behaviour, scaled for simulation budgets.

    The defaults are "bench scale": mean view length of a few minutes with a
    tail threshold of 30 minutes, preserving the paper's shape (log-normal
    body, QoE-sensitive Pareto-like tail) at ~1/5 of its time scale.
    """

    zap_fraction: float = 0.55
    zap_max_s: float = 6.0
    abort_fraction: float = 0.08
    view_log_mean_s: float = np.log(150.0)
    view_log_sigma: float = 1.1
    tail_threshold_s: float = 1800.0
    tail_block_s: float = 450.0
    tail_continue_base: float = 0.80
    qoe_stall_sensitivity: float = 8.0
    qoe_ssim_sensitivity: float = 0.03
    ssim_reference_db: float = 15.0
    max_session_s: float = 4.0 * 3600.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.zap_fraction <= 1.0:
            raise ValueError("zap fraction must lie in [0, 1]")
        if not 0.0 <= self.abort_fraction <= 1.0:
            raise ValueError("abort fraction must lie in [0, 1]")
        if not 0.0 <= self.tail_continue_base < 1.0:
            raise ValueError("tail continuation must lie in [0, 1)")
        if self.tail_threshold_s <= 0 or self.tail_block_s <= 0:
            raise ValueError("tail parameters must be positive")

    # ------------------------------------------------------------------
    # Stream-type sampling
    # ------------------------------------------------------------------
    def sample_stream_kind(self, rng: np.random.Generator) -> str:
        """'abort' (leaves before playback), 'zap', or 'view'."""
        u = rng.random()
        if u < self.abort_fraction:
            return "abort"
        if u < self.abort_fraction + self.zap_fraction:
            return "zap"
        return "view"

    def sample_watch_time(self, kind: str, rng: np.random.Generator) -> float:
        if kind == "abort":
            # Leaves almost immediately — typically before the first chunk
            # arrives, producing a "did not begin playing" exclusion.
            return float(rng.uniform(0.02, 0.25))
        if kind == "zap":
            return float(rng.uniform(0.3, self.zap_max_s))
        if kind == "view":
            return float(
                np.exp(rng.normal(self.view_log_mean_s, self.view_log_sigma))
            )
        raise ValueError(f"unknown stream kind {kind!r}")

    # ------------------------------------------------------------------
    # QoE-sensitive tail (Fig. 10 / §5.1)
    # ------------------------------------------------------------------
    def continue_probability(self, result: StreamResult) -> float:
        """Probability of extending one more tail block, given experienced
        QoE so far."""
        p = self.tail_continue_base
        if result.watch_time > 0:
            p -= self.qoe_stall_sensitivity * result.stall_ratio
        mean_ssim = result.mean_ssim_db
        if not np.isnan(mean_ssim):
            p += self.qoe_ssim_sensitivity * (mean_ssim - self.ssim_reference_db)
        return float(np.clip(p, 0.0, 0.97))

    def make_extension_hook(self, rng: np.random.Generator):
        """Build the per-stream extension hook for the simulator."""

        def hook(t: float, result: StreamResult) -> float:
            if t < self.tail_threshold_s or t >= self.max_session_s:
                return 0.0
            if rng.random() < self.continue_probability(result):
                return min(self.tail_block_s, self.max_session_s - t)
            return 0.0

        return hook


PAPER_SCALE_VIEWER = ViewerModel(
    view_log_mean_s=np.log(480.0),
    view_log_sigma=1.4,
    tail_threshold_s=2.5 * 3600.0,
    tail_block_s=1200.0,
    max_session_s=16.0 * 3600.0,
)
"""Viewer model at the paper's actual time scale (mean session ~30 min,
tail threshold 2.5 h). Expensive to simulate; used by paper-scale runs."""

"""repro.fleet — deployment-scale workload generation and streaming
aggregation.

The paper's statistics come from *operating* Puffer continuously — months of
randomized sessions from ~63,000 users adding up to ~38 stream-years — not
from fixed-size batch runs.  ``repro.fleet`` turns the batch trial of
:mod:`repro.experiment` into an open-ended deployment simulator:

* :mod:`repro.fleet.workload` — seeded session-arrival processes over
  simulated calendar days (non-homogeneous Poisson with a diurnal cycle and
  optional flash crowds), with per-session viewer behaviour still drawn via
  :class:`repro.experiment.watch.ViewerModel` inside ``run_session``;
* :mod:`repro.fleet.sinks` — mergeable, *exactly*-merging streaming
  aggregates (integer-scaled exact sums, log-binned histograms reusing the
  bin layout of :mod:`repro.obs`) that consume each stream result as it
  completes and discard it, so memory is O(1) in the number of sessions;
* :mod:`repro.fleet.checkpoint` — crash-safe (tmp+rename) JSON checkpoints
  of the sink state and the next-undone session id, so a killed run resumes
  to a byte-identical metrics dump;
* :mod:`repro.fleet.runner` — the driver: reuses the pure
  :func:`repro.experiment.harness.run_session`, shards chunks across a
  forked process pool, commits results in session-id order, and checkpoints
  after every committed chunk;
* :mod:`repro.fleet.retrain` — the continual learning-in-situ service:
  consumes the streamed telemetry archive at simulated day boundaries,
  retrains the TTP per day (recency-weighted, warm-started), versions each
  generation in an on-disk :class:`ModelRegistry` with checkpointed
  lineage, and enrolls every generation as a fresh arm in the running RCT.

Determinism contract: the final metrics dump is **byte-identical** for the
same :class:`FleetConfig` regardless of worker count, of checkpoint cadence,
and of where (if anywhere) the run was killed and resumed.  This holds
because every accumulator in the sink layer merges *exactly* (integer
arithmetic), every per-session contribution is a pure function of
``(seed, session_id)``, and commits happen in session-id order.
"""

from repro.fleet.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointError,
    CheckpointManager,
    FleetCheckpoint,
)
from repro.fleet.retrain import (
    REGISTRY_SCHEMA_VERSION,
    GenerationEntry,
    ModelRegistry,
    RegistryError,
    RetrainConfig,
    run_fleet_retrain,
)
from repro.fleet.runner import (
    FleetConfig,
    FleetResult,
    FleetThroughput,
    format_sink_table,
    run_fleet,
)
from repro.fleet.sinks import (
    ExactSum,
    FleetHistogram,
    FleetSink,
    StreamingMoments,
    StreamingSchemeSink,
    WeightedMoments,
)
from repro.fleet.workload import (
    FlashCrowd,
    SessionArrival,
    WorkloadConfig,
    WorkloadGenerator,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointManager",
    "ExactSum",
    "FlashCrowd",
    "FleetCheckpoint",
    "FleetConfig",
    "FleetHistogram",
    "FleetResult",
    "FleetSink",
    "FleetThroughput",
    "GenerationEntry",
    "ModelRegistry",
    "REGISTRY_SCHEMA_VERSION",
    "RegistryError",
    "RetrainConfig",
    "SessionArrival",
    "StreamingMoments",
    "StreamingSchemeSink",
    "WeightedMoments",
    "WorkloadConfig",
    "WorkloadGenerator",
    "format_sink_table",
    "run_fleet",
    "run_fleet_retrain",
]

"""Crash-safe checkpoint/resume for fleet runs.

A deployment simulator must survive being killed: the paper's data comes
from months of continuous operation, and a batch harness that loses
everything on SIGKILL cannot model that.  The fleet driver checkpoints
after every committed chunk:

* the **sink state** (exactly serialized — see
  :mod:`repro.fleet.sinks`);
* the **next undone session id** (sessions are committed strictly in id
  order, so one integer captures progress);
* optional **archive byte offsets**, so a streamed open-data archive can be
  truncated back to the last durable commit on resume;
* a **config fingerprint**, so a checkpoint is never resumed under a
  different configuration (which would silently corrupt the statistics).

Writes are atomic via :func:`repro.atomio.atomic_write_text` (tmp +
``fsync`` + ``os.replace`` + directory fsync) — a kill at any instant
leaves either the previous checkpoint or the new one, never a torn file.  Combined with exact sink
serialization and sessions being pure functions of ``(seed, session_id)``,
resuming from *any* surviving checkpoint reproduces a byte-identical final
metrics dump.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.atomio import atomic_write_text
from repro.fleet.sinks import FleetSink

CHECKPOINT_SCHEMA_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint exists but cannot be used (corrupt, wrong schema, or
    written under a different configuration)."""


@dataclass
class FleetCheckpoint:
    """Everything needed to continue a fleet run from a durable point."""

    fingerprint: str
    next_session_id: int
    sink: FleetSink
    archive_offsets: Optional[Dict[str, int]] = None
    cli_args: Optional[dict] = None
    """The CLI parameters that launched the run (``repro fleet resume``
    reconstructs its configuration from these; ``None`` for API runs)."""

    completed: bool = False
    """True once every session in the workload has been committed."""

    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "next_session_id": self.next_session_id,
            "sink": self.sink.to_dict(),
            "archive_offsets": self.archive_offsets,
            "cli_args": self.cli_args,
            "completed": self.completed,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetCheckpoint":
        version = int(data.get("schema_version", 0))
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint schema version {version} "
                f"(expected {CHECKPOINT_SCHEMA_VERSION})"
            )
        offsets = data.get("archive_offsets")
        return cls(
            fingerprint=str(data["fingerprint"]),
            next_session_id=int(data["next_session_id"]),
            sink=FleetSink.from_dict(data["sink"]),
            archive_offsets=(
                {str(k): int(v) for k, v in sorted(offsets.items())}
                if offsets is not None
                else None
            ),
            cli_args=data.get("cli_args"),
            completed=bool(data.get("completed", False)),
            extra=dict(data.get("extra", {})),
        )


def config_fingerprint(*parts: object) -> str:
    """SHA-256 over the canonical JSON of the run's configuration.

    Callers pass JSON-ready dicts (workload config, trial knobs, scheme
    names); any change to any of them produces a different fingerprint and
    refuses to resume.
    """
    canonical = json.dumps(list(parts), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CheckpointManager:
    """Atomic save/load of :class:`FleetCheckpoint` at a fixed path."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.saves = 0

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def save(self, checkpoint: FleetCheckpoint) -> None:
        """Durably replace the checkpoint (tmp + fsync + rename)."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        payload = json.dumps(
            checkpoint.to_dict(), sort_keys=True, separators=(",", ":")
        )
        atomic_write_text(self.path, payload + "\n")
        self.saves += 1

    def load(self, expected_fingerprint: Optional[str] = None) -> FleetCheckpoint:
        """Read and validate the checkpoint.

        Raises :class:`FileNotFoundError` when absent and
        :class:`CheckpointError` when corrupt or — if
        ``expected_fingerprint`` is given — written under a different
        configuration.
        """
        with open(self.path) as f:
            try:
                data = json.load(f)
            except json.JSONDecodeError as exc:
                raise CheckpointError(
                    f"corrupt checkpoint {self.path}: {exc}"
                ) from exc
        checkpoint = FleetCheckpoint.from_dict(data)
        if (
            expected_fingerprint is not None
            and checkpoint.fingerprint != expected_fingerprint
        ):
            raise CheckpointError(
                f"checkpoint {self.path} was written by a different "
                f"configuration (fingerprint {checkpoint.fingerprint[:12]}… "
                f"!= expected {expected_fingerprint[:12]}…); refusing to "
                "resume — delete the checkpoint to start fresh"
            )
        return checkpoint

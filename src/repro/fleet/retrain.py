"""Continual in-situ TTP retraining as a crash-safe fleet service (§4.3).

This module closes the paper's core loop — *learning in situ* — inside the
simulated deployment: the fleet runs an RCT, streams its telemetry to the
open-data archive, and this service consumes that archive **as it is
written**, retrains the TTP at every simulated day boundary, and enrolls
each new model generation as a fresh arm in the running experiment.  The
Fig. 9 cold-start comparison (1-day vs 14-day Fugu) thereby extends into a
continuous curve: one arm per generation, each with its own QoE summary in
the fleet dump.

Design constraints, inherited from the fleet runner and kept bit-exact:

* **The archive is the training set.**  Day-``d`` telemetry is exactly the
  rows appended between two recorded byte-offset snapshots
  (:meth:`repro.data.archive.ArchiveAppender.offsets` at consecutive day
  boundaries) — no timestamp parsing (telemetry times are
  session-relative), no re-reading of earlier days, O(day) memory.
  Training streams are rebuilt from those rows by
  :func:`repro.data.archive.reconstruct_training_streams`, so the TTP
  learns from what the deployment *logged*, exactly as in the paper.
* **Day-aligned commits.**  Chunks never span an arrival-day boundary.
  This is what makes the run reproducible at any worker count and chunk
  size: every session of day ``d`` is simulated against the same arm set
  (base schemes + generations committed strictly before day ``d``), and
  the fork-pool payload is rebuilt per day segment because enrollment
  changes the spec list.
* **Crash safety = replayability.**  The checkpoint's ``extra`` slot
  carries the retrain state (generation count, the window's archive
  byte-ranges, the open day's start offsets).  On resume the registry is
  truncated back to the checkpointed generation count, the predictor is
  reloaded from its last committed generation (JSON float round-trips are
  exact, so reloads are *bitwise* identical), the sliding window is
  rebuilt from the archive byte-ranges, and the day replays — a ``kill
  -9`` at any instant leaves the final registry and dump byte-identical
  to an uninterrupted run.

The differential contract — the continual service equals a from-scratch
:class:`repro.core.train.DailyRetrainer` fed the same archive day by day,
with identical ``state_dict()`` per generation and no tolerance — is locked
in by ``tests/fleet/test_retrain.py``.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs
from repro.atomio import atomic_write_bytes
from repro.crashpoints import crashpoint
from repro.core.train import (
    RECENCY_DECAY,
    RETRAIN_WINDOW_DAYS,
    DailyRetrainer,
    TtpTrainer,
)
from repro.core.ttp import TransmissionTimePredictor, TtpConfig
from repro.data.archive import ArchiveAppender
from repro.experiment.harness import assign_expt_ids
from repro.experiment.schemes import SchemeSpec, generation_scheme_spec
from repro.fleet.checkpoint import (
    CheckpointManager,
    FleetCheckpoint,
    config_fingerprint,
)
from repro.fleet.runner import (
    FleetConfig,
    FleetResult,
    FleetThroughput,
    _chunked,
    _execute_chunks,
    _FleetChunk,
    _fork_context,
    _resolve_executor,
)
from repro.fleet.sinks import FleetSink
from repro.fleet.workload import SessionArrival, WorkloadGenerator

REGISTRY_SCHEMA_VERSION = 1
"""Version of the on-disk model-registry layout."""

RETRAIN_STATE_VERSION = 1
"""Version of the checkpoint ``extra["retrain"]`` payload."""

_SECONDS_PER_DAY = 86_400.0


class RegistryError(RuntimeError):
    """The model registry on disk cannot be used (corrupt or mismatched)."""


def _canonical_bytes(payload: dict) -> bytes:
    """The registry's canonical serialization (also the hashing surface)."""
    return (
        json.dumps(payload, sort_keys=True, indent=2) + "\n"
    ).encode("utf-8")




# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetrainConfig:
    """The continual-retraining policy (§4.3 knobs + arm naming)."""

    ttp: TtpConfig = field(default_factory=TtpConfig)
    """Architecture of every generation (generations share one config; the
    registry would otherwise not be able to warm-start across them)."""

    window_days: int = RETRAIN_WINDOW_DAYS
    recency_decay: float = RECENCY_DECAY
    epochs_per_day: int = 8
    seed: int = 0
    """Base training seed.  Day ``d``'s retraining uses ``seed + d`` (via
    :class:`~repro.core.train.DailyRetrainer`), so every generation is a
    pure function of (archive window, generation index)."""

    arm_prefix: str = "fugu"
    """Generation ``g`` enrolls as arm ``f"{arm_prefix}@g{g:03d}"``."""

    def __post_init__(self) -> None:
        if self.window_days <= 0:
            raise ValueError("window_days must be positive")
        if not 0.0 < self.recency_decay <= 1.0:
            raise ValueError("recency_decay must lie in (0, 1]")
        if self.epochs_per_day < 1:
            raise ValueError("epochs_per_day must be >= 1")
        if not self.arm_prefix:
            raise ValueError("arm_prefix must be non-empty")

    def arm_name(self, generation: int) -> str:
        return f"{self.arm_prefix}@g{generation:03d}"

    def to_dict(self) -> dict:
        """JSON-ready form; part of the checkpoint fingerprint."""
        return {
            "ttp": self.ttp.to_dict(),
            "window_days": self.window_days,
            "recency_decay": self.recency_decay,
            "epochs_per_day": self.epochs_per_day,
            "seed": self.seed,
            "arm_prefix": self.arm_prefix,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetrainConfig":
        return cls(
            ttp=TtpConfig.from_dict(data["ttp"]),
            window_days=int(data["window_days"]),
            recency_decay=float(data["recency_decay"]),
            epochs_per_day=int(data["epochs_per_day"]),
            seed=int(data["seed"]),
            arm_prefix=str(data["arm_prefix"]),
        )


# ---------------------------------------------------------------------------
# The versioned on-disk model registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GenerationEntry:
    """One committed model generation (a manifest row)."""

    generation: int
    """1-based generation index (== number of retrainings so far)."""

    day: int
    """The 1-based retrainer day whose close produced this generation."""

    arm: str
    filename: str
    sha256: str
    """SHA-256 of the generation file's canonical bytes."""

    parent_sha256: Optional[str]
    """Hash of the previous generation's file (lineage chain); ``None``
    for the first generation (warm-started from random init)."""

    def to_dict(self) -> dict:
        return {
            "generation": self.generation,
            "day": self.day,
            "arm": self.arm,
            "filename": self.filename,
            "sha256": self.sha256,
            "parent_sha256": self.parent_sha256,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerationEntry":
        parent = data.get("parent_sha256")
        return cls(
            generation=int(data["generation"]),
            day=int(data["day"]),
            arm=str(data["arm"]),
            filename=str(data["filename"]),
            sha256=str(data["sha256"]),
            parent_sha256=None if parent is None else str(parent),
        )


class ModelRegistry:
    """Versioned on-disk store of TTP generations with checkpointed lineage.

    Layout: ``manifest.json`` (ordered generation entries) plus one
    ``gen-NNNN.json`` per generation holding the full payload — parent
    hash, training window (day numbers), eval metrics, and the exact
    ``state_dict``.  All files are canonical JSON written atomically, so
    a replayed run rewrites byte-identical files; :meth:`truncate` rolls
    the registry back to a checkpointed generation count on resume,
    deleting any file a crash left beyond the durable state.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: List[GenerationEntry] = []
        manifest = self._manifest_path()
        if manifest.exists():
            try:
                data = json.loads(manifest.read_text())
            except json.JSONDecodeError as exc:
                raise RegistryError(
                    f"corrupt registry manifest {manifest}: {exc}"
                ) from exc
            version = int(data.get("schema_version", 0))
            if version != REGISTRY_SCHEMA_VERSION:
                raise RegistryError(
                    f"unsupported registry schema version {version} "
                    f"(expected {REGISTRY_SCHEMA_VERSION})"
                )
            self._entries = [
                GenerationEntry.from_dict(entry)
                for entry in data["generations"]
            ]
            for i, entry in enumerate(self._entries):
                if entry.generation != i + 1:
                    raise RegistryError(
                        f"registry manifest out of order at index {i}"
                    )

    def _manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @staticmethod
    def _filename(generation: int) -> str:
        return f"gen-{generation:04d}.json"

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def generations(self) -> Tuple[GenerationEntry, ...]:
        return tuple(self._entries)

    def _write_manifest(self) -> None:
        payload = {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "generations": [entry.to_dict() for entry in self._entries],
        }
        atomic_write_bytes(self._manifest_path(), _canonical_bytes(payload))

    def _write_generation(self, filename: str, data: bytes) -> None:
        """Durably land one generation file (before the manifest names it)."""
        atomic_write_bytes(self.directory / filename, data)

    def commit(
        self,
        *,
        day: int,
        arm: str,
        state: dict,
        window_days: Sequence[int],
        n_streams_day: int,
        n_streams_window: int,
        evaluation: List[dict],
    ) -> GenerationEntry:
        """Durably append one generation and return its manifest entry.

        The payload is canonical JSON; its SHA-256 chains to the previous
        generation's hash, giving the registry a verifiable lineage.  The
        generation file lands (atomically) before the manifest does, so a
        crash between the two leaves an orphan file that the next resume's
        :meth:`truncate` deletes.
        """
        generation = len(self._entries) + 1
        parent = self._entries[-1].sha256 if self._entries else None
        payload = {
            "schema_version": REGISTRY_SCHEMA_VERSION,
            "generation": generation,
            "day": int(day),
            "arm": arm,
            "parent_sha256": parent,
            "window_days": [int(d) for d in window_days],
            "n_streams_day": int(n_streams_day),
            "n_streams_window": int(n_streams_window),
            "eval": evaluation,
            "state_dict": state,
        }
        data = _canonical_bytes(payload)
        sha = hashlib.sha256(data).hexdigest()
        filename = self._filename(generation)
        self._write_generation(filename, data)
        crashpoint(f"registry.commit-boundary:{filename}")
        entry = GenerationEntry(
            generation=generation,
            day=int(day),
            arm=arm,
            filename=filename,
            sha256=sha,
            parent_sha256=parent,
        )
        self._entries.append(entry)
        self._write_manifest()
        return entry

    def truncate(self, n_generations: int) -> None:
        """Roll back to the first ``n_generations`` entries.

        Deletes every ``gen-*.json`` beyond the kept count — including
        orphans a crash wrote after the last durable checkpoint — and
        rewrites the manifest, so a resumed run re-derives the dropped
        generations into byte-identical files.
        """
        if n_generations < 0:
            raise ValueError("n_generations must be >= 0")
        if n_generations > len(self._entries):
            raise RegistryError(
                f"checkpoint expects {n_generations} generations but the "
                f"registry manifest has only {len(self._entries)}"
            )
        self._entries = self._entries[:n_generations]
        for path in sorted(self.directory.glob("gen-*.json")):
            try:
                index = int(path.stem.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if index > n_generations:
                path.unlink()
        self._write_manifest()

    def load_payload(self, generation: Optional[int] = None) -> dict:
        """Read one generation's full payload, verifying its hash."""
        if not self._entries:
            raise RegistryError("registry is empty")
        if generation is None:
            generation = self._entries[-1].generation
        if not 1 <= generation <= len(self._entries):
            raise RegistryError(f"no generation {generation} in registry")
        entry = self._entries[generation - 1]
        path = self.directory / entry.filename
        data = path.read_bytes()
        sha = hashlib.sha256(data).hexdigest()
        if sha != entry.sha256:
            raise RegistryError(
                f"generation file {path} does not match its manifest hash"
            )
        result: dict = json.loads(data.decode("utf-8"))
        return result

    def load_predictor(
        self, generation: Optional[int] = None
    ) -> TransmissionTimePredictor:
        """Rebuild a generation's predictor — bitwise identical to the one
        committed (JSON float serialization round-trips exactly)."""
        payload = self.load_payload(generation)
        return TransmissionTimePredictor.from_state_dict(
            payload["state_dict"]
        )

    def format_table(self) -> str:
        """Lineage table for the ``repro fleet models`` CLI."""
        lines = [
            f"{'Gen':>4}{'Day':>5}  {'Arm':<12}{'Window':<10}"
            f"{'Streams':>8}  {'XEnt':>7}  {'SHA-256':<14}Parent"
        ]
        for entry in self._entries:
            payload = self.load_payload(entry.generation)
            window = payload["window_days"]
            span = (
                f"d{window[0]}–d{window[-1]}" if window else "—"
            )
            evals = payload["eval"]
            xent = (
                f"{evals[0]['cross_entropy']:.4f}" if evals else "—"
            )
            parent = (
                entry.parent_sha256[:12]
                if entry.parent_sha256 is not None
                else "(genesis)"
            )
            lines.append(
                f"{entry.generation:>4}{entry.day:>5}  {entry.arm:<12}"
                f"{span:<10}{payload['n_streams_window']:>8}  {xent:>7}  "
                f"{entry.sha256[:12]:<14}{parent}"
            )
        lines.append(
            f"{len(self._entries)} generation(s) in {self.directory}"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Day-aligned arrival feed
# ---------------------------------------------------------------------------
class _ArrivalFeed:
    """Peekable arrival stream, split at day boundaries.

    Arrivals come time-ordered from the workload generator; this wrapper
    hands out one day at a time, holding back the first arrival of a later
    day so chunks never span a boundary.
    """

    def __init__(self, arrivals: Iterator[SessionArrival]) -> None:
        self._arrivals = arrivals
        self._pending: Optional[SessionArrival] = None

    def take_day(self, day: int) -> Iterator[SessionArrival]:
        if self._pending is not None:
            if self._pending.day != day:
                return
            pending, self._pending = self._pending, None
            yield pending
        for arrival in self._arrivals:
            if arrival.day == day:
                yield arrival
            else:
                self._pending = arrival
                return


# ---------------------------------------------------------------------------
# The continual driver
# ---------------------------------------------------------------------------
def run_fleet_retrain(
    base_specs: Sequence[SchemeSpec],
    config: FleetConfig,
    retrain: RetrainConfig,
    archive_dir: Union[str, Path],
    registry_dir: Union[str, Path],
    workers: int = 1,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    stop_after_sessions: Optional[int] = None,
    cli_args: Optional[dict] = None,
    on_commit: Optional[Callable[[int, FleetSink], None]] = None,
) -> FleetResult:
    """Run (or resume) a deployment with continual in-situ TTP retraining.

    Extends :func:`repro.fleet.runner.run_fleet` with the learning loop:
    at every simulated day boundary the service reconstructs the day's
    training streams from the archive byte-range written during that day,
    slides them into the retraining window, retrains the TTP (recency
    weighted, warm started — :class:`~repro.core.train.DailyRetrainer`
    semantics exactly), commits the new generation to ``registry_dir``,
    and enrolls it as a fresh arm for all subsequent days.

    ``archive_dir`` and ``registry_dir`` are mandatory: the archive *is*
    the training set, and the registry is both the product and the
    resume-time source of truth for model state.  A fresh run requires an
    empty registry; ``resume=True`` continues from the checkpoint
    (truncating the registry and archive back to the last durable commit),
    or starts fresh when no checkpoint exists yet — wiping whatever a
    crash before the first checkpoint may have left in the registry.

    The dump, checkpoint, registry, and archive are byte-identical at any
    worker count, any chunk size, either executor, and across ``kill -9``
    + resume at any instant.
    """
    base_specs = list(base_specs)
    if not base_specs:
        raise ValueError("need at least one base scheme")
    names = [spec.name for spec in base_specs]
    if len(set(names)) != len(names):
        raise ValueError("scheme names must be unique")
    marker = f"{retrain.arm_prefix}@g"
    if any(name.startswith(marker) for name in names):
        raise ValueError(
            f"base scheme names must not collide with generation arms "
            f"({marker}…)"
        )
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if stop_after_sessions is not None and stop_after_sessions < 1:
        raise ValueError("stop_after_sessions must be >= 1")
    if config.edge is not None:
        raise ValueError(
            "edge cell mode is not supported with continual retraining "
            "(set FleetConfig.edge=None)"
        )

    fingerprint = config_fingerprint(
        config.fingerprint(base_specs), retrain.to_dict()
    )
    # The archive is mandatory here: telemetry is always collected.
    trial = replace(config.trial, n_sessions=1, collect_telemetry=True)
    executor = _resolve_executor(config.executor, base_specs, trial)
    registry = ModelRegistry(registry_dir)
    manager = (
        CheckpointManager(checkpoint_path)
        if checkpoint_path is not None
        else None
    )

    sink = FleetSink()
    next_session_id = 0
    day_counter = 0
    window_slices: List[Tuple[int, Dict[str, int], Dict[str, int]]] = []
    day_start_offsets: Optional[Dict[str, int]] = None
    stored_offsets: Optional[Dict[str, int]] = None

    if resume and manager is not None and manager.exists():
        checkpoint = manager.load(expected_fingerprint=fingerprint)
        state = checkpoint.extra.get("retrain")
        if state is None:
            raise RegistryError(
                "checkpoint has no retrain state (written by plain "
                "`repro fleet run`?)"
            )
        version = int(state.get("schema_version", 0))
        if version != RETRAIN_STATE_VERSION:
            raise RegistryError(
                f"unsupported retrain state version {version}"
            )
        sink = checkpoint.sink
        next_session_id = checkpoint.next_session_id
        stored_offsets = checkpoint.archive_offsets
        registry.truncate(int(state["generations"]))
        day_counter = int(state["day_counter"])
        window_slices = [
            (
                int(day),
                {str(k): int(v) for k, v in sorted(start.items())},
                {str(k): int(v) for k, v in sorted(end.items())},
            )
            for day, start, end in state["window"]
        ]
        day_start_offsets = {
            str(k): int(v)
            for k, v in sorted(state["day_start_offsets"].items())
        }
    else:
        if len(registry) and not resume:
            raise RegistryError(
                f"registry {registry.directory} is not empty; pass "
                "resume=True to continue or point at a fresh directory"
            )
        # resume=True with no checkpoint yet: a crash may have landed
        # before the first checkpoint — roll the registry back to empty.
        registry.truncate(0)

    appender = ArchiveAppender(archive_dir)
    if stored_offsets is not None:
        appender.truncate_to(stored_offsets)
    elif resume:
        # Fresh start under --resume: the crash landed before the first
        # checkpoint ever committed, so (like the registry rollback
        # above) any rows a dead run appended are uncommitted — clear
        # them, or the restart would append after leftovers and diverge.
        appender.reset()
    if day_start_offsets is None:
        day_start_offsets = appender.offsets()

    # Learner state: the predictor is the last committed generation (or a
    # fresh seeded init), the window is rebuilt from archive byte-ranges.
    if len(registry):
        predictor = registry.load_predictor()
    else:
        predictor = TransmissionTimePredictor(retrain.ttp, seed=retrain.seed)
    retrainer = DailyRetrainer.restore(
        predictor,
        day_counter,
        [
            (day, appender.reconstruct_streams(start, end))
            for day, start, end in window_slices
        ],
        window_days=retrain.window_days,
        recency_decay=retrain.recency_decay,
        epochs_per_day=retrain.epochs_per_day,
        seed=retrain.seed,
    )
    specs = list(base_specs)
    for entry in registry.generations:
        specs.append(
            generation_scheme_spec(
                entry.arm, registry.load_predictor(entry.generation)
            )
        )

    def retrain_state() -> dict:
        return {
            "schema_version": RETRAIN_STATE_VERSION,
            "generations": len(registry),
            "day_counter": retrainer.current_day,
            "window": [
                [day, start, end] for day, start, end in window_slices
            ],
            "day_start_offsets": day_start_offsets,
        }

    def save_checkpoint(completed: bool) -> None:
        if manager is None:
            return
        appender.flush(sync=True)
        # Commit order: archive rows must be durable before the
        # checkpoint durably records their byte offsets (DUR003 pair).
        crashpoint("retrain.checkpoint-boundary")
        manager.save(
            FleetCheckpoint(
                fingerprint=fingerprint,
                next_session_id=next_session_id,
                sink=sink,
                archive_offsets=appender.offsets(),
                cli_args=cli_args,
                completed=completed,
                extra={"retrain": retrain_state()},
            )
        )

    commits = 0
    sessions_this_run = 0
    streams_this_run = 0
    stopped = False
    # repro: allow-DET002(throughput report timing; never enters results)
    start_wall = time.perf_counter()

    def should_stop() -> bool:
        return (
            stop_after_sessions is not None
            and next_session_id >= stop_after_sessions
        )

    def close_day() -> None:
        """Day boundary: slide the window, retrain, commit, enroll."""
        nonlocal day_start_offsets
        appender.flush(sync=True)
        end_offsets = appender.offsets()
        day_streams = appender.reconstruct_streams(
            day_start_offsets, end_offsets
        )
        retrainer.add_day(day_streams)
        window_slices.append(
            (retrainer.current_day, day_start_offsets, end_offsets)
        )
        del window_slices[: max(0, len(window_slices) - retrain.window_days)]
        day_start_offsets = end_offsets
        datasets = retrainer.window_datasets()
        if datasets is not None:
            # The in-situ tail calibration uses the same window as
            # training (reconstructible from the checkpointed byte-ranges,
            # hence resume-exact).
            predictor.calibrate_tail(
                [
                    stream
                    for _, streams in retrainer.window_state()
                    for stream in streams
                ]
            )
            retrainer.retrain()
            evaluator = TtpTrainer(predictor)
            evaluation = []
            for k, dataset in enumerate(datasets):
                result = evaluator.evaluate(dataset, step=k)
                evaluation.append(
                    {
                        "step": k,
                        "cross_entropy": result.cross_entropy,
                        "bin_accuracy": result.bin_accuracy,
                        "expected_abs_error_s": result.expected_abs_error_s,
                        "n_examples": result.n_examples,
                    }
                )
            arm = retrain.arm_name(len(registry) + 1)
            entry = registry.commit(
                day=retrainer.current_day,
                arm=arm,
                state=predictor.state_dict(),
                window_days=[day for day, _, _ in window_slices],
                n_streams_day=len(day_streams),
                n_streams_window=sum(
                    len(streams)
                    for _, streams in retrainer.window_state()
                ),
                evaluation=evaluation,
            )
            # Enroll the frozen generation as a fresh arm for all
            # subsequent days (sessions of *this* day never saw it).
            specs.append(
                generation_scheme_spec(entry.arm, predictor.copy())
            )
            if obs.ENABLED:
                obs.counter_inc("fleet.retrain.generations")
        if obs.ENABLED:
            obs.counter_inc("fleet.retrain.days")
        save_checkpoint(completed=False)

    def commit(chunk_result: _FleetChunk) -> None:
        # repro: allow-CKPT002(the commit counter is wall-clock throughput accounting; a resumed run correctly restarts it at zero)
        nonlocal next_session_id, commits
        # repro: allow-CKPT002(per-run throughput counters; a resumed run correctly restarts them at zero)
        nonlocal sessions_this_run, streams_this_run
        sink.merge(chunk_result.delta)
        if chunk_result.telemetry is not None:
            appender.append(chunk_result.telemetry)
        next_session_id = chunk_result.last_session_id + 1
        commits += 1
        sessions_this_run += chunk_result.delta.sessions
        streams_this_run += chunk_result.n_streams
        save_checkpoint(completed=False)
        if obs.ENABLED:
            obs.counter_inc("fleet.commits")
            obs.counter_inc(
                "fleet.sessions", float(chunk_result.delta.sessions)
            )
        if on_commit is not None:
            on_commit(next_session_id, sink)

    total_days = int(math.ceil(config.workload.days))
    generator = WorkloadGenerator(config.workload)
    feed = _ArrivalFeed(
        generator.arrivals(start_session_id=next_session_id)
    )

    for day in range(day_counter, total_days):
        # Per-day pool: the payload (specs incl. enrolled generations,
        # expt ids) is fork-inherited at pool creation, so each day
        # segment gets its own pool built from the current arm set.
        expt_ids = assign_expt_ids(specs, trial.seed)
        chunk_results = _execute_chunks(
            specs,
            trial,
            expt_ids,
            executor,
            config.batch_lanes,
            _chunked(feed.take_day(day), config.chunk_sessions),
            workers,
        )
        try:
            for chunk_result in chunk_results:
                commit(chunk_result)
                if should_stop():
                    stopped = True
                    break
        finally:
            chunk_results.close()
        if stopped:
            break
        close_day()

    completed = not stopped
    save_checkpoint(completed=completed)
    appender.close()
    # repro: allow-DET002(throughput report timing; never enters results)
    wall = time.perf_counter() - start_wall

    mode = "fork" if _fork_context(workers) is not None else "serial"
    return FleetResult(
        sink=sink,
        config=config,
        scheme_names=[spec.name for spec in specs],
        next_session_id=next_session_id,
        completed=completed,
        throughput=FleetThroughput(
            mode=mode,
            workers=workers,
            sessions=sessions_this_run,
            streams=streams_this_run,
            wall_s=wall,
            commits=commits,
            checkpoints=manager.saves if manager is not None else 0,
            executor=executor,
        ),
        checkpoint_path=checkpoint_path,
        archive_dir=str(archive_dir),
    )

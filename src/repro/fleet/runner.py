"""The fleet driver: open-ended deployment runs at constant memory.

Composes the other three fleet pieces with the existing trial machinery:

* sessions come from the :mod:`repro.fleet.workload` arrival process;
* each session is simulated by the **pure**
  :func:`repro.experiment.harness.run_session` of PR 1 (every draw keyed on
  ``(seed, session_id)``), so the fleet inherits the trial's independence
  and embarrassing parallelism;
* per-chunk results are folded into :class:`repro.fleet.sinks.FleetSink`
  deltas *in the worker* and discarded — only O(chunk) state ever exists;
* the driver commits chunks in session-id order, streams telemetry to the
  open-data archive (optional), and checkpoints after every commit
  (:mod:`repro.fleet.checkpoint`).

Parallel execution follows :mod:`repro.experiment.parallel`: chunks are
contiguous session-id ranges executed on a forked process pool (per-worker
scheme instances, fork-inherited payload), consumed via ordered ``imap`` so
commits stream instead of materializing every result.  Because sink merging
is exact (integer arithmetic), the final dump is byte-identical at any
worker count, any chunk size, and across kill/resume at any point.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.abr.base import AbrAlgorithm
from repro.atomio import atomic_write_text
from repro.crashpoints import crashpoint
from repro.batch import is_vectorizable_algorithm, run_session_batch
from repro.analysis.bootstrap import ConfidenceInterval
from repro.analysis.summary import SchemeSummary
from repro.data.archive import ArchiveAppender
from repro.edge.cells import Cell, EdgeConfig, iter_cells
from repro.edge.engine import run_cell
from repro.experiment.consort import classify_stream
from repro.experiment.harness import (
    SessionShard,
    TrialConfig,
    assign_expt_ids,
    run_session,
)
from repro.experiment.schemes import SchemeSpec
from repro.fleet.checkpoint import (
    CheckpointManager,
    FleetCheckpoint,
    config_fingerprint,
)
from repro.fleet.sinks import FleetSink
from repro.fleet.workload import (
    SessionArrival,
    WorkloadConfig,
    WorkloadGenerator,
)
from repro.streaming.telemetry import TelemetryLog

DUMP_SCHEMA_VERSION = 1
"""Version of the ``repro fleet`` metrics-dump JSON layout."""

DEFAULT_CHUNK_SESSIONS = 16
"""Sessions per commit/checkpoint unit.  Grouping is irrelevant to the
result (sink merging is exact); this only trades checkpoint frequency
against pool overhead."""

_AbrCache = Dict[str, AbrAlgorithm]


@dataclass(frozen=True)
class FleetConfig:
    """One deployment simulation: offered load + per-session environment."""

    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    trial: TrialConfig = field(default_factory=TrialConfig)
    """Per-session knobs (seed, population, viewer, channels, probabilities).
    ``trial.n_sessions`` is ignored — the workload decides how many sessions
    arrive."""

    chunk_sessions: int = DEFAULT_CHUNK_SESSIONS
    """Sessions per commit (and per checkpoint).  Not part of the
    fingerprint: any cadence reproduces the same dump."""

    executor: str = "auto"
    """Per-chunk session executor: ``"scalar"`` runs ``run_session`` per
    arrival; ``"batch"`` runs each chunk through the vectorized
    ``run_session_batch`` kernel (bit-identical shards — the dump does not
    change); ``"auto"`` picks the batch kernel whenever it can help (no
    telemetry collection and at least one vectorizable scheme).  A pure
    execution knob: not part of the fingerprint."""

    batch_lanes: int = 64
    """Lockstep width for the batch executor (sessions advanced per vector
    round).  Not part of the fingerprint: shards are bit-identical at any
    lane count."""

    edge: Optional[EdgeConfig] = None
    """Cell mode: partition arrivals into shared-bottleneck edge cells and
    run each cell through :func:`repro.edge.engine.run_cell` (singleton
    cells dispatch to the private-link path bit-identically).  ``None``
    keeps the classic one-private-link-per-session executor.  Part of the
    fingerprint — cell mode changes the science."""

    def __post_init__(self) -> None:
        if self.chunk_sessions < 1:
            raise ValueError("chunk_sessions must be >= 1")
        if self.executor not in ("auto", "batch", "scalar"):
            raise ValueError("executor must be 'auto', 'batch' or 'scalar'")
        if self.batch_lanes < 1:
            raise ValueError("batch_lanes must be >= 1")

    def fingerprint(self, specs: Sequence[SchemeSpec]) -> str:
        """Configuration identity for checkpoint compatibility.

        Covers everything that changes the science: the workload, the
        per-session trial knobs (including the viewer/population models,
        via their stable dataclass reprs), the scheme set, and the edge
        tier when enabled (appended only then, so classic checkpoints keep
        their historical fingerprints).  Excludes pure execution knobs
        (workers, chunk size, checkpoint cadence, executor/batch lanes).
        """
        trial = self.trial
        trial_knobs = {
            "seed": trial.seed,
            "population": repr(trial.population),
            "viewer": repr(trial.viewer),
            "channels": [c.name for c in trial.channels],
            "extra_stream_prob": trial.extra_stream_prob,
            "max_streams_per_session": trial.max_streams_per_session,
            "slow_decoder_prob": trial.slow_decoder_prob,
            "loss_of_contact_prob": trial.loss_of_contact_prob,
        }
        parts: List[object] = [
            self.workload.to_dict(),
            trial_knobs,
            [spec.name for spec in specs],
        ]
        if self.edge is not None:
            parts.append({"edge": self.edge.to_dict()})
        return config_fingerprint(*parts)


@dataclass(frozen=True)
class FleetThroughput:
    """Wall-clock accounting for one fleet run (never enters the dump)."""

    mode: str
    workers: int
    sessions: int
    streams: int
    wall_s: float
    commits: int
    checkpoints: int
    executor: str = "scalar"

    @property
    def sessions_per_s(self) -> float:
        return self.sessions / self.wall_s if self.wall_s > 0 else float("inf")

    def format(self) -> str:
        return (
            f"fleet throughput: {self.sessions} sessions "
            f"({self.streams} streams) in {self.wall_s:.2f}s "
            f"= {self.sessions_per_s:.1f} sessions/s "
            f"[{self.mode}, workers={self.workers}, "
            f"executor={self.executor}, commits={self.commits}, "
            f"checkpoints={self.checkpoints}]"
        )


@dataclass
class FleetResult:
    """Outcome of a fleet run (possibly a paused partial run)."""

    sink: FleetSink
    config: FleetConfig
    scheme_names: List[str]
    next_session_id: int
    completed: bool
    throughput: Optional[FleetThroughput] = None
    checkpoint_path: Optional[str] = None
    archive_dir: Optional[str] = None
    dump_path: Optional[str] = None
    edge_stats: Optional[dict] = None
    """Edge-tier accounting (cells, shared_cells, cache_hits, cache_misses)
    when cell mode is on.  Deliberately excluded from the dump: the dump
    surface is identical between a degenerate cell run and a classic run,
    which is what the byte-equivalence tests compare.  Cache behaviour is
    observable through :mod:`repro.obs` counters instead."""

    def summaries(self) -> List[SchemeSummary]:
        return self.sink.summaries()

    def to_dump_dict(self) -> dict:
        """The canonical metrics dump (the byte-identity surface).

        Contains only deterministic state: the configuration, the exact
        sink state, and summary statistics derived from it.  Wall-clock
        throughput is deliberately excluded.
        """
        summaries = {}
        for summary in self.summaries():
            duration = summary.mean_session_duration_s
            summaries[summary.scheme] = {
                "n_streams": summary.n_streams,
                "stream_years": summary.stream_years,
                "stall_ratio": _ci_dict(summary.stall_ratio),
                "mean_ssim_db": _ci_dict(summary.mean_ssim_db),
                "ssim_variation_db": summary.ssim_variation_db,
                "mean_bitrate_bps": summary.mean_bitrate_bps,
                "mean_session_duration_s": (
                    _ci_dict(duration) if duration is not None else None
                ),
                "startup_delay_s": summary.startup_delay_s,
                "first_chunk_ssim_db": summary.first_chunk_ssim_db,
                "fraction_streams_with_stall": (
                    summary.fraction_streams_with_stall
                ),
            }
        return {
            "schema_version": DUMP_SCHEMA_VERSION,
            "workload": self.config.workload.to_dict(),
            "trial_seed": self.config.trial.seed,
            "scheme_names": list(self.scheme_names),
            "next_session_id": self.next_session_id,
            "completed": self.completed,
            "sink": self.sink.to_dict(),
            "summaries": summaries,
        }

    def dump(self, path: str) -> str:
        """Write the canonical metrics dump (sorted keys, 2-space indent).

        Atomic + durable: a kill mid-dump must leave no torn file for a
        ``cmp``-based resume check to misread as corruption.
        """
        payload = json.dumps(self.to_dump_dict(), sort_keys=True, indent=2)
        atomic_write_text(path, payload + "\n")
        self.dump_path = path
        return path

    def format_table(self) -> str:
        """Human-readable per-scheme table (the ``repro fleet`` CLI)."""
        return format_sink_table(self.sink)


def format_sink_table(sink: FleetSink) -> str:
    """Per-scheme table for any :class:`FleetSink` (result, checkpoint,
    or metrics dump — ``repro fleet report`` prints all three)."""
    lines = [
        f"{'Scheme':<15}{'Stall %':>9}{'SSIM dB':>9}{'N':>8}"
        f"{'Str-years':>11}"
    ]
    for summary in sink.summaries():
        lines.append(
            f"{summary.scheme:<15}{summary.stall_percent:>9.3f}"
            f"{summary.mean_ssim_db.point:>9.2f}{summary.n_streams:>8}"
            f"{summary.stream_years:>11.4f}"
        )
    days = ", ".join(
        f"d{day}:{sink.sessions_by_day[day]}"
        for day in sorted(sink.sessions_by_day)
    )
    lines.append(
        f"sessions={sink.sessions} streams={sink.streams} "
        f"watch={sink.stream_years:.4f} stream-years "
        f"[{days or 'no sessions'}]"
    )
    return "\n".join(lines)


def _ci_dict(ci: ConfidenceInterval) -> dict:
    return {
        "point": ci.point,
        "low": ci.low,
        "high": ci.high,
        "confidence": ci.confidence,
    }


# ---------------------------------------------------------------------------
# Chunk execution (shared by the serial loop and the pool workers).
# ---------------------------------------------------------------------------
@dataclass
class _FleetChunk:
    """One committed unit: the chunk's exact sink delta and its telemetry."""

    first_session_id: int
    last_session_id: int
    delta: FleetSink
    telemetry: Optional[TelemetryLog]
    n_streams: int
    busy_s: float
    # Edge-tier accounting (zero in classic mode; never enters the dump).
    cells: int = 0
    shared_cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


def _fold_session(
    delta: FleetSink, shard: SessionShard, arrival: SessionArrival
) -> int:
    """Fold one finished session into a sink delta; returns stream count.

    This is where stream results die: after folding, nothing retains them,
    which is what makes fleet memory independent of run length.
    """
    session = shard.session
    delta.sessions += 1
    delta.streams += len(session.streams)
    day = arrival.day
    delta.sessions_by_day[day] = delta.sessions_by_day.get(day, 0) + 1
    delta.arrivals_by_hour[int(arrival.hour_of_day) % 24] += 1
    scheme_sink = delta.scheme(session.scheme)
    arm = shard.consort.arms[session.scheme]
    scheme_sink.observe_exclusions(
        streams_assigned=arm.streams_assigned,
        did_not_begin=arm.did_not_begin,
        watch_time_under_4s=arm.watch_time_under_4s,
        slow_video_decoder=arm.slow_video_decoder,
        truncated_loss_of_contact=arm.truncated_loss_of_contact,
    )
    scheme_sink.observe_session_duration(session.duration)
    for stream in session.streams:
        delta.sim_watch_s.add(stream.watch_time)
        if classify_stream(stream) == "considered":
            scheme_sink.observe_stream(stream)
    return len(session.streams)


def _simulate_chunk(
    specs: Sequence[SchemeSpec],
    config: TrialConfig,
    expt_ids: Dict[str, int],
    algorithms: _AbrCache,
    items: Sequence[Tuple[int, float]],
    executor: str = "scalar",
    batch_lanes: int = 64,
) -> _FleetChunk:
    """Simulate a contiguous chunk of arrivals into one exact sink delta.

    ``executor`` is the *resolved* executor ("scalar" or "batch" — never
    "auto").  The batch kernel returns shards bit-identical to the scalar
    path, so the folded delta (and therefore the dump) does not depend on
    the choice.
    """
    delta = FleetSink()
    telemetry = TelemetryLog() if config.collect_telemetry else None
    n_streams = 0
    # repro: allow-DET002(per-chunk busy-time report; never enters results) repro: allow-PURE002(busy-time report only; never enters session results)
    start = time.perf_counter()
    if executor == "batch":
        shards: Sequence[SessionShard] = run_session_batch(
            specs,
            config,
            [session_id for session_id, _ in items],
            expt_ids,
            algorithms,
            lanes=batch_lanes,
        )
    else:
        shards = [
            run_session(specs, config, session_id, expt_ids, algorithms)
            for session_id, _ in items
        ]
    for (session_id, time_s), shard in zip(items, shards):
        n_streams += _fold_session(
            delta, shard, SessionArrival(session_id=session_id, time_s=time_s)
        )
        if telemetry is not None and shard.telemetry is not None:
            telemetry.extend(shard.telemetry)
    return _FleetChunk(
        first_session_id=items[0][0],
        last_session_id=items[-1][0],
        delta=delta,
        telemetry=telemetry,
        n_streams=n_streams,
        # repro: allow-DET002(per-chunk busy-time report; never enters results) repro: allow-PURE002(busy-time report only; never enters session results)
        busy_s=time.perf_counter() - start,
    )


_CellItems = Tuple[int, List[Tuple[int, float]]]
"""One cell's share of a chunk: ``(cell_id, [(session_id, time_s), ...])``
with the arrivals contiguous and covering the whole (possibly truncated)
cell."""


def _simulate_cell_chunk(
    specs: Sequence[SchemeSpec],
    config: TrialConfig,
    expt_ids: Dict[str, int],
    algorithms: _AbrCache,
    edge: EdgeConfig,
    cell_items: Sequence[_CellItems],
) -> _FleetChunk:
    """Simulate a chunk of whole cells into one exact sink delta.

    Each cell runs through :func:`repro.edge.engine.run_cell` with offsets
    measured from the cell's first arrival (sessions in a cell contend in
    arrival order; cells are independent, so absolute time never matters).
    Singleton cells dispatch to ``run_session`` inside ``run_cell`` and are
    bit-identical to the private-link executor.
    """
    delta = FleetSink()
    telemetry = TelemetryLog() if config.collect_telemetry else None
    n_streams = 0
    cells = shared_cells = cache_hits = cache_misses = 0
    # repro: allow-DET002(per-chunk busy-time report; never enters results) repro: allow-PURE002(busy-time report only; never enters session results)
    start = time.perf_counter()
    for cell_id, items in cell_items:
        cell = Cell(
            cell_id=cell_id,
            start_session_id=items[0][0],
            size=len(items),
        )
        first_time_s = items[0][1]
        result = run_cell(
            specs,
            config,
            cell,
            edge,
            offsets=[time_s - first_time_s for _, time_s in items],
            expt_ids=expt_ids,
            algorithms=algorithms,
        )
        cells += 1
        shared_cells += 1 if result.shared else 0
        cache_hits += result.cache_hits
        cache_misses += result.cache_misses
        for (session_id, time_s), shard in zip(items, result.shards):
            n_streams += _fold_session(
                delta,
                shard,
                SessionArrival(session_id=session_id, time_s=time_s),
            )
            if telemetry is not None and shard.telemetry is not None:
                telemetry.extend(shard.telemetry)
    return _FleetChunk(
        first_session_id=cell_items[0][1][0][0],
        last_session_id=cell_items[-1][1][-1][0],
        delta=delta,
        telemetry=telemetry,
        n_streams=n_streams,
        # repro: allow-DET002(per-chunk busy-time report; never enters results) repro: allow-PURE002(busy-time report only; never enters session results)
        busy_s=time.perf_counter() - start,
        cells=cells,
        shared_cells=shared_cells,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


# Worker-side state: fork-inherited payload plus a lazily-built per-process
# scheme-instance cache (instances are never shared across processes).
_FLEET_PAYLOAD: Optional[
    Tuple[
        List[SchemeSpec],
        TrialConfig,
        Dict[str, int],
        str,
        int,
        Optional[EdgeConfig],
    ]
] = None
_FLEET_ALGORITHMS: Optional[_AbrCache] = None


def _run_fleet_chunk(items: Sequence) -> _FleetChunk:
    global _FLEET_ALGORITHMS
    if _FLEET_PAYLOAD is None:
        raise RuntimeError("fleet worker payload missing (pool misconfigured)")
    specs, config, expt_ids, executor, batch_lanes, edge = _FLEET_PAYLOAD
    if _FLEET_ALGORITHMS is None:
        # repro: allow-PURE001(per-process scheme cache; instances never cross a process boundary, mirrors experiment.parallel._WorkerState)
        _FLEET_ALGORITHMS = {spec.name: spec.build() for spec in specs}
    if edge is not None:
        return _simulate_cell_chunk(
            specs, config, expt_ids, _FLEET_ALGORITHMS, edge, items
        )
    return _simulate_chunk(
        specs,
        config,
        expt_ids,
        _FLEET_ALGORITHMS,
        items,
        executor=executor,
        batch_lanes=batch_lanes,
    )


def _resolve_executor(
    executor: str, specs: Sequence[SchemeSpec], trial: TrialConfig
) -> str:
    """Resolve ``"auto"`` to a concrete chunk executor.

    ``auto`` selects the batch kernel when it can actually vectorize
    something: telemetry collection forces the kernel into per-session
    scalar fallback (so there is nothing to gain), and so does a scheme
    set with no vectorizable member.
    """
    if executor != "auto":
        return executor
    if trial.collect_telemetry:
        return "scalar"
    # Throwaway instances, used only for classification — the simulating
    # instances are still built per process by the existing caches.
    if any(is_vectorizable_algorithm(spec.build()) for spec in specs):
        return "batch"
    return "scalar"


def _chunked(
    arrivals: Iterator[SessionArrival], size: int
) -> Iterator[List[Tuple[int, float]]]:
    """Group consecutive arrivals into commit-sized chunks."""
    chunk: List[Tuple[int, float]] = []
    for arrival in arrivals:
        chunk.append((arrival.session_id, arrival.time_s))
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def _chunked_cells(
    arrivals: Iterator[SessionArrival],
    edge: EdgeConfig,
    size: int,
    start_session_id: int = 0,
) -> Iterator[List[_CellItems]]:
    """Group arrivals into commit-sized chunks of *whole* cells.

    The cell partition is a pure function of the edge config (sizes seeded
    per cell id), so any resume point recomputes the same boundaries.  A
    chunk closes at the first cell boundary at or past ``size`` sessions —
    every committed ``next_session_id`` is therefore itself a cell
    boundary, which is what makes kill/resume alignment automatic.  The
    final cell of a finite workload may be truncated by the arrival stream
    (fewer sessions than its seeded size); contention among the sessions
    that did arrive is unaffected.
    """
    cells = iter_cells(edge)
    cell = next(cells)
    while cell.end_session_id <= start_session_id:
        cell = next(cells)
    if cell.start_session_id != start_session_id:
        raise ValueError(
            f"resume session {start_session_id} is not a cell boundary "
            f"(cell {cell.cell_id} spans "
            f"[{cell.start_session_id}, {cell.end_session_id}))"
        )
    chunk: List[_CellItems] = []
    sessions_in_chunk = 0
    current: List[Tuple[int, float]] = []
    for arrival in arrivals:
        if arrival.session_id != cell.start_session_id + len(current):
            raise ValueError(
                f"arrival stream out of step with cell partition: got "
                f"session {arrival.session_id} inside cell {cell.cell_id}"
            )
        current.append((arrival.session_id, arrival.time_s))
        if len(current) == cell.size:
            chunk.append((cell.cell_id, current))
            sessions_in_chunk += len(current)
            current = []
            cell = next(cells)
            if sessions_in_chunk >= size:
                yield chunk
                chunk = []
                sessions_in_chunk = 0
    if current:
        chunk.append((cell.cell_id, current))
    if chunk:
        yield chunk


def _fork_context(
    workers: int,
) -> Optional[multiprocessing.context.BaseContext]:
    """The fork context for pool execution, or ``None`` to run in-process
    (single worker, or a platform without fork)."""
    if workers <= 1:
        return None
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None


def _execute_chunks(
    specs: Sequence[SchemeSpec],
    trial: TrialConfig,
    expt_ids: Dict[str, int],
    executor: str,
    batch_lanes: int,
    chunks: Iterator[List],
    workers: int,
    edge: Optional[EdgeConfig] = None,
) -> Iterator[_FleetChunk]:
    """Execute chunks in session-id order, yielding each exact delta.

    The shared execution core of :func:`run_fleet` and the continual
    retraining driver (:mod:`repro.fleet.retrain`).  The retrainer calls it
    once per day segment: the pool payload (scheme specs, expt ids) is
    fork-inherited at pool creation, so a fresh pool is required whenever a
    new model generation enrolls as an arm.

    With ``workers > 1`` on a fork platform, chunks run on a process pool
    and stream back via ordered ``imap``; abandoning the generator early
    (``close()`` after a pause) tears the pool down via the context
    manager.  Otherwise chunks run in-process against a per-call scheme
    cache.  Either way the yielded deltas are bit-identical.
    """
    ctx = _fork_context(workers)
    if ctx is not None:
        global _FLEET_PAYLOAD
        _FLEET_PAYLOAD = (
            list(specs), trial, dict(expt_ids), executor, batch_lanes, edge
        )
        try:
            with ctx.Pool(processes=workers) as pool:
                # Ordered imap: chunk results stream back in session-id
                # order and are merged + discarded one at a time.
                for chunk_result in pool.imap(
                    _run_fleet_chunk, chunks, chunksize=1
                ):
                    yield chunk_result
        finally:
            _FLEET_PAYLOAD = None
    else:
        algorithms: _AbrCache = {spec.name: spec.build() for spec in specs}
        for items in chunks:
            if edge is not None:
                yield _simulate_cell_chunk(
                    specs, trial, expt_ids, algorithms, edge, items
                )
            else:
                yield _simulate_chunk(
                    specs,
                    trial,
                    expt_ids,
                    algorithms,
                    items,
                    executor=executor,
                    batch_lanes=batch_lanes,
                )


# ---------------------------------------------------------------------------
# The driver.
# ---------------------------------------------------------------------------
def run_fleet(
    specs: Sequence[SchemeSpec],
    config: FleetConfig,
    workers: int = 1,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    archive_dir: Optional[str] = None,
    stop_after_sessions: Optional[int] = None,
    cli_args: Optional[dict] = None,
    on_commit: Optional[Callable[[int, FleetSink], None]] = None,
) -> FleetResult:
    """Run (or resume) a deployment simulation.

    Parameters
    ----------
    workers:
        ``1`` runs chunks in-process; ``N > 1`` shards them across a forked
        pool, streaming results back in session-id order.  The dump is
        byte-identical either way.
    checkpoint_path:
        Where to keep the crash-safe checkpoint.  With ``resume=True`` an
        existing checkpoint (same configuration fingerprint) is continued;
        a missing checkpoint starts fresh.
    archive_dir:
        Stream the open-data archive (Appendix B CSVs) here incrementally;
        on resume, files are truncated back to the last durable commit.
    stop_after_sessions:
        Pause the run once at least this many sessions (across all commits,
        including resumed state) have been committed — an operational
        budget; the returned result has ``completed=False`` and the run can
        be resumed later.
    cli_args:
        Recorded verbatim in the checkpoint so ``repro fleet resume`` can
        reconstruct the configuration without retyping it.
    on_commit:
        Called after every committed chunk with ``(next_session_id, sink)``
        — progress reporting hook.
    """
    specs = list(specs)
    if not specs:
        raise ValueError("need at least one scheme")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError("scheme names must be unique")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if stop_after_sessions is not None and stop_after_sessions < 1:
        raise ValueError("stop_after_sessions must be >= 1")

    fingerprint = config.fingerprint(specs)
    trial = replace(
        config.trial,
        n_sessions=1,  # unused by run_session; workload decides scale
        collect_telemetry=archive_dir is not None,
    )
    expt_ids = assign_expt_ids(specs, trial.seed)

    manager = (
        CheckpointManager(checkpoint_path)
        if checkpoint_path is not None
        else None
    )
    sink = FleetSink()
    next_session_id = 0
    stored_offsets: Optional[Dict[str, int]] = None
    edge_stats = {
        "cells": 0, "shared_cells": 0, "cache_hits": 0, "cache_misses": 0,
    }
    if resume and manager is not None and manager.exists():
        checkpoint = manager.load(expected_fingerprint=fingerprint)
        sink = checkpoint.sink
        next_session_id = checkpoint.next_session_id
        stored_offsets = checkpoint.archive_offsets
        stored_edge = checkpoint.extra.get("edge")
        if stored_edge is not None:
            edge_stats.update({k: int(v) for k, v in stored_edge.items()})

    appender: Optional[ArchiveAppender] = None
    if archive_dir is not None:
        appender = ArchiveAppender(archive_dir)
        if stored_offsets is not None:
            # Roll the streamed archive back to the last durable commit:
            # rows appended after the surviving checkpoint belong to
            # sessions that will be re-simulated.
            appender.truncate_to(stored_offsets)
        elif resume and manager is not None and not manager.exists():
            # Fresh start under --resume: the crash landed before the
            # first checkpoint ever committed, so every row a dead run
            # appended is uncommitted — clear them, or the restart would
            # append after leftovers and diverge from a clean run.
            appender.reset()

    def save_checkpoint(completed: bool) -> None:
        if manager is None:
            return
        offsets = None
        if appender is not None:
            appender.flush(sync=True)
            offsets = appender.offsets()
        # Commit order: archive rows must be durable before the
        # checkpoint durably records their byte offsets (DUR003 pair).
        crashpoint("fleet.checkpoint-boundary")
        manager.save(
            FleetCheckpoint(
                fingerprint=fingerprint,
                next_session_id=next_session_id,
                sink=sink,
                archive_offsets=offsets,
                cli_args=cli_args,
                completed=completed,
                extra=(
                    {"edge": dict(edge_stats)}
                    if config.edge is not None
                    else {}
                ),
            )
        )

    generator = WorkloadGenerator(config.workload)
    if config.edge is not None:
        chunks: Iterator[List] = _chunked_cells(
            generator.arrivals(start_session_id=next_session_id),
            config.edge,
            config.chunk_sessions,
            start_session_id=next_session_id,
        )
    else:
        chunks = _chunked(
            generator.arrivals(start_session_id=next_session_id),
            config.chunk_sessions,
        )

    commits = 0
    streams_this_run = 0
    sessions_this_run = 0
    stopped = False
    # repro: allow-DET002(throughput report timing; never enters results)
    start_wall = time.perf_counter()

    def commit(chunk_result: _FleetChunk) -> None:
        # repro: allow-CKPT002(commit/stream/session counters are wall-clock throughput accounting; a resumed run correctly restarts them at zero)
        nonlocal next_session_id, commits, streams_this_run, sessions_this_run
        sink.merge(chunk_result.delta)
        if appender is not None and chunk_result.telemetry is not None:
            appender.append(chunk_result.telemetry)
        next_session_id = chunk_result.last_session_id + 1
        commits += 1
        sessions_this_run += chunk_result.delta.sessions
        streams_this_run += chunk_result.n_streams
        edge_stats["cells"] += chunk_result.cells
        edge_stats["shared_cells"] += chunk_result.shared_cells
        edge_stats["cache_hits"] += chunk_result.cache_hits
        edge_stats["cache_misses"] += chunk_result.cache_misses
        save_checkpoint(completed=False)
        if obs.ENABLED:
            obs.counter_inc("fleet.commits")
            obs.counter_inc("fleet.sessions", float(chunk_result.delta.sessions))
        if on_commit is not None:
            on_commit(next_session_id, sink)

    def should_stop() -> bool:
        return (
            stop_after_sessions is not None
            and next_session_id >= stop_after_sessions
        )

    if config.edge is not None:
        # The cell engine drives session machines itself; the batch kernel's
        # private-link lockstep does not apply.  Singleton cells still take
        # the scalar run_session path inside run_cell.
        executor = "scalar"
    else:
        executor = _resolve_executor(config.executor, specs, trial)
    mode = "fork" if _fork_context(workers) is not None else "serial"

    chunk_results = _execute_chunks(
        specs,
        trial,
        expt_ids,
        executor,
        config.batch_lanes,
        chunks,
        workers,
        edge=config.edge,
    )
    try:
        for chunk_result in chunk_results:
            commit(chunk_result)
            if should_stop():
                stopped = True
                break
    finally:
        # Deterministic teardown: closing the generator terminates the
        # pool (if any) at the pause point instead of at GC time.
        chunk_results.close()

    completed = not stopped
    save_checkpoint(completed=completed)
    if appender is not None:
        appender.close()
    # repro: allow-DET002(throughput report timing; never enters results)
    wall = time.perf_counter() - start_wall

    return FleetResult(
        sink=sink,
        config=config,
        scheme_names=names,
        next_session_id=next_session_id,
        completed=completed,
        throughput=FleetThroughput(
            mode=mode,
            workers=workers,
            sessions=sessions_this_run,
            streams=streams_this_run,
            wall_s=wall,
            commits=commits,
            checkpoints=manager.saves if manager is not None else 0,
            executor=executor,
        ),
        checkpoint_path=checkpoint_path,
        archive_dir=archive_dir,
        edge_stats=dict(edge_stats) if config.edge is not None else None,
    )

"""Streaming aggregation sinks: O(1)-memory, *exactly*-merging sketches.

The fleet runner consumes each :class:`~repro.streaming.session.StreamResult`
as it completes, folds it into per-scheme sinks, and discards it — memory is
independent of how many sessions the deployment runs.  The hard requirement
(inherited from the PR 1/PR 2 determinism contract) is that the final dump
be **byte-identical** for any worker count and across kill/resume at any
point.  Floating-point addition is not associative, so an ordinary
float-accumulator sink would make the dump depend on how sessions were
grouped into chunks.  Every accumulator here therefore merges *exactly*:

* :class:`ExactSum` — a float accumulator that holds its running total as
  an **exact rational** (every finite IEEE-754 double is a dyadic rational,
  via ``float.as_integer_ratio``; so are all products of doubles).
  Addition is exact rational addition: associative, commutative, no
  rounding.  ``add_product`` accumulates products of doubles without first
  rounding them to a double, which keeps second moments exact under the
  catastrophic cancellation of ``E[x²] - mean²``.  The total converts back
  to the nearest double only at report time (correctly rounded).
* :class:`FleetHistogram` — the fixed log-spaced bin layout of
  :class:`repro.obs.HistogramSpec` with integer bin counts and an
  :class:`ExactSum` value total.
* :class:`StreamingMoments` / :class:`WeightedMoments` — first and second
  (weighted) raw moments over :class:`ExactSum` fields; means, standard
  errors, and the §3.4 interval formulas are evaluated exactly in rational
  arithmetic and rounded once.

Because every merge is exact integer arithmetic, sink merging is truly
associative *and* permutation-invariant (property-tested in
``tests/fleet/test_sink_properties.py``) — "merged in session-id order" is
then a convention for log readability, not a correctness requirement.

Confidence intervals: bootstrap resampling needs the full sample, which a
constant-memory sink cannot retain.  The streaming sink reports the paper's
*weighted-standard-error* interval for SSIM (the same formula as
:func:`repro.analysis.stats.weighted_mean_ci`), a ratio-estimator
(delta-method) normal interval for the stall ratio, and a normal interval
for mean session duration.  Tolerances vs the exact list-based statistics
are documented in EXPERIMENTS.md and enforced by the property tests: point
estimates agree to ~1e-12 relative; normal-approximation CIs agree with
their list-based counterparts to ~1e-9 and bracket the same point.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Optional

from repro.analysis.bootstrap import ConfidenceInterval
from repro.analysis.summary import SchemeSummary, StreamAggregator
from repro.analysis.stats import stream_years
from repro.obs.registry import HistogramSpec, TIME_SPEC
from repro.streaming.session import StreamResult

SINK_SCHEMA_VERSION = 1
"""Version of the sink-state JSON layout (checkpoints and metrics dumps)."""

_SCALE_BITS = 1074
"""Every finite double is ``m * 2**e`` with ``e >= -1074``, so scaling by
``2**1074`` embeds all finite doubles exactly into the integers."""

_SCALE = 1 << _SCALE_BITS

_Z_95 = 1.959963984540054
"""z-quantile for a two-sided 95% normal interval (scipy-free constant;
matches ``scipy.stats.norm.ppf(0.975)`` to double precision)."""

# Histogram layouts for the distributions the fleet tracks.  Reusing the
# log-binned layout from repro.obs keeps every shard's bins identical by
# construction, so merging is integer addition of counts.
WATCH_TIME_SPEC = TIME_SPEC
"""Stream watch times: 1 ms .. 1000 s (the obs layer's duration layout)."""

DURATION_SPEC = HistogramSpec(lo=1.0, hi=1e5, n_bins=50)
"""Session time-on-site in seconds: 1 s .. ~28 h, 10 bins per decade."""

STALL_RATIO_SPEC = HistogramSpec(lo=1e-4, hi=1.0, n_bins=40)
"""Per-stream stall ratios: 0.01% .. 100%, 10 bins per decade."""

SSIM_SPEC = HistogramSpec(lo=1.0, hi=100.0, n_bins=40)
"""Per-stream mean SSIM in dB (log bins; typical values 5–25 dB)."""


class ExactSum:
    """Exact, associative, commutative accumulator of finite doubles.

    The running total is held as an exact rational (every finite double is
    ``m / 2**e`` with ``e <= 1074``, so the denominator is always a power of
    two).  ``add``, ``add_product`` and ``merge`` are exact rational
    additions — no rounding ever happens until :meth:`value` converts back
    to the nearest double.  :meth:`add_product` exists because forming
    ``x * y`` in floating point *before* accumulating would round, and that
    single rounding is catastrophically amplified by the cancellation in
    second-moment formulas (``E[x²] - mean²``); multiplying exactly keeps
    the whole moment pipeline exact.  Serialization uses a hex
    ``numerator/denominator`` string, which round-trips through JSON
    exactly.
    """

    __slots__ = ("_total",)

    def __init__(self, total: Fraction = Fraction(0)) -> None:
        self._total = total

    @staticmethod
    def _check(value: float) -> float:
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ValueError(f"ExactSum cannot absorb {value!r}")
        return value

    def add(self, value: float) -> None:
        self._total += Fraction(self._check(value))

    def add_product(self, *factors: float) -> None:
        """Add the *exact* product of the factors (no intermediate
        float rounding — the difference between an exact and a merely
        order-independent second moment)."""
        product = Fraction(1)
        for factor in factors:
            product *= Fraction(self._check(factor))
        self._total += product

    def merge(self, other: "ExactSum") -> None:
        self._total += other._total

    def value(self) -> float:
        """The total, correctly rounded to the nearest double."""
        return float(self._total)

    def fraction(self) -> Fraction:
        """The total as an exact rational (for exact downstream algebra)."""
        return self._total

    def is_zero(self) -> bool:
        return self._total == 0

    def to_dict(self) -> str:
        # Compact canonical form: sign + hex numerator, hex denominator.
        numerator = self._total.numerator
        denominator = self._total.denominator
        sign = "-" if numerator < 0 else ""
        return (
            f"{sign}{format(abs(numerator), 'x')}/{format(denominator, 'x')}"
        )

    @classmethod
    def from_dict(cls, data: str) -> "ExactSum":
        if "/" in data:
            numerator_hex, denominator_hex = data.split("/", 1)
            return cls(
                Fraction(int(numerator_hex, 16), int(denominator_hex, 16))
            )
        # Legacy scaled-integer form (multiples of 2**-1074).
        return cls(Fraction(int(data, 16), _SCALE))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExactSum) and other._total == self._total

    def __hash__(self) -> int:
        return hash(self._total)

    def __repr__(self) -> str:
        return f"ExactSum({self.value()!r})"


class StreamingMoments:
    """Count / exact sum / exact sum of squares of an unweighted sample."""

    __slots__ = ("n", "sum", "sum_sq")

    def __init__(self) -> None:
        self.n = 0
        self.sum = ExactSum()
        self.sum_sq = ExactSum()

    def observe(self, value: float) -> None:
        value = float(value)
        self.n += 1
        self.sum.add(value)
        self.sum_sq.add_product(value, value)

    def merge(self, other: "StreamingMoments") -> None:
        self.n += other.n
        self.sum.merge(other.sum)
        self.sum_sq.merge(other.sum_sq)

    def mean(self) -> float:
        if self.n == 0:
            return float("nan")
        return float(self.sum.fraction() / self.n)

    def standard_error(self) -> float:
        """SE of the mean (sample variance over n), ``nan`` below n=2."""
        if self.n < 2:
            return float("nan")
        mean = self.sum.fraction() / self.n
        var = (self.sum_sq.fraction() / self.n - mean * mean) * Fraction(
            self.n, self.n - 1
        )
        if var < 0:  # exact arithmetic: only possible at var == 0 - epsilon
            var = Fraction(0)
        return math.sqrt(float(var)) / math.sqrt(self.n)

    def mean_ci(self, confidence: float = 0.95) -> Optional[ConfidenceInterval]:
        """Normal-approximation interval around the mean (``None`` if
        empty; zero-width below n=2)."""
        if self.n == 0:
            return None
        point = self.mean()
        if self.n < 2:
            return ConfidenceInterval(
                point=point, low=point, high=point, confidence=confidence
            )
        half = _Z_95 * self.standard_error()
        return ConfidenceInterval(
            point=point, low=point - half, high=point + half,
            confidence=confidence,
        )

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "sum": self.sum.to_dict(),
            "sum_sq": self.sum_sq.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingMoments":
        moments = cls()
        moments.n = int(data["n"])
        moments.sum = ExactSum.from_dict(data["sum"])
        moments.sum_sq = ExactSum.from_dict(data["sum_sq"])
        return moments


class WeightedMoments:
    """Exact raw moments for §3.4's duration-weighted mean and its
    weighted standard error.

    Tracks ``n, Σw, Σwx, Σw², Σw²x, Σw²x²`` exactly; the weighted-SE
    formula of :func:`repro.analysis.stats.weighted_standard_error`
    (``SE² = Σw²(x-x̄)² / (Σw)² * n/(n-1)``) expands into those sums and is
    evaluated in rational arithmetic, so the only rounding is the final
    conversion to double.
    """

    __slots__ = ("n", "sum_w", "sum_wx", "sum_w2", "sum_w2x", "sum_w2x2")

    def __init__(self) -> None:
        self.n = 0
        self.sum_w = ExactSum()
        self.sum_wx = ExactSum()
        self.sum_w2 = ExactSum()
        self.sum_w2x = ExactSum()
        self.sum_w2x2 = ExactSum()

    def observe(self, value: float, weight: float) -> None:
        value = float(value)
        weight = float(weight)
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self.n += 1
        self.sum_w.add(weight)
        self.sum_wx.add_product(weight, value)
        self.sum_w2.add_product(weight, weight)
        self.sum_w2x.add_product(weight, weight, value)
        self.sum_w2x2.add_product(weight, weight, value, value)

    def merge(self, other: "WeightedMoments") -> None:
        self.n += other.n
        self.sum_w.merge(other.sum_w)
        self.sum_wx.merge(other.sum_wx)
        self.sum_w2.merge(other.sum_w2)
        self.sum_w2x.merge(other.sum_w2x)
        self.sum_w2x2.merge(other.sum_w2x2)

    def mean(self) -> float:
        if self.n == 0 or self.sum_w.is_zero():
            return float("nan")
        return float(self.sum_wx.fraction() / self.sum_w.fraction())

    def standard_error(self) -> float:
        if self.n < 2 or self.sum_w.is_zero():
            return float("nan")
        mean = self.sum_wx.fraction() / self.sum_w.fraction()
        # Σ w²(x - x̄)² = Σw²x² - 2 x̄ Σw²x + x̄² Σw²   (exact expansion)
        numerator = (
            self.sum_w2x2.fraction()
            - 2 * mean * self.sum_w2x.fraction()
            + mean * mean * self.sum_w2.fraction()
        )
        if numerator < 0:
            numerator = Fraction(0)
        se2 = (
            numerator
            / (self.sum_w.fraction() * self.sum_w.fraction())
            * Fraction(self.n, self.n - 1)
        )
        return math.sqrt(float(se2))

    def mean_ci(self, confidence: float = 0.95) -> Optional[ConfidenceInterval]:
        if self.n == 0 or self.sum_w.is_zero():
            return None
        point = self.mean()
        if self.n < 2:
            return ConfidenceInterval(
                point=point, low=point, high=point, confidence=confidence
            )
        half = _Z_95 * self.standard_error()
        return ConfidenceInterval(
            point=point, low=point - half, high=point + half,
            confidence=confidence,
        )

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "sum_w": self.sum_w.to_dict(),
            "sum_wx": self.sum_wx.to_dict(),
            "sum_w2": self.sum_w2.to_dict(),
            "sum_w2x": self.sum_w2x.to_dict(),
            "sum_w2x2": self.sum_w2x2.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WeightedMoments":
        moments = cls()
        moments.n = int(data["n"])
        moments.sum_w = ExactSum.from_dict(data["sum_w"])
        moments.sum_wx = ExactSum.from_dict(data["sum_wx"])
        moments.sum_w2 = ExactSum.from_dict(data["sum_w2"])
        moments.sum_w2x = ExactSum.from_dict(data["sum_w2x"])
        moments.sum_w2x2 = ExactSum.from_dict(data["sum_w2x2"])
        return moments


class FleetHistogram:
    """Log-binned histogram with integer counts and an exact value total.

    Bin layout comes from :class:`repro.obs.HistogramSpec` — a pure function
    of ``(lo, hi, n_bins)`` — so any two sinks over the same spec have
    identical edges and merging is integer addition.  Unlike the obs-layer
    :class:`repro.obs.Histogram` (whose float ``sum`` field is
    order-dependent), the value total here is an :class:`ExactSum`.
    """

    __slots__ = ("spec", "counts", "underflow", "overflow", "total")

    def __init__(self, spec: HistogramSpec) -> None:
        self.spec = spec
        self.counts: List[int] = [0] * spec.n_bins
        self.underflow = 0
        self.overflow = 0
        self.total = ExactSum()

    @property
    def count(self) -> int:
        return self.underflow + self.overflow + sum(self.counts)

    def observe(self, value: float) -> None:
        index = self.spec.bin_index(value)
        if index < 0:
            self.underflow += 1
        elif index >= self.spec.n_bins:
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.total.add(value)

    def merge(self, other: "FleetHistogram") -> None:
        if other.spec != self.spec:
            raise ValueError(
                f"cannot merge histograms with different specs "
                f"({self.spec} vs {other.spec})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.total.merge(other.total)

    def mean(self) -> float:
        n = self.count
        return float(self.total.fraction() / n) if n else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bin counts (geometric bin centre)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        n = self.count
        if n == 0:
            return 0.0
        target = q * n
        running = self.underflow
        if running >= target:
            return self.spec.lo
        edges = self.spec.edges()
        for i, c in enumerate(self.counts):
            running += c
            if running >= target:
                return math.sqrt(edges[i] * edges[i + 1])
        return self.spec.hi

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "total": self.total.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetHistogram":
        hist = cls(HistogramSpec.from_dict(data["spec"]))
        counts = [int(c) for c in data["counts"]]
        if len(counts) != hist.spec.n_bins:
            raise ValueError("bin count mismatch in histogram state")
        hist.counts = counts
        hist.underflow = int(data["underflow"])
        hist.overflow = int(data["overflow"])
        hist.total = ExactSum.from_dict(data["total"])
        return hist


class StreamingSchemeSink(StreamAggregator):
    """One scheme's O(1)-memory aggregate: quality, stalls, exclusions.

    Implements the :class:`repro.analysis.summary.StreamAggregator`
    interface.  ``observe_stream`` expects *eligible* streams (the caller
    applies the CONSORT filter, as with the batch path); exclusion counters
    arrive separately via :meth:`observe_exclusions` from the per-session
    CONSORT arms.
    """

    def __init__(self, scheme: str) -> None:
        self.scheme = scheme
        # Session-level accounting.
        self.sessions = 0
        self.streams_assigned = 0
        self.duration = StreamingMoments()
        self.duration_hist = FleetHistogram(DURATION_SPEC)
        # CONSORT exclusion tallies (Fig. A1).
        self.did_not_begin = 0
        self.watch_time_under_4s = 0
        self.slow_video_decoder = 0
        self.truncated_loss_of_contact = 0
        # Eligible-stream quality aggregates (Fig. 1 columns).
        self.n_streams = 0
        self.watch = ExactSum()
        self.stall = ExactSum()
        self.stall_sq = ExactSum()
        self.watch_sq = ExactSum()
        self.stall_watch = ExactSum()
        self.ssim = WeightedMoments()
        self.variation = WeightedMoments()
        self.bitrate = WeightedMoments()
        self.startup = StreamingMoments()
        self.first_ssim = StreamingMoments()
        self.streams_with_stall = 0
        self.watch_hist = FleetHistogram(WATCH_TIME_SPEC)
        self.stall_ratio_hist = FleetHistogram(STALL_RATIO_SPEC)
        self.ssim_hist = FleetHistogram(SSIM_SPEC)

    # ------------------------------------------------------------------
    # StreamAggregator interface
    # ------------------------------------------------------------------
    def observe_stream(self, stream: StreamResult) -> None:
        self.n_streams += 1
        watch = float(stream.watch_time)
        stall = float(stream.stall_time)
        self.watch.add(watch)
        self.stall.add(stall)
        self.stall_sq.add_product(stall, stall)
        self.watch_sq.add_product(watch, watch)
        self.stall_watch.add_product(stall, watch)
        self.watch_hist.observe(watch)
        self.stall_ratio_hist.observe(stream.stall_ratio)
        if stream.had_stall:
            self.streams_with_stall += 1
        mean_ssim = stream.mean_ssim_db
        if not math.isnan(mean_ssim):
            self.ssim.observe(mean_ssim, watch)
            self.variation.observe(stream.ssim_variation_db, watch)
            self.bitrate.observe(stream.mean_bitrate_bps, watch)
            self.ssim_hist.observe(mean_ssim)
        if stream.startup_delay is not None:
            self.startup.observe(stream.startup_delay)
        if stream.records:
            self.first_ssim.observe(stream.first_chunk_ssim_db)

    def observe_session_duration(self, duration_s: float) -> None:
        self.sessions += 1
        self.duration.observe(duration_s)
        self.duration_hist.observe(duration_s)

    def observe_exclusions(
        self,
        streams_assigned: int = 0,
        did_not_begin: int = 0,
        watch_time_under_4s: int = 0,
        slow_video_decoder: int = 0,
        truncated_loss_of_contact: int = 0,
    ) -> None:
        """Fold one session's CONSORT exclusion counts (Fig. A1)."""
        self.streams_assigned += streams_assigned
        self.did_not_begin += did_not_begin
        self.watch_time_under_4s += watch_time_under_4s
        self.slow_video_decoder += slow_video_decoder
        self.truncated_loss_of_contact += truncated_loss_of_contact

    # ------------------------------------------------------------------
    # Merging (exact: integer arithmetic throughout)
    # ------------------------------------------------------------------
    def merge(self, other: "StreamingSchemeSink") -> None:
        if other.scheme != self.scheme:
            raise ValueError(
                f"cannot merge sink for {other.scheme!r} into {self.scheme!r}"
            )
        self.sessions += other.sessions
        self.streams_assigned += other.streams_assigned
        self.duration.merge(other.duration)
        self.duration_hist.merge(other.duration_hist)
        self.did_not_begin += other.did_not_begin
        self.watch_time_under_4s += other.watch_time_under_4s
        self.slow_video_decoder += other.slow_video_decoder
        self.truncated_loss_of_contact += other.truncated_loss_of_contact
        self.n_streams += other.n_streams
        self.watch.merge(other.watch)
        self.stall.merge(other.stall)
        self.stall_sq.merge(other.stall_sq)
        self.watch_sq.merge(other.watch_sq)
        self.stall_watch.merge(other.stall_watch)
        self.ssim.merge(other.ssim)
        self.variation.merge(other.variation)
        self.bitrate.merge(other.bitrate)
        self.startup.merge(other.startup)
        self.first_ssim.merge(other.first_ssim)
        self.streams_with_stall += other.streams_with_stall
        self.watch_hist.merge(other.watch_hist)
        self.stall_ratio_hist.merge(other.stall_ratio_hist)
        self.ssim_hist.merge(other.ssim_hist)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stall_ratio_ci(
        self, confidence: float = 0.95
    ) -> Optional[ConfidenceInterval]:
        """Ratio-estimator (delta-method) normal interval for the aggregate
        stall ratio ``Σstall / Σwatch``.

        ``SE = sqrt(n/(n-1) * Σ(sᵢ - R·wᵢ)²) / Σw`` with the residual sum
        expanded into exact streaming moments.  A normal approximation —
        the batch path's bootstrap CI is the reference; agreement is
        asymptotic, not exact (documented in EXPERIMENTS.md).
        """
        if self.n_streams == 0:
            return None
        total_watch = self.watch.fraction()
        if total_watch <= 0:
            return ConfidenceInterval(
                point=0.0, low=0.0, high=0.0, confidence=confidence
            )
        ratio = self.stall.fraction() / total_watch
        point = float(ratio)
        if self.n_streams < 2:
            return ConfidenceInterval(
                point=point, low=point, high=point, confidence=confidence
            )
        # Σ(sᵢ - R wᵢ)² = Σs² - 2R Σsw + R² Σw²   (exact)
        residual_sq = (
            self.stall_sq.fraction()
            - 2 * ratio * self.stall_watch.fraction()
            + ratio * ratio * self.watch_sq.fraction()
        )
        if residual_sq < 0:
            residual_sq = Fraction(0)
        n = self.n_streams
        se = math.sqrt(float(residual_sq) * n / (n - 1)) / float(total_watch)
        half = _Z_95 * se
        return ConfidenceInterval(
            point=point,
            low=max(0.0, point - half),
            high=point + half,
            confidence=confidence,
        )

    def summary(self) -> SchemeSummary:
        if self.n_streams == 0:
            raise ValueError(f"no eligible streams for scheme {self.scheme!r}")
        stall_ci = self.stall_ratio_ci()
        ssim_ci = self.ssim.mean_ci()
        if ssim_ci is None:
            nan = float("nan")
            ssim_ci = ConfidenceInterval(point=nan, low=nan, high=nan)
        assert stall_ci is not None
        return SchemeSummary(
            scheme=self.scheme,
            n_streams=self.n_streams,
            stream_years=stream_years(self.watch.value()),
            stall_ratio=stall_ci,
            mean_ssim_db=ssim_ci,
            ssim_variation_db=self.variation.mean(),
            mean_bitrate_bps=self.bitrate.mean(),
            mean_session_duration_s=self.duration.mean_ci(),
            startup_delay_s=self.startup.mean(),
            first_chunk_ssim_db=self.first_ssim.mean(),
            fraction_streams_with_stall=(
                self.streams_with_stall / self.n_streams
            ),
        )

    # ------------------------------------------------------------------
    # Serialization (exact round trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "sessions": self.sessions,
            "streams_assigned": self.streams_assigned,
            "duration": self.duration.to_dict(),
            "duration_hist": self.duration_hist.to_dict(),
            "did_not_begin": self.did_not_begin,
            "watch_time_under_4s": self.watch_time_under_4s,
            "slow_video_decoder": self.slow_video_decoder,
            "truncated_loss_of_contact": self.truncated_loss_of_contact,
            "n_streams": self.n_streams,
            "watch": self.watch.to_dict(),
            "stall": self.stall.to_dict(),
            "stall_sq": self.stall_sq.to_dict(),
            "watch_sq": self.watch_sq.to_dict(),
            "stall_watch": self.stall_watch.to_dict(),
            "ssim": self.ssim.to_dict(),
            "variation": self.variation.to_dict(),
            "bitrate": self.bitrate.to_dict(),
            "startup": self.startup.to_dict(),
            "first_ssim": self.first_ssim.to_dict(),
            "streams_with_stall": self.streams_with_stall,
            "watch_hist": self.watch_hist.to_dict(),
            "stall_ratio_hist": self.stall_ratio_hist.to_dict(),
            "ssim_hist": self.ssim_hist.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamingSchemeSink":
        sink = cls(str(data["scheme"]))
        sink.sessions = int(data["sessions"])
        sink.streams_assigned = int(data["streams_assigned"])
        sink.duration = StreamingMoments.from_dict(data["duration"])
        sink.duration_hist = FleetHistogram.from_dict(data["duration_hist"])
        sink.did_not_begin = int(data["did_not_begin"])
        sink.watch_time_under_4s = int(data["watch_time_under_4s"])
        sink.slow_video_decoder = int(data["slow_video_decoder"])
        sink.truncated_loss_of_contact = int(
            data["truncated_loss_of_contact"]
        )
        sink.n_streams = int(data["n_streams"])
        sink.watch = ExactSum.from_dict(data["watch"])
        sink.stall = ExactSum.from_dict(data["stall"])
        sink.stall_sq = ExactSum.from_dict(data["stall_sq"])
        sink.watch_sq = ExactSum.from_dict(data["watch_sq"])
        sink.stall_watch = ExactSum.from_dict(data["stall_watch"])
        sink.ssim = WeightedMoments.from_dict(data["ssim"])
        sink.variation = WeightedMoments.from_dict(data["variation"])
        sink.bitrate = WeightedMoments.from_dict(data["bitrate"])
        sink.startup = StreamingMoments.from_dict(data["startup"])
        sink.first_ssim = StreamingMoments.from_dict(data["first_ssim"])
        sink.streams_with_stall = int(data["streams_with_stall"])
        sink.watch_hist = FleetHistogram.from_dict(data["watch_hist"])
        sink.stall_ratio_hist = FleetHistogram.from_dict(
            data["stall_ratio_hist"]
        )
        sink.ssim_hist = FleetHistogram.from_dict(data["ssim_hist"])
        return sink


class FleetSink:
    """The whole deployment's aggregate: per-scheme sinks plus workload
    accounting.  Everything merges exactly; the canonical dict (sorted
    keys) is the byte-identity surface checkpoints and dumps serialize."""

    HOURS_PER_DAY = 24

    def __init__(self) -> None:
        self.sessions = 0
        self.streams = 0
        self.schemes: Dict[str, StreamingSchemeSink] = {}
        self.sessions_by_day: Dict[int, int] = {}
        self.arrivals_by_hour: List[int] = [0] * self.HOURS_PER_DAY
        self.sim_watch_s = ExactSum()
        """Total simulated viewing across all schemes (stream-years gauge)."""

    def scheme(self, name: str) -> StreamingSchemeSink:
        sink = self.schemes.get(name)
        if sink is None:
            sink = StreamingSchemeSink(name)
            self.schemes[name] = sink
        return sink

    def merge(self, other: "FleetSink") -> None:
        self.sessions += other.sessions
        self.streams += other.streams
        for name in sorted(other.schemes):
            self.scheme(name).merge(other.schemes[name])
        for day in sorted(other.sessions_by_day):
            self.sessions_by_day[day] = (
                self.sessions_by_day.get(day, 0) + other.sessions_by_day[day]
            )
        for hour, count in enumerate(other.arrivals_by_hour):
            self.arrivals_by_hour[hour] += count
        self.sim_watch_s.merge(other.sim_watch_s)

    @property
    def stream_years(self) -> float:
        return stream_years(max(0.0, self.sim_watch_s.value()))

    def to_dict(self) -> dict:
        return {
            "schema_version": SINK_SCHEMA_VERSION,
            "sessions": self.sessions,
            "streams": self.streams,
            "schemes": {
                name: self.schemes[name].to_dict()
                for name in sorted(self.schemes)
            },
            "sessions_by_day": {
                str(day): self.sessions_by_day[day]
                for day in sorted(self.sessions_by_day)
            },
            "arrivals_by_hour": list(self.arrivals_by_hour),
            "sim_watch_s": self.sim_watch_s.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSink":
        version = int(data.get("schema_version", 0))
        if version != SINK_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported sink schema version {version} "
                f"(expected {SINK_SCHEMA_VERSION})"
            )
        sink = cls()
        sink.sessions = int(data["sessions"])
        sink.streams = int(data["streams"])
        for name in sorted(data["schemes"]):
            sink.schemes[name] = StreamingSchemeSink.from_dict(
                data["schemes"][name]
            )
        for day in sorted(data["sessions_by_day"]):
            sink.sessions_by_day[int(day)] = int(data["sessions_by_day"][day])
        hours = [int(c) for c in data["arrivals_by_hour"]]
        if len(hours) != cls.HOURS_PER_DAY:
            raise ValueError("arrivals_by_hour must have 24 entries")
        sink.arrivals_by_hour = hours
        sink.sim_watch_s = ExactSum.from_dict(data["sim_watch_s"])
        return sink

    def summaries(self) -> List[SchemeSummary]:
        """Per-scheme Fig. 1 rows for every scheme with eligible streams,
        in sorted scheme order."""
        return [
            self.schemes[name].summary()
            for name in sorted(self.schemes)
            if self.schemes[name].n_streams > 0
        ]

"""Session-arrival processes over simulated calendar days.

Puffer's data comes from a service that ran continuously: viewers arrive on
their own schedule, dense in the evening, sparse at 4 a.m., with occasional
surges when something newsworthy airs.  The workload generator reproduces
that shape as a seeded *non-homogeneous Poisson process*:

* a **diurnal** intensity ``base * (1 + amplitude * cos(...))`` peaking at
  ``peak_hour`` local time;
* optional **flash crowds** — time windows during which the intensity is
  multiplied (a popular live event);
* arrivals drawn by Lewis–Shedler **thinning**: candidates from a
  homogeneous Poisson process at the peak intensity, accepted with
  probability ``rate(t) / peak_rate``.

The whole arrival sequence is a pure function of :class:`WorkloadConfig`
(one seeded generator, no global state), so a resumed run regenerates it
exactly and skips the sessions already committed.  Arrival times only drive
*load accounting* (sessions per day, arrivals by hour); the simulation of a
session remains keyed on ``(trial_seed, session_id)`` exactly as in
:func:`repro.experiment.harness.run_session`, which is what keeps sessions
independent and the fleet embarrassingly parallel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

import numpy as np

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

_ARRIVAL_STREAM = 0xF1EE7
"""Domain-separation constant folded into the arrival RNG seed so the
arrival process never replays draws any session makes."""


@dataclass(frozen=True)
class FlashCrowd:
    """A window of elevated arrival intensity (a popular live event)."""

    start_day: float
    """Window start, in fractional days from the start of the run."""

    duration_hours: float
    multiplier: float
    """Intensity multiplier inside the window (``>= 1``)."""

    def __post_init__(self) -> None:
        if self.start_day < 0:
            raise ValueError("flash crowd must start at or after day 0")
        if self.duration_hours <= 0:
            raise ValueError("flash crowd duration must be positive")
        if self.multiplier < 1.0:
            raise ValueError("flash crowd multiplier must be >= 1")

    @property
    def start_s(self) -> float:
        return self.start_day * SECONDS_PER_DAY

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_hours * SECONDS_PER_HOUR

    def active_at(self, t_s: float) -> bool:
        return self.start_s <= t_s < self.end_s

    def to_dict(self) -> dict:
        return {
            "start_day": self.start_day,
            "duration_hours": self.duration_hours,
            "multiplier": self.multiplier,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlashCrowd":
        return cls(
            start_day=float(data["start_day"]),
            duration_hours=float(data["duration_hours"]),
            multiplier=float(data["multiplier"]),
        )


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the deployment's offered load."""

    days: float = 1.0
    """Simulated calendar horizon in days."""

    sessions_per_hour: float = 60.0
    """Baseline (daily-average) arrival intensity."""

    diurnal_amplitude: float = 0.6
    """Relative swing of the diurnal cycle, in ``[0, 1)``: intensity ranges
    over ``base * (1 ± amplitude)`` across the day."""

    peak_hour: float = 20.0
    """Hour of day (0–24) at which the diurnal cycle peaks."""

    flash_crowds: Tuple[FlashCrowd, ...] = field(default_factory=tuple)
    seed: int = 0
    """Seed of the arrival process (independent of the trial seed)."""

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.sessions_per_hour <= 0:
            raise ValueError("sessions_per_hour must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must lie in [0, 1)")
        if not 0.0 <= self.peak_hour < 24.0:
            raise ValueError("peak_hour must lie in [0, 24)")
        # Tuple-coercion so configs built with lists still hash/compare.
        object.__setattr__(self, "flash_crowds", tuple(self.flash_crowds))

    # ------------------------------------------------------------------
    # Intensity function
    # ------------------------------------------------------------------
    @property
    def horizon_s(self) -> float:
        return self.days * SECONDS_PER_DAY

    def rate_per_hour(self, t_s: float) -> float:
        """Instantaneous arrival intensity (sessions/hour) at time ``t_s``."""
        hour_of_day = (t_s / SECONDS_PER_HOUR) % 24.0
        phase = 2.0 * math.pi * (hour_of_day - self.peak_hour) / 24.0
        rate = self.sessions_per_hour * (
            1.0 + self.diurnal_amplitude * math.cos(phase)
        )
        for crowd in self.flash_crowds:
            if crowd.active_at(t_s):
                rate *= crowd.multiplier
        return rate

    def peak_rate_per_hour(self) -> float:
        """Upper bound on :meth:`rate_per_hour` (the thinning envelope).

        The diurnal factor is bounded by ``1 + amplitude``.  The flash-crowd
        factor is the *exact* maximum over time of the product of the
        multipliers simultaneously active: the product is piecewise constant
        and only increases when a window opens (multipliers are ``>= 1``),
        so its maximum is attained at some crowd's ``start_s``.  Each
        candidate product is recomputed from scratch, so overlapping crowds
        no longer degrade thinning acceptance with the product of *all*
        multipliers.
        """
        bound = self.sessions_per_hour * (1.0 + self.diurnal_amplitude)
        best = 1.0
        for crowd in self.flash_crowds:
            product = 1.0
            for other in self.flash_crowds:
                if other.active_at(crowd.start_s):
                    product *= other.multiplier
            if product > best:
                best = product
        return bound * best

    def expected_sessions(self) -> float:
        """Mean of the total-arrival distribution (trapezoidal integral of
        the intensity; diagnostics only — the realized count is random)."""
        step_s = 60.0
        n_steps = int(math.ceil(self.horizon_s / step_s))
        total = 0.0
        for i in range(n_steps):
            lo = i * step_s
            hi = min(lo + step_s, self.horizon_s)
            mid = self.rate_per_hour((lo + hi) / 2.0)
            total += mid * (hi - lo) / SECONDS_PER_HOUR
        return total

    # ------------------------------------------------------------------
    # Serialization (checkpoint fingerprinting and CLI resume)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "days": self.days,
            "sessions_per_hour": self.sessions_per_hour,
            "diurnal_amplitude": self.diurnal_amplitude,
            "peak_hour": self.peak_hour,
            "flash_crowds": [c.to_dict() for c in self.flash_crowds],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadConfig":
        return cls(
            days=float(data["days"]),
            sessions_per_hour=float(data["sessions_per_hour"]),
            diurnal_amplitude=float(data["diurnal_amplitude"]),
            peak_hour=float(data["peak_hour"]),
            flash_crowds=tuple(
                FlashCrowd.from_dict(c) for c in data.get("flash_crowds", [])
            ),
            seed=int(data["seed"]),
        )


@dataclass(frozen=True)
class SessionArrival:
    """One accepted arrival: the session's id and its wall position in the
    simulated deployment calendar."""

    session_id: int
    time_s: float

    @property
    def day(self) -> int:
        return int(self.time_s // SECONDS_PER_DAY)

    @property
    def hour_of_day(self) -> float:
        return (self.time_s / SECONDS_PER_HOUR) % 24.0


class WorkloadGenerator:
    """Deterministic, restartable arrival stream.

    Iterating yields :class:`SessionArrival` objects with consecutive
    session ids starting at 0.  The sequence is a pure function of the
    config: two generators with equal configs yield identical arrivals, so
    a resumed run rebuilds the stream and skips ids below the checkpoint's
    ``next_session_id`` (regeneration costs two RNG draws per candidate —
    negligible next to simulating a session).
    """

    def __init__(self, config: WorkloadConfig) -> None:
        self.config = config

    def __iter__(self) -> Iterator[SessionArrival]:
        return self.arrivals()

    def arrivals(self, start_session_id: int = 0) -> Iterator[SessionArrival]:
        """Yield arrivals with ``session_id >= start_session_id``."""
        if start_session_id < 0:
            raise ValueError("start_session_id must be >= 0")
        config = self.config
        rng = np.random.default_rng((config.seed, _ARRIVAL_STREAM))
        peak_per_s = config.peak_rate_per_hour() / SECONDS_PER_HOUR
        t = 0.0
        session_id = 0
        while True:
            # Lewis–Shedler thinning: exponential candidate gaps at the
            # envelope rate, accepted with probability rate(t)/peak.
            t += float(rng.exponential(1.0 / peak_per_s))
            if t >= config.horizon_s:
                return
            accept = float(rng.random())
            if accept * peak_per_s * SECONDS_PER_HOUR > config.rate_per_hour(t):
                continue
            if session_id >= start_session_id:
                yield SessionArrival(session_id=session_id, time_s=t)
            session_id += 1

    def count(self) -> int:
        """Total number of arrivals over the horizon (one full replay)."""
        n = 0
        for _ in self.arrivals():
            n += 1
        return n

    def take(self, n: int) -> List[SessionArrival]:
        """The first ``n`` arrivals (testing convenience)."""
        out: List[SessionArrival] = []
        for arrival in self.arrivals():
            out.append(arrival)
            if len(out) >= n:
                break
        return out

"""Neural-network substrate built from scratch on numpy.

The paper trains its Transmission Time Predictor (TTP) with PyTorch; this
package provides the minimal equivalent needed by the reproduction: dense
layers, activations, softmax cross-entropy, SGD/Adam optimizers, and a
``Trainer`` supporting minibatching, per-sample weights (the paper weights
recent days more heavily), validation splits, and warm starts.

Everything operates on ``float64`` numpy arrays with samples along axis 0.
"""

from repro.learn.layers import Layer, Linear, ReLU, Sequential
from repro.learn.losses import Loss, MeanSquaredError, SoftmaxCrossEntropy, HuberLoss
from repro.learn.network import MLP
from repro.learn.optim import SGD, Adam, Optimizer
from repro.learn.training import Dataset, Trainer, TrainingReport

__all__ = [
    "Layer",
    "Linear",
    "ReLU",
    "Sequential",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "HuberLoss",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "Dataset",
    "Trainer",
    "TrainingReport",
]

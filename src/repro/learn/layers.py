"""Differentiable layers.

Each layer implements ``forward`` / ``backward`` with explicit caching of
whatever the backward pass needs. Parameters and their gradients are exposed
via ``parameters()`` as ``(name, value, grad)`` triples so optimizers can
update them in place without knowing the layer's structure.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

Array = np.ndarray


class Layer:
    """Base class for a differentiable module."""

    def forward(self, x: Array) -> Array:
        raise NotImplementedError

    def backward(self, grad_out: Array) -> Array:
        """Propagate ``dL/d(output)`` to ``dL/d(input)``, accumulating
        parameter gradients along the way."""
        raise NotImplementedError

    def parameters(self) -> Iterator[Tuple[str, Array, Array]]:
        """Yield ``(name, value, grad)`` triples; value and grad are the
        live arrays (mutated in place by optimizers)."""
        return iter(())

    def zero_grad(self) -> None:
        for _, __, grad in self.parameters():
            grad.fill(0.0)

    def __call__(self, x: Array) -> Array:
        return self.forward(x)


DEFAULT_INIT_SEED = 0
"""Seed for weight initialization when no generator is supplied.

Initialization must be reproducible even for ad-hoc construction: an
unseeded fallback here was exactly the determinism-contract violation
DET001 exists to catch (every random draw flows from an explicit seed).
"""


class Linear(Layer):
    """Fully-connected layer ``y = x W + b``.

    Weights use He initialization, appropriate for the ReLU activations the
    TTP uses.  Pass a seeded ``numpy.random.Generator`` (what the training
    pipeline does, folding ``TrialConfig.seed``); without one the weights
    are drawn from ``seed``, so construction is deterministic either way —
    there is no unseeded path.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        seed: int = DEFAULT_INIT_SEED,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng(seed)
        scale = np.sqrt(2.0 / in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: Optional[Array] = None

    def forward(self, x: Array) -> Array:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input width {self.in_features}, got {x.shape[1]}"
            )
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_out: Array) -> Array:
        if self._input is None:
            raise RuntimeError("backward() called before forward()")
        grad_out = np.atleast_2d(grad_out)
        self.grad_weight += self._input.T @ grad_out
        self.grad_bias += grad_out.sum(axis=0)
        return grad_out @ self.weight.T

    def parameters(self) -> Iterator[Tuple[str, Array, Array]]:
        yield "weight", self.weight, self.grad_weight
        yield "bias", self.bias, self.grad_bias


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[Array] = None

    def forward(self, x: Array) -> Array:
        x = np.asarray(x, dtype=float)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: Array) -> Array:
        if self._mask is None:
            raise RuntimeError("backward() called before forward()")
        return np.where(self._mask, grad_out, 0.0)


class Sequential(Layer):
    """Composition of layers applied in order."""

    def __init__(self, layers: List[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: Array) -> Array:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: Array) -> Array:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def parameters(self) -> Iterator[Tuple[str, Array, Array]]:
        for i, layer in enumerate(self.layers):
            for name, value, grad in layer.parameters():
                yield f"{i}.{name}", value, grad

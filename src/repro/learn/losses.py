"""Loss functions.

Each loss returns ``(value, grad)`` where ``grad`` is the derivative with
respect to the network's raw output (logits for classification losses).
Per-sample weights are supported throughout because the TTP's training
procedure weights recent days more heavily (§4.3 of the paper).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

Array = np.ndarray


def _normalize_weights(weights: Optional[Array], n: int) -> Array:
    """Return per-sample weights normalized to sum to ``n`` so that loss
    magnitudes stay comparable whether or not weighting is used."""
    if weights is None:
        return np.ones(n)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (n,):
        raise ValueError(f"expected {n} sample weights, got shape {weights.shape}")
    if np.any(weights < 0):
        raise ValueError("sample weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("sample weights must not all be zero")
    return weights * (n / total)


def log_softmax(logits: Array) -> Array:
    """Numerically stable log-softmax along the last axis."""
    logits = np.asarray(logits, dtype=float)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def softmax(logits: Array) -> Array:
    """Numerically stable softmax along the last axis."""
    return np.exp(log_softmax(logits))


class Loss:
    """Base class: callable returning ``(scalar_loss, grad_wrt_output)``."""

    def __call__(
        self, output: Array, target: Array, weights: Optional[Array] = None
    ) -> Tuple[float, Array]:
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Cross-entropy between softmax(logits) and integer class targets.

    This is the TTP's training loss: the actual transmission time is
    discretized into one of 21 bins and the network minimizes cross-entropy
    against that bin index.
    """

    def __call__(
        self, output: Array, target: Array, weights: Optional[Array] = None
    ) -> Tuple[float, Array]:
        logits = np.atleast_2d(output)
        target = np.asarray(target, dtype=int).ravel()
        n, k = logits.shape
        if target.shape != (n,):
            raise ValueError(f"expected {n} targets, got shape {target.shape}")
        if target.min() < 0 or target.max() >= k:
            raise ValueError(f"targets must lie in [0, {k})")
        w = _normalize_weights(weights, n)
        logp = log_softmax(logits)
        loss = float(-(w * logp[np.arange(n), target]).mean())
        grad = softmax(logits)
        grad[np.arange(n), target] -= 1.0
        grad *= (w / n)[:, None]
        return loss, grad


class MeanSquaredError(Loss):
    """Mean squared error for regression heads (point-estimate TTP ablation)."""

    def __call__(
        self, output: Array, target: Array, weights: Optional[Array] = None
    ) -> Tuple[float, Array]:
        output = np.atleast_2d(output)
        target = np.asarray(target, dtype=float).reshape(output.shape)
        n = output.shape[0]
        w = _normalize_weights(weights, n)
        diff = output - target
        loss = float((w[:, None] * diff**2).mean())
        grad = 2.0 * diff * (w / n)[:, None] / output.shape[1]
        return loss, grad


class HuberLoss(Loss):
    """Huber loss — robust regression alternative used by the value head of
    the Pensieve critic, where occasional huge rewards (long stalls) would
    otherwise dominate the gradient."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def __call__(
        self, output: Array, target: Array, weights: Optional[Array] = None
    ) -> Tuple[float, Array]:
        output = np.atleast_2d(output)
        target = np.asarray(target, dtype=float).reshape(output.shape)
        n = output.shape[0]
        w = _normalize_weights(weights, n)
        diff = output - target
        abs_diff = np.abs(diff)
        quadratic = abs_diff <= self.delta
        per_elem = np.where(
            quadratic,
            0.5 * diff**2,
            self.delta * (abs_diff - 0.5 * self.delta),
        )
        loss = float((w[:, None] * per_elem).mean())
        grad_elem = np.where(quadratic, diff, self.delta * np.sign(diff))
        grad = grad_elem * (w / n)[:, None] / output.shape[1]
        return loss, grad

"""Multi-layer perceptron with JSON serialization.

The paper's TTP is "a fully-connected neural network, with two hidden layers
with 64 neurons each" (§4.5); ``MLP`` generalizes that shape so the ablation
study (shallow/linear variants) reuses the same machinery.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.learn.layers import DEFAULT_INIT_SEED, Linear, ReLU, Sequential
from repro.learn.losses import softmax

Array = np.ndarray


class MLP(Sequential):
    """Fully-connected network: Linear(+ReLU) stacks ending in a linear head.

    ``hidden`` may be empty, producing a plain linear model — the paper's
    "Linear" TTP ablation ("equivalent to a single-layer neural network").
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        seed: int = DEFAULT_INIT_SEED,
    ) -> None:
        self.in_features = in_features
        self.hidden = list(hidden)
        self.out_features = out_features
        if rng is None:
            # One seeded generator shared by every layer: deterministic,
            # but each layer still draws distinct weights (a per-layer
            # seeded fallback would initialize same-shaped layers
            # identically and break symmetry).
            rng = np.random.default_rng(seed)
        layers: List = []
        width = in_features
        for h in self.hidden:
            layers.append(Linear(width, h, rng=rng))
            layers.append(ReLU())
            width = h
        layers.append(Linear(width, out_features, rng=rng))
        super().__init__(layers)

    # ------------------------------------------------------------------
    # Inference helpers
    # ------------------------------------------------------------------
    def predict(self, x: Array) -> Array:
        """Forward pass without caching overhead semantics (same as forward,
        provided for API clarity at call sites that never backprop)."""
        return self.forward(np.atleast_2d(np.asarray(x, dtype=float)))

    def predict_proba(self, x: Array) -> Array:
        """Softmax over the output head — the TTP's probability distribution
        over transmission-time bins."""
        return softmax(self.predict(x))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Return a JSON-serializable snapshot of architecture + weights."""
        weights = {
            name: value.tolist() for name, value, _ in self.parameters()
        }
        return {
            "in_features": self.in_features,
            "hidden": self.hidden,
            "out_features": self.out_features,
            "weights": weights,
        }

    def load_state_dict(self, state: dict) -> None:
        """Load weights saved by :meth:`state_dict` into this network.

        The architecture recorded in ``state`` must match; this is how the
        daily-retraining pipeline warm-starts from yesterday's model (§4.3).
        """
        if (
            state["in_features"] != self.in_features
            or list(state["hidden"]) != self.hidden
            or state["out_features"] != self.out_features
        ):
            raise ValueError("architecture mismatch while loading state dict")
        saved = state["weights"]
        for name, value, _ in self.parameters():
            if name not in saved:
                raise ValueError(f"missing parameter {name!r} in state dict")
            arr = np.asarray(saved[name], dtype=float)
            if arr.shape != value.shape:
                raise ValueError(f"shape mismatch for parameter {name!r}")
            value[...] = arr

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.state_dict()))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "MLP":
        state = json.loads(Path(path).read_text())
        model = cls(state["in_features"], state["hidden"], state["out_features"])
        model.load_state_dict(state)
        return model

    def copy(self) -> "MLP":
        """Deep copy — used to snapshot 'out-of-date' TTPs for the staleness
        ablation (§4.6)."""
        clone = MLP(self.in_features, self.hidden, self.out_features)
        clone.load_state_dict(self.state_dict())
        return clone

"""Optimizers operating in place on layer parameters."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.learn.layers import Layer

Array = np.ndarray


class Optimizer:
    """Base optimizer bound to a model's parameters."""

    def __init__(self, model: Layer, lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.model = model
        self.lr = lr

    def _params(self) -> Iterable[Tuple[str, Array, Array]]:
        return self.model.parameters()

    def zero_grad(self) -> None:
        self.model.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        model: Layer,
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(model, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, Array] = {}

    def step(self) -> None:
        for name, value, grad in self._params():
            update = grad
            if self.weight_decay:
                update = update + self.weight_decay * value
            if self.momentum:
                vel = self._velocity.setdefault(name, np.zeros_like(value))
                vel *= self.momentum
                vel += update
                update = vel
            value -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        model: Layer,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(model, lr)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must lie in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[str, Array] = {}
        self._v: Dict[str, Array] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for name, value, grad in self._params():
            if self.weight_decay:
                grad = grad + self.weight_decay * value
            m = self._m.setdefault(name, np.zeros_like(value))
            v = self._v.setdefault(name, np.zeros_like(value))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            value -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

"""Supervised-learning trainer.

Implements the training procedure from §4.3: minibatch stochastic gradient
descent on a loss, with shuffling ("we shuffle the sampled data to remove
correlation in the sequence of inputs"), per-sample weights ("we weight more
recent days more heavily"), an optional validation split with early stopping,
and warm starts from an existing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.learn.losses import Loss
from repro.learn.network import MLP
from repro.learn.optim import Adam, Optimizer

Array = np.ndarray


@dataclass
class Dataset:
    """A supervised dataset: feature matrix, targets, optional weights."""

    features: Array
    targets: Array
    weights: Optional[Array] = None

    def __post_init__(self) -> None:
        self.features = np.atleast_2d(np.asarray(self.features, dtype=float))
        self.targets = np.asarray(self.targets)
        if len(self.targets) != len(self.features):
            raise ValueError("features and targets must have equal length")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=float)
            if len(self.weights) != len(self.features):
                raise ValueError("weights must match dataset length")

    def __len__(self) -> int:
        return len(self.features)

    def subset(self, index: Array) -> "Dataset":
        return Dataset(
            self.features[index],
            self.targets[index],
            None if self.weights is None else self.weights[index],
        )

    def split(
        self, validation_fraction: float, rng: np.random.Generator
    ) -> "tuple[Dataset, Dataset]":
        """Random train/validation split."""
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must lie in (0, 1)")
        n = len(self)
        perm = rng.permutation(n)
        n_val = max(1, int(round(n * validation_fraction)))
        if n_val >= n:
            raise ValueError("dataset too small for requested validation split")
        return self.subset(perm[n_val:]), self.subset(perm[:n_val])

    @staticmethod
    def concatenate(datasets: "List[Dataset]") -> "Dataset":
        """Stack several datasets (e.g., one per day of telemetry)."""
        if not datasets:
            raise ValueError("cannot concatenate zero datasets")
        feats = np.concatenate([d.features for d in datasets])
        targs = np.concatenate([d.targets for d in datasets])
        if any(d.weights is not None for d in datasets):
            weights = np.concatenate(
                [
                    d.weights if d.weights is not None else np.ones(len(d))
                    for d in datasets
                ]
            )
        else:
            weights = None
        return Dataset(feats, targs, weights)


@dataclass
class TrainingReport:
    """Per-epoch training history."""

    train_losses: List[float] = field(default_factory=list)
    validation_losses: List[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False

    @property
    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")

    @property
    def final_validation_loss(self) -> float:
        if not self.validation_losses:
            return float("nan")
        return self.validation_losses[-1]


class Trainer:
    """Minibatch trainer for an :class:`MLP`.

    Parameters
    ----------
    model:
        Network to train (possibly warm-started from a previous day).
    loss:
        Loss object from :mod:`repro.learn.losses`.
    optimizer:
        Defaults to Adam with ``lr=1e-3``.
    batch_size, epochs:
        Minibatch size and maximum epoch count.
    patience:
        If a validation set is used, stop after this many epochs without
        improvement. ``None`` disables early stopping.
    """

    def __init__(
        self,
        model: MLP,
        loss: Loss,
        optimizer: Optional[Optimizer] = None,
        batch_size: int = 64,
        epochs: int = 50,
        patience: Optional[int] = 5,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0 or epochs <= 0:
            raise ValueError("batch_size and epochs must be positive")
        self.model = model
        self.loss = loss
        self.optimizer = optimizer if optimizer is not None else Adam(model)
        self.batch_size = batch_size
        self.epochs = epochs
        self.patience = patience
        self.rng = np.random.default_rng(seed)

    def evaluate(self, dataset: Dataset) -> float:
        """Loss over a dataset without updating parameters."""
        output = self.model.forward(dataset.features)
        value, _ = self.loss(output, dataset.targets, dataset.weights)
        return value

    def fit(
        self, dataset: Dataset, validation: Optional[Dataset] = None
    ) -> TrainingReport:
        """Train the model, returning the epoch-by-epoch history."""
        report = TrainingReport()
        best_val = float("inf")
        best_state: Optional[dict] = None
        stale_epochs = 0
        n = len(dataset)
        for _ in range(self.epochs):
            perm = self.rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, self.batch_size):
                batch = dataset.subset(perm[start : start + self.batch_size])
                output = self.model.forward(batch.features)
                value, grad = self.loss(output, batch.targets, batch.weights)
                self.optimizer.zero_grad()
                self.model.backward(grad)
                self.optimizer.step()
                epoch_loss += value
                batches += 1
            report.train_losses.append(epoch_loss / max(batches, 1))
            report.epochs_run += 1
            if validation is not None:
                val = self.evaluate(validation)
                report.validation_losses.append(val)
                if val < best_val - 1e-9:
                    best_val = val
                    best_state = self.model.state_dict()
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if self.patience is not None and stale_epochs >= self.patience:
                        report.stopped_early = True
                        break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return report

"""repro.lint — AST-based determinism & correctness linter.

A zero-dependency static-analysis pass that enforces the reproduction's
*determinism contract* (see README "Determinism contract"): every random
draw flows from ``TrialConfig.seed``, no wall-clock value leaks into
simulated time, nothing iterates in hash order on an order-sensitive path,
and instrumentation stays behind the cheap ``obs.ENABLED`` guard.

Rules
-----
=======  ==================================================================
DET001   unseeded / module-global RNG (``np.random.default_rng()`` with no
         seed, bare ``random.*``, legacy ``np.random.<fn>`` global draws)
DET002   wall-clock reads (``time.time``/``perf_counter``/
         ``datetime.now``…) outside the quarantined ``repro.obs`` profiling
DET003   iteration over ``set(...)`` / ``.keys()`` views without
         ``sorted(...)``
SIM001   float ``==``/``!=`` in control-flow conditions in ``repro.net``,
         ``repro.streaming``, ``repro.core``
OBS001   metric/trace emission not guarded by ``if obs.ENABLED:``
API001   mutable default arguments
=======  ==================================================================

Findings can be waived inline with a reasoned suppression comment::

    t0 = time.perf_counter()  # repro: allow-DET002(throughput report only)

or grandfathered in a committed ``lint-baseline.json``.  Run it as
``repro lint [paths]``; the tier-1 suite gates on the tree linting clean
(``tests/lint/test_tree_clean.py``).
"""

from __future__ import annotations

from repro.lint.base import (
    FileContext,
    Rule,
    derive_module,
    make_rules,
    register,
    registered_rules,
)
from repro.lint.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.lint.cli import main
from repro.lint.engine import (
    LintReport,
    discover_files,
    lint_paths,
    lint_source,
    refreshed_baseline,
)
from repro.lint.findings import Finding
from repro.lint.suppressions import (
    MALFORMED_RULE_ID,
    Suppression,
    parse_suppressions,
)

# Importing the rule modules registers the rules.
from repro.lint import rules_api as _rules_api  # noqa: F401
from repro.lint import rules_det as _rules_det  # noqa: F401
from repro.lint import rules_obs as _rules_obs  # noqa: F401
from repro.lint import rules_sim as _rules_sim  # noqa: F401

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_NAME",
    "FileContext",
    "Finding",
    "LintReport",
    "MALFORMED_RULE_ID",
    "Rule",
    "Suppression",
    "derive_module",
    "discover_files",
    "lint_paths",
    "lint_source",
    "main",
    "make_rules",
    "parse_suppressions",
    "refreshed_baseline",
    "register",
    "registered_rules",
]

"""Rule framework: file context, rule base class, and the rule registry.

Every rule is a small class with a unique uppercase id (``DET001``, …), a
one-line contract, and a ``check`` method that walks one file's AST and
yields :class:`~repro.lint.findings.Finding` objects.  Rules register
themselves with the :func:`register` decorator; the engine instantiates the
registry fresh per run so rules may keep per-file state.

Rules never read the filesystem — the engine hands them a
:class:`FileContext` carrying the parsed tree, the source lines, and the
*effective dotted module name*, which is how path-scoped rules (e.g. the
``repro.obs`` wall-clock quarantine) decide applicability.  Fixture files
outside the package tree can opt into a scope with a pragma comment::

    # repro: module=repro.net.fake

placed in the first few lines.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Type

from repro.lint.findings import Finding

_MODULE_PRAGMA = re.compile(r"#\s*repro:\s*module=([A-Za-z_][\w.]*)")


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str
    """Path as reported in findings (relative to the lint root)."""

    tree: ast.Module
    lines: Sequence[str]
    """Physical source lines, 0-indexed (``lines[lineno - 1]``)."""

    module: str = ""
    """Effective dotted module name (e.g. ``repro.net.tcp``); empty when the
    file is outside a recognizable package and carries no pragma."""

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def in_package(self, *prefixes: str) -> bool:
        """True when the effective module sits under any dotted prefix."""
        for prefix in prefixes:
            if self.module == prefix or self.module.startswith(prefix + "."):
                return True
        return False


def derive_module(path: str, pragma_lines: Sequence[str]) -> str:
    """Compute the effective dotted module for *path*.

    A ``# repro: module=...`` pragma in the first ten lines wins; otherwise
    the dotted path from the last ``src`` (or first ``repro``) component.
    """
    for raw in list(pragma_lines)[:10]:
        match = _MODULE_PRAGMA.search(raw)
        if match:
            return match.group(1)
    parts = list(re.split(r"[\\/]+", path.strip()))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        return ""
    return ".".join(p for p in parts if p)


class Rule:
    """Base class for lint rules.  Subclasses set ``id``/``summary`` and
    implement :meth:`check`."""

    id: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
    ) -> Finding:
        lineno = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=lineno,
            col=col,
            message=message,
            source_line=ctx.source_line(lineno),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *rule_cls* to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (idempotent, lazy to avoid import
    cycles): each module registers its rules on import."""
    from repro.lint import (  # noqa: F401
        rules_api,
        rules_det,
        rules_obs,
        rules_sim,
    )


def registered_rules() -> Dict[str, Type[Rule]]:
    """Snapshot of the registry (id -> rule class), sorted by id."""
    _load_builtin_rules()
    return dict(sorted(_REGISTRY.items()))


def make_rules(select: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate registered rules, optionally restricted to ``select``."""
    _load_builtin_rules()
    rules: List[Rule] = []
    for rule_id, rule_cls in sorted(_REGISTRY.items()):
        if select is not None and rule_id not in select:
            continue
        rules.append(rule_cls())
    if select is not None:
        unknown = sorted(set(select) - set(_REGISTRY))
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return rules


# -- shared AST helpers ------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains as a dotted string."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class ImportMap:
    """Aliases under which interesting modules/names are visible in a file."""

    modules: Dict[str, str] = field(default_factory=dict)
    """local alias -> real dotted module (``np`` -> ``numpy``)."""

    names: Dict[str, str] = field(default_factory=dict)
    """local name -> real dotted origin (``default_rng`` ->
    ``numpy.random.default_rng``)."""


def collect_imports(tree: ast.Module) -> ImportMap:
    imports = ImportMap()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports.modules[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    imports.modules[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports.names[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return imports


def resolve_call_target(
    node: ast.Call, imports: ImportMap
) -> Optional[str]:
    """Best-effort fully-qualified dotted target of a call.

    ``np.random.default_rng()`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; ``default_rng()`` after
    ``from numpy.random import default_rng`` resolves the same.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head in imports.names and not rest:
        return imports.names[head]
    if head in imports.names and rest:
        return f"{imports.names[head]}.{rest}"
    if head in imports.modules:
        real = imports.modules[head]
        return f"{real}.{rest}" if rest else real
    return dotted


def walk_condition_expressions(tree: ast.Module) -> Iterator[ast.expr]:
    """Yield every expression used as a control-flow condition."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            yield node.test
        elif isinstance(node, ast.Assert):
            yield node.test
        elif isinstance(node, ast.comprehension):
            for cond in node.ifs:
                yield cond


def iter_calls(
    tree: ast.Module, predicate: Callable[[ast.Call], bool]
) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and predicate(node):
            yield node

"""Committed baseline of grandfathered findings.

The baseline maps finding fingerprints (rule + path + offending-line hash,
see :meth:`repro.lint.findings.Finding.fingerprint`) to an allowed count.
Findings matching a baseline entry are reported as *baselined* and do not
fail the run; anything beyond the allowed count is new and fails.  The goal
state is an empty baseline — it exists so the linter can be adopted on a
tree with historical findings without blocking CI, then burned down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Union

from repro.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass
class Baseline:
    """Allowed historical findings, keyed by fingerprint."""

    counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}"
            )
        raw = data.get("findings", {})
        if not isinstance(raw, dict):
            raise ValueError(f"malformed baseline file {path}")
        counts: Dict[str, int] = {}
        for key, value in raw.items():
            counts[str(key)] = int(value)
        return cls(counts=counts)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        counts: Dict[str, int] = {}
        for finding in findings:
            key = finding.fingerprint()
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts)

    def write(self, path: Union[str, Path]) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": {k: self.counts[k] for k in sorted(self.counts)},
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def apply(self, findings: Sequence[Finding]) -> List[Finding]:
        """Mark findings covered by the baseline, respecting counts.

        Two deterministic passes:

        1. **exact** — findings whose full ``rule:path:hash`` fingerprint
           has remaining budget consume it, in (path, line) order, so the
           *first* N occurrences of a grandfathered fingerprint are
           baselined and any extras surface as new;
        2. **rename-tolerant** — leftovers fall back to the path-free
           ``rule:hash`` form against the budget of *unconsumed* exact
           entries.  A renamed or moved file therefore keeps its
           grandfathered findings (same rule, same offending line text)
           without a baseline rewrite.
        """
        ordered = sorted(findings, key=Finding.sort_key)
        remaining = dict(self.counts)

        # Pass 1: exact fingerprints.
        baselined: Dict[int, bool] = {}
        for index, finding in enumerate(ordered):
            key = finding.fingerprint()
            if remaining.get(key, 0) > 0 and not finding.suppressed:
                remaining[key] -= 1
                baselined[index] = True

        # Pass 2: rename-tolerant fallback over the unconsumed budget.
        content_budget: Dict[str, int] = {}
        for key, count in remaining.items():
            if count <= 0:
                continue
            rule, _, content = _split_fingerprint(key)
            if content:
                fallback = f"{rule}:{content}"
                content_budget[fallback] = (
                    content_budget.get(fallback, 0) + count
                )
        for index, finding in enumerate(ordered):
            if baselined.get(index) or finding.suppressed:
                continue
            fallback = finding.content_fingerprint()
            if content_budget.get(fallback, 0) > 0:
                content_budget[fallback] -= 1
                baselined[index] = True

        out: List[Finding] = []
        for index, finding in enumerate(ordered):
            if baselined.get(index):
                out.append(
                    Finding(
                        rule=finding.rule,
                        path=finding.path,
                        line=finding.line,
                        col=finding.col,
                        message=finding.message,
                        source_line=finding.source_line,
                        baselined=True,
                    )
                )
            else:
                out.append(finding)
        return out


def _split_fingerprint(key: str) -> "tuple[str, str, str]":
    """Split ``rule:path:content-hash`` (path may itself contain colons on
    exotic filesystems — the rule and hash never do)."""
    rule, _, rest = key.partition(":")
    path, _, content = rest.rpartition(":")
    return rule, path, content

"""Content-hash cache for per-file lint findings.

The tier-1 tree-clean gate (``tests/lint/test_tree_clean.py``) re-lints
every file in ``src/repro`` on every run; parsing plus six rule passes over
~100 files dominates the gate's runtime.  Per-file findings are a pure
function of ``(rule-set, reported path, file bytes)``, so they cache
perfectly:

* **key** — SHA-256 over the rule-set fingerprint (a digest of the lint
  package's own source files — editing any rule invalidates everything),
  the selected-rule list, the path as it appears in findings, and the file
  content;
* **value** — the serialized finding list (including suppressed findings
  and their reasons; baseline state is *not* cached — the baseline is
  applied after retrieval).

The cache lives under ``.lint-cache/`` in the working directory.  Every
I/O failure degrades silently to a miss (read-only checkouts just don't
cache), and it is **disabled** when the ``CI`` environment variable is set
(CI must always exercise the full path) or when ``REPRO_LINT_CACHE=0``.
``REPRO_LINT_CACHE_DIR`` overrides the location.

The whole-program phase is never cached: its result depends on every file
at once.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Sequence

import repro.lint as _lint_package
from repro.atomio import atomic_write_text
from repro.lint.findings import Finding

CACHE_VERSION = 1
DEFAULT_CACHE_DIR = ".lint-cache"

_RULESET_FINGERPRINT: Optional[str] = None


def cache_enabled() -> bool:
    """Cache policy: on by default, off in CI or via ``REPRO_LINT_CACHE=0``."""
    if os.environ.get("REPRO_LINT_CACHE") == "0":
        return False
    if os.environ.get("CI"):
        return False
    return True


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_LINT_CACHE_DIR", DEFAULT_CACHE_DIR))


def ruleset_fingerprint(package_dir: Optional[Path] = None) -> str:
    """Digest of the lint package's own sources (computed once per process).

    Any edit to a rule, the engine, the suppression parser, or the finding
    format changes the fingerprint and invalidates every cache entry — the
    cache can never serve findings produced by a different linter.  Passing
    an explicit *package_dir* bypasses the process-wide memo (used by tests
    that prove editing a rule file rolls the key).
    """
    global _RULESET_FINGERPRINT
    if package_dir is None and _RULESET_FINGERPRINT is not None:
        return _RULESET_FINGERPRINT
    digest = hashlib.sha256()
    digest.update(f"cache-v{CACHE_VERSION}\n".encode("utf-8"))
    root = (
        package_dir
        if package_dir is not None
        else Path(_lint_package.__file__).resolve().parent
    )
    try:
        sources = sorted(root.glob("*.py"))
        for source in sources:
            digest.update(source.name.encode("utf-8"))
            digest.update(source.read_bytes())
    except OSError:  # pragma: no cover - unreadable install
        digest.update(b"unreadable")
    result = digest.hexdigest()
    if package_dir is None:
        _RULESET_FINGERPRINT = result
    return result


class FindingsCache:
    """Filesystem-backed findings cache; every failure is a silent miss."""

    def __init__(
        self,
        root: Optional[Path] = None,
        select: Optional[Sequence[str]] = None,
    ) -> None:
        self.root = root if root is not None else cache_dir()
        select_key = ",".join(sorted(select)) if select is not None else "*"
        self._prefix = f"{ruleset_fingerprint()}\n{select_key}\n"
        self.hits = 0
        self.misses = 0

    def _entry_path(self, path_key: str, source: str) -> Path:
        digest = hashlib.sha256(
            (self._prefix + path_key + "\n").encode("utf-8")
            + source.encode("utf-8")
        ).hexdigest()
        return self.root / f"{digest}.json"

    def get(self, path_key: str, source: str) -> Optional[List[Finding]]:
        entry = self._entry_path(path_key, source)
        try:
            raw = entry.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw)
            findings = [Finding.from_dict(item) for item in payload]
        except (ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(
        self, path_key: str, source: str, findings: Sequence[Finding]
    ) -> None:
        entry = self._entry_path(path_key, source)
        payload = json.dumps(
            [f.to_dict() for f in findings], sort_keys=True
        )
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            # durable=False: losing a cache entry on power cut merely
            # costs a re-lint; atomicity (no torn entries) still matters.
            atomic_write_text(entry, payload, durable=False)
        except OSError:
            return

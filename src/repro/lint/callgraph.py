"""Module-level call graph for the whole-program lint phase.

The per-file rules of :mod:`repro.lint` are deliberately local: each looks
at one AST and nothing else.  The purity rules (``PURE001``–``PURE003``)
need the opposite view — *which functions can execute while a pure
entrypoint runs* — so this module builds a conservative static call graph
over every linted file and computes the transitive closure from a set of
declared roots (see :mod:`repro.lint.purity`).

Resolution is best-effort and intentionally **over-approximates**:

* direct calls to module-level functions (local, ``from x import f``, and
  ``module.f`` forms) resolve exactly via the per-file import map;
* ``SomeClass(...)`` resolves to ``SomeClass.__init__`` and, for
  dataclasses, ``__post_init__`` (including inherited initializers);
* ``self.method()`` resolves within the defining class, its bases, *and*
  every subclass override (static virtual dispatch);
* ``obj.method()`` on a receiver of unknown type resolves *by name* to
  every method of that name anywhere in the graph — except names that
  collide with builtin container/string methods (``append``, ``items``,
  ``format``…), which would otherwise drag the whole tree into every
  region.

Over-approximation is sound for purity checking (a function is only ever
checked *more* often than strictly necessary); the name blocklist is the
one deliberate precision trade-off and is documented in EXPERIMENTS.md.
Properties and attribute reads are not traversed.

Everything here is pure stdlib ``ast`` and deterministic: modules are
processed in sorted path order and edge lists are sorted, so reachability
(and therefore the whole-program findings) is byte-stable across runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.lint.base import ImportMap, collect_imports, dotted_name

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Method names never resolved by bare-name matching: they collide with
#: builtin list/dict/set/str/file methods, so a name match would connect
#: ``session.streams.append(...)`` to any user-defined ``append`` and melt
#: the pure region into the whole tree.  Calls through these names on a
#: *resolved* receiver (``self.update(...)``) still link exactly.
NAME_MATCH_BLOCKLIST = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "sort", "reverse", "add", "discard", "update", "get", "setdefault",
        "keys", "values", "items", "copy", "count", "index",
        "join", "split", "strip", "lstrip", "rstrip", "replace", "format",
        "startswith", "endswith", "encode", "decode", "lower", "upper",
        "read", "write", "close", "flush", "seek", "tell", "open",
        "appendleft", "popleft",
        "mean", "sum", "min", "max", "astype", "tolist", "item", "fill",
        "dump", "dumps", "load", "loads", "exists",
    }
)

#: Mutating container methods (used by the PURE001 rule when the receiver
#: is a module-level binding).
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "sort", "reverse", "add", "discard", "update", "setdefault",
        "__setitem__", "__delitem__", "appendleft", "popleft",
    }
)


@dataclass
class ParsedModule:
    """One parsed file, as the graph builder consumes it."""

    path: str
    module: str
    tree: ast.Module
    lines: Sequence[str]


@dataclass
class FunctionInfo:
    """One module-level function or class method."""

    qualname: str
    """``repro.pkg.mod.func`` or ``repro.pkg.mod.Class.method``."""

    module: str
    path: str
    node: FunctionNode
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One module-level class."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    bases: Tuple[str, ...] = ()
    """Resolved dotted base names (best effort)."""

    methods: Dict[str, str] = field(default_factory=dict)
    """method name -> function qualname."""

    is_dataclass: bool = False


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        name = dotted_name(deco.func if isinstance(deco, ast.Call) else deco)
        if name in {"dataclass", "dataclasses.dataclass"}:
            return True
    return False


class CallGraph:
    """Static call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.modules: Dict[str, ParsedModule] = {}
        self.edges: Dict[str, Tuple[str, ...]] = {}
        self._imports: Dict[str, ImportMap] = {}
        self._methods_by_name: Dict[str, List[str]] = {}
        self._parent: Dict[str, Optional[str]] = {}

    # -- construction -------------------------------------------------------
    @classmethod
    def build(cls, modules: Iterable[ParsedModule]) -> "CallGraph":
        graph = cls()
        ordered = sorted(modules, key=lambda m: m.path)
        for parsed in ordered:
            if not parsed.module:
                continue
            graph.modules[parsed.module] = parsed
            graph._imports[parsed.module] = collect_imports(parsed.tree)
            graph._collect_definitions(parsed)
        graph._index_methods()
        for qualname in sorted(graph.functions):
            graph.edges[qualname] = graph._resolve_edges(qualname)
        return graph

    def _collect_definitions(self, parsed: ParsedModule) -> None:
        for node in parsed.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{parsed.module}.{node.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname,
                    module=parsed.module,
                    path=parsed.path,
                    node=node,
                )
            elif isinstance(node, ast.ClassDef):
                self._collect_class(parsed, node)

    def _collect_class(self, parsed: ParsedModule, node: ast.ClassDef) -> None:
        imports = self._imports[parsed.module]
        qualname = f"{parsed.module}.{node.name}"
        bases: List[str] = []
        for base in node.bases:
            dotted = dotted_name(base)
            if dotted is None:
                continue
            bases.append(_resolve_dotted(dotted, imports, parsed.module))
        info = ClassInfo(
            qualname=qualname,
            module=parsed.module,
            path=parsed.path,
            node=node,
            bases=tuple(bases),
            is_dataclass=_is_dataclass(node),
        )
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qual = f"{qualname}.{item.name}"
                self.functions[method_qual] = FunctionInfo(
                    qualname=method_qual,
                    module=parsed.module,
                    path=parsed.path,
                    node=item,
                    class_name=node.name,
                )
                info.methods[item.name] = method_qual
        self.classes[qualname] = info

    def _index_methods(self) -> None:
        for qualname, fn in self.functions.items():
            if fn.class_name is None:
                continue
            name = fn.name
            if name in NAME_MATCH_BLOCKLIST or name.startswith("__"):
                continue
            self._methods_by_name.setdefault(name, []).append(qualname)
        for matches in self._methods_by_name.values():
            matches.sort()

    # -- class hierarchy ----------------------------------------------------
    def ancestors(self, class_qualname: str) -> List[str]:
        """Known ancestor classes, nearest first (cycle-safe)."""
        out: List[str] = []
        seen: Set[str] = set()
        queue = list(self.classes[class_qualname].bases)
        while queue:
            base = queue.pop(0)
            if base in seen or base not in self.classes:
                continue
            seen.add(base)
            out.append(base)
            queue.extend(self.classes[base].bases)
        return out

    def subclasses(self, class_qualname: str) -> List[str]:
        """Every known class with *class_qualname* among its ancestors."""
        out = [
            qualname
            for qualname in self.classes
            if class_qualname in self.ancestors(qualname)
        ]
        return sorted(out)

    def lookup_method(self, class_qualname: str, name: str) -> Optional[str]:
        """Resolve *name* on a class through its MRO (graph-known part)."""
        info = self.classes.get(class_qualname)
        if info is None:
            return None
        if name in info.methods:
            return info.methods[name]
        for base in self.ancestors(class_qualname):
            base_info = self.classes[base]
            if name in base_info.methods:
                return base_info.methods[name]
        return None

    def constructor_targets(self, class_qualname: str) -> List[str]:
        """Functions executed when ``Class(...)`` is evaluated."""
        targets: List[str] = []
        for method in ("__init__", "__post_init__", "__new__"):
            resolved = self.lookup_method(class_qualname, method)
            if resolved is not None:
                targets.append(resolved)
        return targets

    # -- edge resolution ----------------------------------------------------
    def _resolve_edges(self, qualname: str) -> Tuple[str, ...]:
        fn = self.functions[qualname]
        imports = self._imports[fn.module]
        targets: Set[str] = set()
        class_qual = (
            f"{fn.module}.{fn.class_name}" if fn.class_name else None
        )
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            targets.update(
                self._resolve_call(node, fn.module, imports, class_qual)
            )
        targets.discard(qualname)
        return tuple(sorted(targets))

    def _resolve_call(
        self,
        node: ast.Call,
        module: str,
        imports: ImportMap,
        class_qual: Optional[str],
    ) -> Set[str]:
        out: Set[str] = set()
        func = node.func
        # self.method(...) — exact + virtual dispatch over subclasses.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in {"self", "cls"}
            and class_qual is not None
        ):
            exact = self.lookup_method(class_qual, func.attr)
            if exact is not None:
                out.add(exact)
            for sub in self.subclasses(class_qual):
                override = self.classes[sub].methods.get(func.attr)
                if override is not None:
                    out.add(override)
            return out

        dotted = dotted_name(func)
        if dotted is not None:
            resolved = _resolve_dotted(dotted, imports, module)
            if resolved in self.functions:
                out.add(resolved)
                return out
            if resolved in self.classes:
                out.update(self.constructor_targets(resolved))
                return out

        # obj.method(...) on an unresolvable receiver: name match.
        if isinstance(func, ast.Attribute):
            name = func.attr
            if name not in NAME_MATCH_BLOCKLIST and not name.startswith("__"):
                out.update(self._methods_by_name.get(name, ()))
        return out

    # -- reachability -------------------------------------------------------
    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Transitive closure of *roots* over the call edges.

        Also records a parent map so :meth:`witness_path` can explain *why*
        a function is in the region.
        """
        self._parent = {}
        seen: Set[str] = set()
        queue: List[str] = []
        for root in sorted(set(roots)):
            if root in self.functions and root not in seen:
                seen.add(root)
                self._parent[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for target in self.edges.get(current, ()):
                if target in seen:
                    continue
                seen.add(target)
                self._parent[target] = current
                queue.append(target)
        return seen

    def witness_path(self, qualname: str, limit: int = 6) -> List[str]:
        """Shortest known chain root → … → *qualname* (root first)."""
        chain: List[str] = []
        cursor: Optional[str] = qualname
        while cursor is not None and len(chain) < limit:
            chain.append(cursor)
            cursor = self._parent.get(cursor)
        chain.reverse()
        return chain


def _resolve_dotted(dotted: str, imports: ImportMap, module: str) -> str:
    """Fully qualify a dotted reference using the file's import map.

    Local module-level names qualify against the containing module; aliased
    imports resolve through :class:`~repro.lint.base.ImportMap`.
    """
    head, _, rest = dotted.partition(".")
    if head in imports.names:
        origin = imports.names[head]
        return f"{origin}.{rest}" if rest else origin
    if head in imports.modules:
        real = imports.modules[head]
        return f"{real}.{rest}" if rest else real
    # Unqualified local reference: ``helper()`` / ``LocalClass()``.
    return f"{module}.{dotted}"


def build_graph(
    files: Mapping[str, ParsedModule],
    exclude_prefixes: Sequence[str] = (),
) -> CallGraph:
    """Build the graph, dropping modules under any excluded dotted prefix.

    Exclusion implements the *quarantine* concept: calls into a quarantined
    package (``repro.obs`` — the designed wall-clock surface) terminate at
    the graph boundary instead of dragging its internals into the pure
    region.
    """

    def quarantined(module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in exclude_prefixes
        )

    return CallGraph.build(
        parsed
        for parsed in files.values()
        if parsed.module and not quarantined(parsed.module)
    )

"""``repro lint`` — command-line entry point for the determinism linter.

Exit codes: 0 clean (new findings absent), 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.lint.engine import iter_rule_docs, lint_paths, refreshed_baseline
from repro.lint.purity import (
    DEFAULT_PURITY_CONFIG_NAME,
    PurityConfig,
    default_config_path,
)
from repro.lint.rules_ckpt import (
    DEFAULT_EXCLUSIONS_NAME,
    FingerprintExclusions,
    default_exclusions_path,
)
from repro.lint.rules_durability import (
    DEFAULT_DURABLE_ROOTS_NAME,
    DurabilityConfig,
    default_durable_roots_path,
)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=["human", "json"],
        default="human",
        help="report format",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of grandfathered findings (default: "
            f"{DEFAULT_BASELINE_NAME} next to the current directory, "
            "when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to absorb all current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help=(
            "also run the interprocedural purity phase (PURE001-PURE003) "
            "over the declared purity roots"
        ),
    )
    parser.add_argument(
        "--purity-roots",
        default=None,
        metavar="FILE",
        help=(
            "purity-roots config for --whole-program (default: "
            f"{DEFAULT_PURITY_CONFIG_NAME} in the current directory)"
        ),
    )
    parser.add_argument(
        "--fingerprint-exclusions",
        default=None,
        metavar="FILE",
        help=(
            "fingerprint-coverage config enabling CKPT001 under "
            f"--whole-program (default: {DEFAULT_EXCLUSIONS_NAME} in the "
            "current directory, when present)"
        ),
    )
    parser.add_argument(
        "--durability",
        action="store_true",
        help=(
            "also run the crash-consistency rules (DUR000-DUR004) over "
            "the declared durable roots; requires --whole-program"
        ),
    )
    parser.add_argument(
        "--durable-roots",
        default=None,
        metavar="FILE",
        help=(
            "durable-roots config for --durability (default: "
            f"{DEFAULT_DURABLE_ROOTS_NAME} in the current directory)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the per-file findings cache for this run",
    )


def _resolve_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Baseline.load(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.is_file():
        return Baseline.load(default)
    return None


def run_lint(args: argparse.Namespace) -> int:
    if args.rules:
        for line in iter_rule_docs():
            print(line)
        return 0
    select: Optional[List[str]] = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    purity_config: Optional[PurityConfig] = None
    exclusions: Optional[FingerprintExclusions] = None
    durability: Optional[DurabilityConfig] = None
    if args.durability and not args.whole_program:
        print(
            "error: --durability requires --whole-program (the DUR rules "
            "run over the whole-program call graph)",
            file=sys.stderr,
        )
        return 2
    if args.whole_program:
        config_path = (
            Path(args.purity_roots)
            if args.purity_roots is not None
            else default_config_path()
        )
        try:
            purity_config = PurityConfig.load(config_path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.fingerprint_exclusions is not None:
            try:
                exclusions = FingerprintExclusions.load(
                    args.fingerprint_exclusions
                )
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        elif default_exclusions_path().is_file():
            try:
                exclusions = FingerprintExclusions.load(
                    default_exclusions_path()
                )
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        if args.durability:
            durable_path = (
                Path(args.durable_roots)
                if args.durable_roots is not None
                else default_durable_roots_path()
            )
            try:
                durability = DurabilityConfig.load(durable_path)
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    try:
        if args.write_baseline:
            target = args.baseline or DEFAULT_BASELINE_NAME
            baseline = refreshed_baseline(args.paths, select=select)
            baseline.write(target)
            print(
                f"wrote {len(baseline.counts)} fingerprint(s) to {target}",
                file=sys.stderr,
            )
            return 0
        baseline = _resolve_baseline(args)
        report = lint_paths(
            args.paths,
            baseline=baseline,
            select=select,
            whole_program=args.whole_program,
            purity_config=purity_config,
            use_cache=False if args.no_cache else None,
            fingerprint_exclusions=exclusions,
            durability=durability,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format_human())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & correctness linter",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_lint(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

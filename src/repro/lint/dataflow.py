"""Interprocedural, flow-sensitive seed-lineage dataflow analysis.

Every reproducibility guarantee in this repo rests on *disciplined seed
derivation*: independent random streams must be separated by folding a
domain constant into a tuple seed (``(trial_seed, 0x7E1E, session_id,
stream_no)``), never by arithmetic on a shared integer (``seed * p + i``),
which lets streams collide under permutation of their free indices and
correlates experiment arms.  This module tracks how seed values propagate
from their roots (``seed``-named parameters, ``*.seed`` attribute reads,
``seed``-named unpacking targets) through arithmetic, tuple folds, and
call arguments into RNG-consuming sinks, and records a stream of
:class:`SeedEvent` objects that the ``SEED001``–``SEED004`` rules
(:mod:`repro.lint.rules_seed`) interpret.

The analysis layers on :class:`repro.lint.callgraph.CallGraph`:

* **roots** — parameters named ``seed``/``*_seed``, attribute reads of the
  form ``X.seed``/``X.*_seed``, and ``seed``-named assignment targets whose
  right-hand side is untracked (unpacking a payload tuple re-roots the
  name: packing a value into a payload and unpacking it in a worker is the
  hand-off idiom, not a derivation);
* **derivations** — any arithmetic ``BinOp`` over a tracked value marks the
  lineage *derived* and records the free (non-constant, non-tracked)
  variable names involved;
* **domain separation** — folding the value into a tuple containing a
  constant element (an int literal or a module-level name bound to one),
  or routing it through ``numpy.random.SeedSequence``/``.spawn``, marks
  the lineage separated and clears any pending fold violation;
* **sinks** — RNG constructors (``numpy.random.default_rng`` / ``Generator``
  / ``RandomState``, ``random.Random``); calls to *resolved* module-level
  functions are followed interprocedurally (bounded inlining with the
  caller's lineages bound to the callee's parameters); calls to resolved
  classes that construct an RNG anywhere in their methods, and
  ``seed=``-keyword calls to unresolved callees, count as *handoffs* —
  independent consumers of the seed value;
* **boundaries** — a generator-tainted value (the result of an RNG
  constructor, or an ``rng``-named parameter) passed to
  ``repro.experiment.parallel.fork_map`` or a pool-style method crosses a
  process boundary, which a ``Generator`` must never do (the worker cannot
  reproduce the stream from a pickled generator's identity; seeds must
  cross as tuples).

Nested function definitions are not traversed (they are not in the call
graph); the checkpoint rules cover the driver-closure patterns separately.
Everything here is pure stdlib ``ast`` and deterministic: functions are
visited in sorted qualname order and events are deduplicated by value, so
the downstream findings are byte-stable across runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.base import (
    ImportMap,
    collect_imports,
    dotted_name,
    resolve_call_target,
)
from repro.lint.callgraph import (
    CallGraph,
    FunctionInfo,
    _resolve_dotted,
)

#: (path, line, col) — the unit of attribution for events and findings.
Site = Tuple[str, int, int]

#: RNG constructors: materializing one of these from a seed is a *sink*.
RNG_SINKS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: Explicit domain-separation constructors (the numpy-blessed spawn API).
_SPAWN_TARGETS = frozenset({"numpy.random.SeedSequence"})

#: Process-boundary callables a Generator must never cross (SEED004).
BOUNDARY_FUNCTIONS = frozenset({"repro.experiment.parallel.fork_map"})

#: Pool-style method names treated as process boundaries on any receiver.
#: ``map`` itself is too generic (builtin, Executor, Series, ...), so the
#: fork-pool entrypoint above carries that case for this tree.
POOL_METHODS = frozenset(
    {
        "imap",
        "imap_unordered",
        "map_async",
        "starmap",
        "starmap_async",
        "apply_async",
        "submit",
    }
)

#: Bare-name builtins through which a seed value passes unchanged.
_PASSTHROUGH_BUILTINS = frozenset({"int", "abs", "min", "max", "tuple"})

#: Callables that *store* a seed rather than consume it: the stored field
#: re-roots on its next attribute read, so the handoff is not a sink.
_BENIGN_SEED_TARGETS = frozenset({"dataclasses.replace"})

#: Bound on interprocedural inlining (per call chain).
_MAX_INLINE_DEPTH = 6


def _seedish(name: str) -> bool:
    return name == "seed" or name.endswith("_seed")


def _rngish(name: str) -> bool:
    return name == "rng" or name.endswith("_rng")


@dataclass(frozen=True)
class Lineage:
    """One tracked value: where it came from and what happened to it."""

    root: str
    """Human-readable origin (``repro.x.f.seed`` or ``config.seed``)."""

    derived: bool = False
    """At least one arithmetic step was applied."""

    free_vars: Tuple[str, ...] = ()
    """Non-constant, non-tracked names folded in arithmetically."""

    domain_separated: bool = False
    """Folded into a tuple with a constant element (or SeedSequence)."""

    is_generator: bool = False
    """The value is (or contains) a constructed ``Generator``."""

    derive_site: Optional[Site] = None
    """First arithmetic derivation site (attribution for SEED001/002)."""

    fold_site: Optional[Site] = None
    """Tuple fold *without* a constant element (attribution for SEED003)."""


@dataclass(frozen=True)
class SeedEvent:
    """One consumption of a tracked value."""

    kind: str
    """``"sink"`` (RNG constructor), ``"handoff"`` (independent consumer),
    or ``"boundary"`` (generator crossing a process boundary)."""

    lineage: Lineage
    site: Site
    """Where the consumption happens."""

    fn: str
    """Qualname of the function containing the consumption site."""

    target: str
    """Description of the consumer (dotted callable name)."""


@dataclass
class SeedFlow:
    """The analysis result the SEED rules interpret."""

    events: List[SeedEvent] = field(default_factory=list)

    def consumptions(self) -> List[SeedEvent]:
        """Sink + handoff events (everything that materializes a stream)."""
        return [e for e in self.events if e.kind in ("sink", "handoff")]


def analyze_seed_flow(graph: CallGraph) -> SeedFlow:
    """Run the lineage analysis over every function in *graph*."""
    return _Analyzer(graph).run()


# ---------------------------------------------------------------------------
# The analyzer.
# ---------------------------------------------------------------------------


class _Analyzer:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._events: List[SeedEvent] = []
        self._event_keys: Set[SeedEvent] = set()
        self._module_consts: Dict[str, Set[str]] = {}
        self._rng_consuming: Dict[str, bool] = {}
        self._imports: Dict[str, ImportMap] = {}
        self._muted = 0

    def run(self) -> SeedFlow:
        for qualname in sorted(self.graph.functions):
            fn = self.graph.functions[qualname]
            env = self._root_env(fn)
            _FunctionScan(self, fn, env, chain=(qualname,)).run()
        return SeedFlow(events=list(self._events))

    # -- shared context ------------------------------------------------------
    def emit(self, event: SeedEvent) -> None:
        if self._muted:
            return
        if event not in self._event_keys:
            self._event_keys.add(event)
            self._events.append(event)

    def imports_for(self, module: str) -> ImportMap:
        cached = self._imports.get(module)
        if cached is None:
            parsed = self.graph.modules.get(module)
            if parsed is None:
                cached = ImportMap()
            else:
                cached = collect_imports(parsed.tree)
            self._imports[module] = cached
        return cached

    def module_consts(self, module: str) -> Set[str]:
        """Module-level names bound to an int literal (stream constants)."""
        cached = self._module_consts.get(module)
        if cached is None:
            cached = set()
            parsed = self.graph.modules.get(module)
            if parsed is not None:
                for node in parsed.tree.body:
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    if (
                        isinstance(target, ast.Name)
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, int)
                        and not isinstance(value.value, bool)
                    ):
                        cached.add(target.id)
            self._module_consts[module] = cached
        return cached

    def rng_consuming(self, class_qual: str) -> bool:
        """Does any method of the class construct an RNG?  A class that
        does is an independent seed consumer; a plain config dataclass
        merely stores the value."""
        cached = self._rng_consuming.get(class_qual)
        if cached is not None:
            return cached
        result = False
        info = self.graph.classes.get(class_qual)
        if info is not None:
            imports = self.imports_for(info.module)
            for method_qual in info.methods.values():
                method = self.graph.functions.get(method_qual)
                if method is None:
                    continue
                for node in ast.walk(method.node):
                    if isinstance(node, ast.Call):
                        target = resolve_call_target(node, imports)
                        if target in RNG_SINKS:
                            result = True
                            break
                if result:
                    break
            if not result:
                for base in self.graph.ancestors(class_qual):
                    if self.rng_consuming(base):
                        result = True
                        break
        self._rng_consuming[class_qual] = result
        return result

    def _root_env(self, fn: FunctionInfo) -> Dict[str, Set[Lineage]]:
        env: Dict[str, Set[Lineage]] = {}
        args = fn.node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if _seedish(arg.arg):
                env[arg.arg] = {Lineage(root=f"{fn.qualname}.{arg.arg}")}
            elif _rngish(arg.arg):
                env[arg.arg] = {
                    Lineage(root=f"{fn.qualname}.{arg.arg}", is_generator=True)
                }
        return env


class _FunctionScan:
    """Flow-sensitive walk over one function body."""

    def __init__(
        self,
        analyzer: _Analyzer,
        fn: FunctionInfo,
        env: Dict[str, Set[Lineage]],
        chain: Tuple[str, ...],
    ) -> None:
        self.analyzer = analyzer
        self.graph = analyzer.graph
        self.fn = fn
        self.env = env
        self.chain = chain
        self.imports = analyzer.imports_for(fn.module)
        self.consts = analyzer.module_consts(fn.module)
        self.returns: Set[Lineage] = set()

    def run(self) -> Set[Lineage]:
        self._stmts(self.fn.node.body)
        return self.returns

    def _site(self, node: ast.AST) -> Site:
        return (
            self.fn.path,
            int(getattr(node, "lineno", self.fn.node.lineno)),
            int(getattr(node, "col_offset", 0)),
        )

    # -- statements ----------------------------------------------------------
    def _stmts(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            values = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, values)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                values = self._eval(stmt.value)
                self._assign(stmt.target, stmt.value, values)
        elif isinstance(stmt, ast.AugAssign):
            synthetic = ast.BinOp(
                left=stmt.target, op=stmt.op, right=stmt.value
            )
            ast.copy_location(synthetic, stmt)
            values = self._eval_binop(synthetic)
            if isinstance(stmt.target, ast.Name):
                if values:
                    self.env[stmt.target.id] = values
                else:
                    self.env.pop(stmt.target.id, None)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self._eval(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter)
            self._bind_fresh(stmt.target)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_fresh(item.optional_vars)
            self._stmts(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
        # Nested defs/classes, imports, pass, etc.: not traversed.

    def _assign(
        self,
        target: ast.expr,
        value_node: ast.expr,
        values: Set[Lineage],
    ) -> None:
        if isinstance(target, ast.Name):
            if values:
                self.env[target.id] = set(values)
            elif _seedish(target.id):
                # Untracked RHS into a seed-named binding: a fresh root
                # (the payload-unpack / config-read idiom).
                self.env[target.id] = {
                    Lineage(root=f"{self.fn.qualname}.{target.id}")
                }
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value_node, ast.Tuple) and len(
                value_node.elts
            ) == len(target.elts):
                for sub_target, sub_value in zip(
                    target.elts, value_node.elts
                ):
                    self._assign(
                        sub_target, sub_value, self._eval_cached(sub_value)
                    )
            else:
                # Unpacking an opaque value (a payload tuple, a call
                # result): every element re-roots by name.
                for sub_target in target.elts:
                    self._bind_fresh(sub_target)
        # Attribute/Subscript stores: the value parks in an object; the
        # next attribute read re-roots it.

    def _bind_fresh(self, target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                if _seedish(node.id):
                    self.env[node.id] = {
                        Lineage(root=f"{self.fn.qualname}.{node.id}")
                    }
                elif _rngish(node.id):
                    self.env[node.id] = {
                        Lineage(
                            root=f"{self.fn.qualname}.{node.id}",
                            is_generator=True,
                        )
                    }
                else:
                    self.env.pop(node.id, None)

    # -- expressions ---------------------------------------------------------
    def _eval_cached(self, node: ast.expr) -> Set[Lineage]:
        """Re-evaluate without re-emitting events (values only)."""
        self.analyzer._muted += 1
        try:
            return self._eval(node)
        finally:
            self.analyzer._muted -= 1

    def _eval(self, node: ast.expr) -> Set[Lineage]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            if _seedish(node.attr):
                root = dotted_name(node) or f"<expr>.{node.attr}"
                return {Lineage(root=root)}
            if _rngish(node.attr):
                root = dotted_name(node) or f"<expr>.{node.attr}"
                return {Lineage(root=root, is_generator=True)}
            if not isinstance(node.value, ast.Name):
                self._eval(node.value)
            return set()
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out: Set[Lineage] = set()
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.Compare):
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return set()
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List)):
            return self._eval_fold(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            self._eval(node.value)
            self._eval(node.slice)
            return set()
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for comp in node.generators:
                self._eval(comp.iter)
                self._bind_fresh(comp.target)
                for cond in comp.ifs:
                    self._eval(cond)
            self._eval(node.elt)
            return set()
        if isinstance(node, ast.DictComp):
            for comp in node.generators:
                self._eval(comp.iter)
                self._bind_fresh(comp.target)
                for cond in comp.ifs:
                    self._eval(cond)
            self._eval(node.key)
            self._eval(node.value)
            return set()
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._eval(key)
            for value in node.values:
                self._eval(value)
            return set()
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self._eval(value.value)
            return set()
        if isinstance(node, ast.Lambda):
            return set()
        return set()

    def _eval_binop(self, node: ast.BinOp) -> Set[Lineage]:
        combined = self._eval(node.left) | self._eval(node.right)
        tracked = {lin for lin in combined if not lin.is_generator}
        if not tracked:
            return set()
        free = self._free_vars(node)
        out: Set[Lineage] = set()
        for lin in tracked:
            site = lin.derive_site or self._site(node)
            out.add(
                replace(
                    lin,
                    derived=True,
                    free_vars=tuple(sorted(set(lin.free_vars) | free)),
                    domain_separated=False,
                    derive_site=site,
                )
            )
        return out

    def _free_vars(self, node: ast.BinOp) -> Set[str]:
        """Standalone ``Name`` loads in an arithmetic subtree that are
        neither tracked values nor module-level constants."""
        skip: Set[int] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute):
                skip.add(id(sub.value))
            elif isinstance(sub, ast.Call):
                skip.add(id(sub.func))
        free: Set[str] = set()
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and id(sub) not in skip
                and not self.env.get(sub.id)
                and sub.id not in self.consts
            ):
                free.add(sub.id)
        return free

    def _eval_fold(self, node: "ast.Tuple | ast.List") -> Set[Lineage]:
        carried: Set[Lineage] = set()
        for elt in node.elts:
            carried |= self._eval(elt)
        if not carried:
            return set()
        has_const = any(self._const_element(elt) for elt in node.elts)
        out: Set[Lineage] = set()
        for lin in carried:
            if lin.is_generator:
                out.add(lin)
            elif has_const:
                out.add(replace(lin, domain_separated=True, fold_site=None))
            else:
                out.add(
                    replace(lin, fold_site=lin.fold_site or self._site(node))
                )
        return out

    def _const_element(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(
            node.value, int
        ) and not isinstance(node.value, bool):
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.operand, ast.Constant
        ):
            return isinstance(node.operand.value, int)
        if isinstance(node, ast.Name) and node.id in self.consts:
            return True
        return False

    # -- calls ---------------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> Set[Lineage]:
        dotted = dotted_name(node.func)
        target = resolve_call_target(node, self.imports)
        graph_target = (
            _resolve_dotted(dotted, self.imports, self.fn.module)
            if dotted is not None
            else None
        )

        # A chained receiver (``PathSampler(...).next_path()``) hides a
        # call inside ``func.value`` — evaluate it so its events fire.
        if isinstance(node.func, ast.Attribute) and not isinstance(
            node.func.value, ast.Name
        ):
            self._eval(node.func.value)

        positional: List[Set[Lineage]] = [
            self._eval(arg) for arg in node.args
        ]
        keyword: List[Tuple[Optional[str], Set[Lineage]]] = [
            (kw.arg, self._eval(kw.value)) for kw in node.keywords
        ]
        all_lineages: Set[Lineage] = set()
        for group in positional:
            all_lineages |= group
        for _, group in keyword:
            all_lineages |= group
        seeds = {lin for lin in all_lineages if not lin.is_generator}
        generators = {lin for lin in all_lineages if lin.is_generator}

        # 1. RNG constructors: the sinks.
        if target in RNG_SINKS:
            assert target is not None
            for lin in seeds:
                self.analyzer.emit(
                    SeedEvent(
                        kind="sink",
                        lineage=lin,
                        site=self._site(node),
                        fn=self.fn.qualname,
                        target=target,
                    )
                )
            site = self._site(node)
            return {
                Lineage(
                    root=f"{target}@{site[1]}",
                    is_generator=True,
                )
            }

        # 2. Explicit domain separation (SeedSequence / .spawn).
        if target in _SPAWN_TARGETS:
            return {
                replace(lin, domain_separated=True, fold_site=None)
                for lin in seeds
            }
        if isinstance(node.func, ast.Attribute) and node.func.attr == "spawn":
            received = self._eval(node.func.value)
            return {
                replace(lin, domain_separated=True, fold_site=None)
                for lin in received
                if not lin.is_generator
            }

        # 3. Process boundaries (SEED004).
        is_boundary = (
            target in BOUNDARY_FUNCTIONS
            or graph_target in BOUNDARY_FUNCTIONS
            or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in POOL_METHODS
            )
        )
        if is_boundary:
            for lin in generators:
                self.analyzer.emit(
                    SeedEvent(
                        kind="boundary",
                        lineage=lin,
                        site=self._site(node),
                        fn=self.fn.qualname,
                        target=target
                        or (
                            node.func.attr
                            if isinstance(node.func, ast.Attribute)
                            else "<boundary>"
                        ),
                    )
                )
            return set()

        # 4. Resolved module-level function: follow interprocedurally.
        if graph_target is not None and graph_target in self.graph.functions:
            callee = self.graph.functions[graph_target]
            if callee.class_name is None:
                return self._inline(callee, node, positional, keyword)
            return set()

        # 5. Resolved class: an RNG-consuming class is an independent
        # consumer of any seed argument; a config dataclass just stores it.
        if graph_target is not None and graph_target in self.graph.classes:
            if self.analyzer.rng_consuming(graph_target) and seeds:
                for lin in seeds:
                    self.analyzer.emit(
                        SeedEvent(
                            kind="handoff",
                            lineage=lin,
                            site=self._site(node),
                            fn=self.fn.qualname,
                            target=graph_target,
                        )
                    )
            return set()

        # 6. Known-benign / passthrough callables.
        if target in _BENIGN_SEED_TARGETS:
            return set()
        if target in _PASSTHROUGH_BUILTINS:
            return set(all_lineages)

        # 7. Unresolved callee taking an explicit seed keyword: an
        # independent consumer we cannot see into.
        described = target or dotted or "<call>"
        emitted: Set[Lineage] = set()
        for name, group in keyword:
            if name is not None and _seedish(name):
                for lin in group:
                    if lin.is_generator or lin in emitted:
                        continue
                    emitted.add(lin)
                    self.analyzer.emit(
                        SeedEvent(
                            kind="handoff",
                            lineage=lin,
                            site=self._site(node),
                            fn=self.fn.qualname,
                            target=f"{described}({name}=...)",
                        )
                    )
        return set()

    def _inline(
        self,
        callee: FunctionInfo,
        node: ast.Call,
        positional: List[Set[Lineage]],
        keyword: List[Tuple[Optional[str], Set[Lineage]]],
    ) -> Set[Lineage]:
        if (
            callee.qualname in self.chain
            or len(self.chain) >= _MAX_INLINE_DEPTH
        ):
            return set()
        args = callee.node.args
        params = [arg.arg for arg in list(args.posonlyargs) + list(args.args)]
        kwonly = [arg.arg for arg in args.kwonlyargs]
        env: Dict[str, Set[Lineage]] = {}
        for index, group in enumerate(positional):
            if index < len(params) and group:
                env[params[index]] = set(group)
        for name, group in keyword:
            if name is not None and group and (
                name in params or name in kwonly
            ):
                env[name] = set(group)
        # Parameters that received nothing tracked fall back to roots.
        for name in params + kwonly:
            if name not in env:
                if _seedish(name):
                    env[name] = {Lineage(root=f"{callee.qualname}.{name}")}
                elif _rngish(name):
                    env[name] = {
                        Lineage(
                            root=f"{callee.qualname}.{name}",
                            is_generator=True,
                        )
                    }
        scan = _FunctionScan(
            self.analyzer,
            callee,
            env,
            chain=self.chain + (callee.qualname,),
        )
        return scan.run()

"""Write-effect extraction for the durability rules (DUR001-DUR004).

A *write effect* is one durability-relevant filesystem operation a
function performs, classified from the AST: open-for-write / append /
update, ``pathlib`` write methods, ``os.replace``/``os.rename``,
``os.fsync`` (split into file syncs — the ``os.fsync(f.fileno())``
idiom — and everything else, which in this tree means directory fds),
``truncate``, the read-side counterparts, and calls into the blessed
atomic-write helpers of :mod:`repro.atomio`.

The durability rules in :mod:`repro.lint.rules_durability` interpret
these effects for every function reachable from the declared durable
roots; this module stays policy-free so the extraction is reusable and
separately testable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet, List, Optional

from repro.lint.base import ImportMap, dotted_name, resolve_call_target
from repro.lint.callgraph import FunctionInfo

#: Effect kinds.
OPEN_WRITE = "open-write"  # open(..., "w"/"a"/"x"): truncate/create/append
OPEN_UPDATE = "open-update"  # open(..., "r+"/"rb+"/...): in-place update
OPEN_READ = "open-read"
PATH_WRITE = "path-write"  # Path.write_text / Path.write_bytes
PATH_READ = "path-read"  # Path.read_text / Path.read_bytes
RENAME = "rename"  # os.replace / os.rename / os.renames / shutil.move
FSYNC_FILE = "fsync-file"  # os.fsync(handle.fileno())
FSYNC_OTHER = "fsync-other"  # os.fsync(fd) — a directory or raw fd
TRUNCATE = "truncate"  # handle.truncate(...)
HELPER = "helper"  # call into a blessed atomic-write helper

_OPEN_TARGETS = frozenset({"open", "builtins.open", "io.open"})
_RENAME_TARGETS = frozenset(
    {"os.replace", "os.rename", "os.renames", "shutil.move"}
)
_FSYNC_TARGETS = frozenset({"os.fsync", "os.fdatasync"})
_PATH_WRITE_METHODS = frozenset({"write_text", "write_bytes"})
_PATH_READ_METHODS = frozenset({"read_text", "read_bytes"})


@dataclass(frozen=True)
class WriteEffect:
    """One classified filesystem operation inside a function body."""

    kind: str
    line: int
    col: int
    detail: str
    """Mode string (opens), resolved target (renames/fsyncs/helpers) or
    method name (pathlib/truncate)."""

    target: str
    """Source text of the path/receiver expression (best effort; ``""``
    when unknown).  Used by DUR004 to pair a read with a raw rewrite of
    the same expression."""


@dataclass(frozen=True)
class CallSite:
    """One call expression, with enough naming to match commit-order
    pair declarations (DUR003)."""

    name: str
    """Last component of the call target (``save`` for ``manager.save``)."""

    dotted: Optional[str]
    """Textual dotted chain (``self._write_manifest``), when renderable."""

    resolved: Optional[str]
    """Import-resolved qualname; ``self.<method>`` calls resolve against
    the owning class."""

    line: int
    col: int


def _source_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node).strip()
    except Exception:  # pragma: no cover - unparse is total on py>=3.9
        return ""


def _open_mode(node: ast.Call) -> str:
    """The literal mode argument of an ``open`` call (default ``"r"``)."""
    mode_node: Optional[ast.expr] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if isinstance(mode_node, ast.Constant) and isinstance(
        mode_node.value, str
    ):
        return mode_node.value
    return "r"


def _first_arg_text(node: ast.Call) -> str:
    if node.args:
        return _source_text(node.args[0])
    for keyword in node.keywords:
        if keyword.arg == "file":
            return _source_text(keyword.value)
    return ""


def _is_fileno_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "fileno"
    )


def function_effects(
    fn: FunctionInfo,
    imports: ImportMap,
    atomic_helpers: FrozenSet[str],
) -> List[WriteEffect]:
    """Every write effect in *fn*'s body (nested defs included), in
    source order."""
    effects: List[WriteEffect] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        line = int(node.lineno)
        col = int(node.col_offset)
        resolved = resolve_call_target(node, imports)
        if resolved is not None and resolved in atomic_helpers:
            effects.append(
                WriteEffect(
                    HELPER, line, col, resolved, _first_arg_text(node)
                )
            )
            continue
        if resolved in _RENAME_TARGETS:
            destination = (
                _source_text(node.args[1]) if len(node.args) >= 2 else ""
            )
            effects.append(
                WriteEffect(RENAME, line, col, str(resolved), destination)
            )
            continue
        if resolved in _FSYNC_TARGETS:
            file_sync = bool(node.args) and _is_fileno_call(node.args[0])
            effects.append(
                WriteEffect(
                    FSYNC_FILE if file_sync else FSYNC_OTHER,
                    line,
                    col,
                    str(resolved),
                    _first_arg_text(node),
                )
            )
            continue
        if resolved in _OPEN_TARGETS:
            mode = _open_mode(node)
            if any(c in mode for c in "wax"):
                kind = OPEN_WRITE
            elif "+" in mode:
                kind = OPEN_UPDATE
            else:
                kind = OPEN_READ
            effects.append(
                WriteEffect(kind, line, col, mode, _first_arg_text(node))
            )
            continue
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            receiver = _source_text(node.func.value)
            if attr in _PATH_WRITE_METHODS:
                effects.append(
                    WriteEffect(PATH_WRITE, line, col, attr, receiver)
                )
            elif attr in _PATH_READ_METHODS:
                effects.append(
                    WriteEffect(PATH_READ, line, col, attr, receiver)
                )
            elif attr == "truncate":
                effects.append(
                    WriteEffect(TRUNCATE, line, col, attr, receiver)
                )
    effects.sort(key=lambda e: (e.line, e.col))
    return effects


def function_calls(fn: FunctionInfo, imports: ImportMap) -> List[CallSite]:
    """Every call in *fn*'s body, named for commit-order matching."""
    sites: List[CallSite] = []
    for node in ast.walk(fn.node):
        if not isinstance(node, ast.Call):
            continue
        dotted = dotted_name(node.func)
        resolved = resolve_call_target(node, imports)
        if (
            dotted is not None
            and dotted.startswith("self.")
            and dotted.count(".") == 1
            and fn.class_name is not None
        ):
            resolved = (
                f"{fn.module}.{fn.class_name}.{dotted.split('.', 1)[1]}"
            )
        if dotted is not None:
            name = dotted.rsplit(".", 1)[-1]
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        else:
            continue
        sites.append(
            CallSite(
                name=name,
                dotted=dotted,
                resolved=resolved,
                line=int(node.lineno),
                col=int(node.col_offset),
            )
        )
    sites.sort(key=lambda s: (s.line, s.col))
    return sites

"""Lint engine: file discovery, per-file rule execution, reporting.

The engine is pure stdlib (``ast`` + ``re``) and deterministic: files are
visited in sorted order and findings are sorted by ``(path, line, col,
rule)``, so two runs over the same tree produce byte-identical reports.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.lint.base import FileContext, Rule, derive_module, make_rules
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.suppressions import apply_suppressions, parse_suppressions


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    """New findings — these fail the run."""

    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def format_human(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.format_human())
        for error in self.parse_errors:
            lines.append(error)
        summary = (
            f"{self.files_checked} file(s) checked: "
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined"
        )
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "parse_errors": list(self.parse_errors),
            "ok": self.ok,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def discover_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            found.extend(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            found.append(path)
    unique = sorted(set(found), key=lambda p: p.as_posix())
    return unique


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a source string; returns raw findings (suppressions applied,
    suppressed ones included with ``suppressed=True``)."""
    lines = source.splitlines()
    tree = ast.parse(source, filename=path)
    ctx = FileContext(
        path=path,
        tree=tree,
        lines=lines,
        module=derive_module(path, lines),
    )
    active_rules: Sequence[Rule] = (
        rules if rules is not None else make_rules()
    )
    raw: List[Finding] = []
    for rule in active_rules:
        raw.extend(rule.check(ctx))
    effective, malformed = parse_suppressions(lines, path)
    processed = apply_suppressions(raw, effective)
    processed.extend(malformed)
    processed.sort(key=Finding.sort_key)
    return processed


def lint_paths(
    paths: Sequence[Union[str, Path]],
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint files/directories, returning a :class:`LintReport`."""
    report = LintReport()
    rules = make_rules(select)
    all_findings: List[Finding] = []
    for path in discover_files(paths):
        report.files_checked += 1
        try:
            source = path.read_text(encoding="utf-8")
            findings = lint_source(source, path.as_posix(), rules=rules)
        except SyntaxError as exc:
            report.parse_errors.append(
                f"{path.as_posix()}:{exc.lineno or 0}:0: PARSE {exc.msg}"
            )
            continue
        all_findings.extend(findings)
    if baseline is not None:
        all_findings = baseline.apply(all_findings)
    for finding in sorted(all_findings, key=Finding.sort_key):
        if finding.suppressed:
            report.suppressed.append(finding)
        elif finding.baselined:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    return report


def refreshed_baseline(
    paths: Sequence[Union[str, Path]],
    select: Optional[Sequence[str]] = None,
) -> Baseline:
    """Baseline capturing every *current* unsuppressed finding."""
    report = lint_paths(paths, baseline=None, select=select)
    return Baseline.from_findings(report.findings)


def iter_rule_docs() -> Iterable[str]:
    """Human-readable one-liners for ``repro lint --rules``."""
    for rule in make_rules():
        yield f"{rule.id}: {rule.summary}"

"""Lint engine: file discovery, per-file rule execution, reporting.

The engine is pure stdlib (``ast`` + ``re``) and deterministic: files are
visited in sorted order and findings are sorted by ``(path, line, col,
rule)``, so two runs over the same tree produce byte-identical reports.

Two phases:

* **per-file** — every registered rule (DET/SIM/OBS/API) runs over each
  file in isolation.  Results are cached by content hash
  (:mod:`repro.lint.cache`) because they depend only on the rule set and
  the file bytes.
* **whole-program** (``whole_program=True`` / ``repro lint
  --whole-program``) — the interprocedural purity pass: a call graph over
  the whole tree, the transitive closure of the declared purity roots, and
  the PURE001–PURE003 rules over that region (:mod:`repro.lint.purity`,
  :mod:`repro.lint.rules_purity`).  Never cached; suppressed by the same
  inline ``# repro: allow-RULE(reason)`` comments as the per-file phase.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.lint.base import FileContext, Rule, derive_module, make_rules
from repro.lint.baseline import Baseline
from repro.lint.cache import FindingsCache, cache_enabled
from repro.lint.callgraph import ParsedModule
from repro.lint.findings import Finding
from repro.lint.purity import PurityConfig, analyze_program
from repro.lint.rules_ckpt import FingerprintExclusions
from repro.lint.rules_durability import DurabilityConfig
from repro.lint.suppressions import apply_suppressions, parse_suppressions


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    """New findings — these fail the run."""

    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    whole_program: bool = False

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def format_human(self) -> str:
        lines: List[str] = []
        for finding in self.findings:
            lines.append(finding.format_human())
        for error in self.parse_errors:
            lines.append(error)
        summary = (
            f"{self.files_checked} file(s) checked: "
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined"
        )
        if self.whole_program:
            summary += " [whole-program]"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "schema_version": 1,
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "parse_errors": list(self.parse_errors),
            "whole_program": self.whole_program,
            "ok": self.ok,
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def discover_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            found.extend(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            found.append(path)
    unique = sorted(set(found), key=lambda p: p.as_posix())
    return unique


def parse_module(source: str, path: str) -> ParsedModule:
    """Parse one file into the shape both phases consume."""
    lines = source.splitlines()
    return ParsedModule(
        path=path,
        module=derive_module(path, lines),
        tree=ast.parse(source, filename=path),
        lines=lines,
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint a source string; returns raw findings (suppressions applied,
    suppressed ones included with ``suppressed=True``)."""
    parsed = parse_module(source, path)
    return _run_file_rules(parsed, rules if rules is not None else make_rules())


def _run_file_rules(
    parsed: ParsedModule, rules: Sequence[Rule]
) -> List[Finding]:
    ctx = FileContext(
        path=parsed.path,
        tree=parsed.tree,
        lines=parsed.lines,
        module=parsed.module,
    )
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check(ctx))
    effective, malformed = parse_suppressions(parsed.lines, parsed.path)
    processed = apply_suppressions(raw, effective)
    processed.extend(malformed)
    processed.sort(key=Finding.sort_key)
    return processed


def _apply_program_suppressions(
    findings: Sequence[Finding], sources: Dict[str, str]
) -> List[Finding]:
    """Run whole-program findings through each file's inline suppressions.

    Malformed-suppression findings are *not* re-emitted here — the
    per-file phase already reports them once.
    """
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    out: List[Finding] = []
    for path in sorted(by_path):
        source = sources.get(path)
        if source is None:
            out.extend(by_path[path])
            continue
        effective, _ = parse_suppressions(source.splitlines(), path)
        out.extend(apply_suppressions(by_path[path], effective))
    out.sort(key=Finding.sort_key)
    return out


def lint_whole_program(
    files: Iterable[ParsedModule],
    config: PurityConfig,
    sources: Optional[Dict[str, str]] = None,
    exclusions: Optional[FingerprintExclusions] = None,
    durability: Optional[DurabilityConfig] = None,
) -> List[Finding]:
    """Run only the whole-program phase over pre-parsed modules.

    Used directly by the purity/seed fixture tests; production runs go
    through :func:`lint_paths` with ``whole_program=True``.
    """
    parsed_map = {parsed.path: parsed for parsed in files}
    findings = analyze_program(
        parsed_map, config, exclusions=exclusions, durability=durability
    )
    if sources is None:
        sources = {
            path: "\n".join(parsed.lines)
            for path, parsed in parsed_map.items()
        }
    return _apply_program_suppressions(findings, sources)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
    whole_program: bool = False,
    purity_config: Optional[PurityConfig] = None,
    use_cache: Optional[bool] = None,
    fingerprint_exclusions: Optional[FingerprintExclusions] = None,
    durability: Optional[DurabilityConfig] = None,
) -> LintReport:
    """Lint files/directories, returning a :class:`LintReport`.

    Parameters
    ----------
    whole_program:
        Also run the interprocedural phase — purity (PURE001–PURE003),
        seed lineage (SEED001–SEED004), and checkpoint coverage
        (CKPT001–CKPT002) — over the full file set, using *purity_config*
        (required then).  *fingerprint_exclusions* enables CKPT001;
        *durability* enables the crash-consistency rules
        (DUR000–DUR004).
    use_cache:
        Force the per-file findings cache on/off; default follows
        :func:`repro.lint.cache.cache_enabled` (on, except in CI or under
        ``REPRO_LINT_CACHE=0``).
    """
    if whole_program and purity_config is None:
        raise ValueError("whole_program=True requires a purity_config")
    report = LintReport(whole_program=whole_program)
    rules = make_rules(select)
    cache: Optional[FindingsCache] = None
    if use_cache if use_cache is not None else cache_enabled():
        cache = FindingsCache(select=select)

    all_findings: List[Finding] = []
    parsed_files: Dict[str, ParsedModule] = {}
    sources: Dict[str, str] = {}
    for path in discover_files(paths):
        report.files_checked += 1
        path_key = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            report.parse_errors.append(f"{path_key}:0:0: PARSE {exc}")
            continue
        cached = cache.get(path_key, source) if cache is not None else None
        needs_parse = whole_program or cached is None
        parsed: Optional[ParsedModule] = None
        if needs_parse:
            try:
                parsed = parse_module(source, path_key)
            except SyntaxError as exc:
                report.parse_errors.append(
                    f"{path_key}:{exc.lineno or 0}:0: PARSE {exc.msg}"
                )
                continue
        if cached is not None:
            findings = cached
        else:
            assert parsed is not None
            findings = _run_file_rules(parsed, rules)
            if cache is not None:
                cache.put(path_key, source, findings)
        if parsed is not None:
            parsed_files[path_key] = parsed
            sources[path_key] = source
        all_findings.extend(findings)

    if whole_program:
        assert purity_config is not None
        program_findings = analyze_program(
            parsed_files,
            purity_config,
            exclusions=fingerprint_exclusions,
            durability=durability,
        )
        all_findings.extend(
            _apply_program_suppressions(program_findings, sources)
        )

    if baseline is not None:
        all_findings = baseline.apply(all_findings)
    for finding in sorted(all_findings, key=Finding.sort_key):
        if finding.suppressed:
            report.suppressed.append(finding)
        elif finding.baselined:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses
    return report


def refreshed_baseline(
    paths: Sequence[Union[str, Path]],
    select: Optional[Sequence[str]] = None,
) -> Baseline:
    """Baseline capturing every *current* unsuppressed finding."""
    report = lint_paths(paths, baseline=None, select=select)
    return Baseline.from_findings(report.findings)


def iter_rule_docs() -> Iterable[str]:
    """Human-readable one-liners for ``repro lint --rules``."""
    for rule in make_rules():
        yield f"{rule.id}: {rule.summary}"
    from repro.lint.rules_ckpt import make_ckpt_rules
    from repro.lint.rules_purity import make_purity_rules
    from repro.lint.rules_seed import make_seed_rules

    for purity_rule in make_purity_rules():
        yield f"{purity_rule.id} (whole-program): {purity_rule.summary}"
    for seed_rule in make_seed_rules():
        yield f"{seed_rule.id} (whole-program): {seed_rule.summary}"
    for ckpt_rule in make_ckpt_rules():
        yield f"{ckpt_rule.id} (whole-program): {ckpt_rule.summary}"
    from repro.lint.rules_durability import make_durability_rules

    for dur_rule in make_durability_rules():
        yield f"{dur_rule.id} (whole-program): {dur_rule.summary}"

"""Finding objects produced by lint rules.

A :class:`Finding` pins a rule violation to a ``file:line:col`` location and
carries everything the reporting layer needs: the human message, the source
line (for fingerprinting into the baseline), and whether the finding was
silenced by an inline suppression or a baseline entry.

Fingerprints deliberately exclude the line *number*: they hash the rule id,
the file's path relative to the lint root, and the stripped source text of
the offending line.  Editing unrelated parts of a file therefore does not
churn the baseline.  Duplicate fingerprints within one file are
disambiguated by an occurrence index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""
    suppressed: bool = field(default=False, compare=False)
    suppression_reason: str = field(default="", compare=False)
    baselined: bool = field(default=False, compare=False)

    @property
    def content_hash(self) -> str:
        """Hash of the offending line's stripped text (line-number free)."""
        text = self.source_line.strip()
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]

    def fingerprint(self) -> str:
        """Baseline key: stable across pure line-number shifts."""
        return f"{self.rule}:{self.path}:{self.content_hash}"

    def content_fingerprint(self) -> str:
        """Path-free baseline key: survives file renames/moves.

        :meth:`repro.lint.baseline.Baseline.apply` matches exact
        fingerprints first and falls back to this rename-tolerant form, so
        moving a file does not resurrect its grandfathered findings.
        """
        return f"{self.rule}:{self.content_hash}"

    def format_human(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source_line": self.source_line,
            "fingerprint": self.fingerprint(),
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
            "baselined": self.baselined,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Inverse of :meth:`to_dict` (the ``fingerprint`` key is derived
        state and is ignored on input)."""
        return cls(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            source_line=str(data.get("source_line", "")),
            suppressed=bool(data.get("suppressed", False)),
            suppression_reason=str(data.get("suppression_reason", "")),
            baselined=bool(data.get("baselined", False)),
        )

    def sort_key(self) -> "tuple[str, int, int, str]":
        return (self.path, self.line, self.col, self.rule)

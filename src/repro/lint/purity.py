"""Purity-roots configuration and the whole-program analysis driver.

The *purity roots* are the functions the experiment's statistics assume to
be pure: :func:`repro.experiment.harness.run_session` (the unit of work the
paper's confidence intervals are built on), the fork-pool worker bodies
that execute it (`repro.experiment.parallel._run_chunk`,
`repro.fleet.runner._run_fleet_chunk`), and every
``AbrAlgorithm.choose`` implementation.  They are declared in a checked-in
``purity-roots.json`` so the contract is reviewable, versioned, and shared
between the static pass (this module) and the runtime sanitizer
(:mod:`repro.sanitizer`).

Config schema (version 1)::

    {
      "version": 1,
      "roots": ["repro.experiment.harness.run_session", ...],
      "method_roots": ["repro.abr.base.AbrAlgorithm.choose"],
      "quarantine": ["repro.obs"],
      "snapshot_modules": ["repro.experiment.harness", ...]
    }

``roots`` are exact function qualnames.  ``method_roots`` name a base-class
method; every override in the class hierarchy becomes a root.
``quarantine`` lists packages whose internals the graph never enters (the
designed nondeterminism surface).  ``snapshot_modules`` is consumed by the
runtime sanitizer: the module namespaces digested before/after every
guarded session.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, List, Mapping, Optional, Tuple, Union

from repro.lint.callgraph import CallGraph, ParsedModule, build_graph
from repro.lint.findings import Finding

if TYPE_CHECKING:  # imported lazily at runtime to avoid cycles
    from repro.lint.dataflow import SeedFlow
    from repro.lint.rules_ckpt import FingerprintExclusions
    from repro.lint.rules_durability import DurabilityConfig

PURITY_CONFIG_VERSION = 1
DEFAULT_PURITY_CONFIG_NAME = "purity-roots.json"

#: Rule id for configuration-level problems (a declared root that does not
#: exist must fail the run loudly, not silently shrink the pure region).
CONFIG_RULE_ID = "PURE000"


@dataclass(frozen=True)
class PurityConfig:
    """Checked-in declaration of the pure entrypoints."""

    roots: Tuple[str, ...] = ()
    method_roots: Tuple[str, ...] = ()
    quarantine: Tuple[str, ...] = ()
    snapshot_modules: Tuple[str, ...] = ()
    source_path: str = "<inline>"

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PurityConfig":
        data = json.loads(Path(path).read_text())
        if data.get("version") != PURITY_CONFIG_VERSION:
            raise ValueError(
                f"unsupported purity-roots version {data.get('version')!r} "
                f"in {path}"
            )
        return cls(
            roots=tuple(str(r) for r in data.get("roots", [])),
            method_roots=tuple(str(r) for r in data.get("method_roots", [])),
            quarantine=tuple(str(q) for q in data.get("quarantine", [])),
            snapshot_modules=tuple(
                str(m) for m in data.get("snapshot_modules", [])
            ),
            source_path=Path(path).as_posix(),
        )


def default_config_path(start: Union[str, Path] = ".") -> Path:
    """``purity-roots.json`` in *start* (the conventional repo root)."""
    return Path(start) / DEFAULT_PURITY_CONFIG_NAME


@dataclass
class ProgramContext:
    """Everything a whole-program rule may inspect."""

    graph: CallGraph
    config: PurityConfig
    pure: "frozenset[str]"
    """Qualnames of every function in the pure region."""

    seed_flow: Optional["SeedFlow"] = None
    """Seed-lineage events (:mod:`repro.lint.dataflow`), computed once per
    run and interpreted by the SEED rules."""

    exclusions: Optional["FingerprintExclusions"] = None
    """Checked-in fingerprint-coverage declaration; ``None`` disables
    CKPT001 (CKPT002 needs no configuration)."""

    durability: Optional["DurabilityConfig"] = None
    """Checked-in durable-roots declaration; ``None`` disables the DUR
    rule family."""

    durable: "frozenset[str]" = frozenset()
    """Qualnames of every function in the durable region (reachable from
    the declared durable roots)."""

    def pure_functions(self) -> List[str]:
        return sorted(self.pure)


def expand_roots(
    graph: CallGraph, config: PurityConfig
) -> Tuple[List[str], List[Finding]]:
    """Resolve the configured roots against the graph.

    Exact roots must exist.  Method roots expand to the base method (when
    implemented) plus every subclass override; the base *class* must exist.
    Missing declarations surface as ``PURE000`` findings against the config
    file, which fail the run — a typo must never silently shrink the
    checked region.
    """
    roots: List[str] = []
    problems: List[Finding] = []

    def config_error(message: str) -> Finding:
        return Finding(
            rule=CONFIG_RULE_ID,
            path=config.source_path,
            line=1,
            col=0,
            message=message,
            source_line="",
        )

    for root in config.roots:
        if root in graph.functions:
            roots.append(root)
        else:
            problems.append(
                config_error(
                    f"declared purity root {root!r} was not found in the "
                    "linted tree — fix purity-roots.json or restore the "
                    "function"
                )
            )
    for method_root in config.method_roots:
        class_qual, _, method = method_root.rpartition(".")
        if not class_qual or class_qual not in graph.classes:
            problems.append(
                config_error(
                    f"declared method root {method_root!r} names an unknown "
                    "class"
                )
            )
            continue
        expanded: List[str] = []
        base_impl = graph.classes[class_qual].methods.get(method)
        if base_impl is not None:
            expanded.append(base_impl)
        for sub in graph.subclasses(class_qual):
            override = graph.classes[sub].methods.get(method)
            if override is not None:
                expanded.append(override)
        if not expanded:
            problems.append(
                config_error(
                    f"method root {method_root!r} has no implementation "
                    "anywhere in the hierarchy"
                )
            )
        roots.extend(expanded)
    return sorted(set(roots)), problems


def analyze_program(
    files: Mapping[str, ParsedModule],
    config: PurityConfig,
    exclusions: Optional["FingerprintExclusions"] = None,
    durability: Optional["DurabilityConfig"] = None,
) -> List[Finding]:
    """Run every whole-program rule family; returns raw findings.

    Four rule families share the one call graph built here: the purity
    rules (over the pure region), the seed-lineage rules (over every
    function — seed discipline is a tree-wide contract), the
    checkpoint-coverage rules (CKPT001 only when *exclusions* is given),
    and the durability rules (only when *durability* is given).
    Suppression handling is the caller's job (the engine applies the same
    per-file ``# repro: allow-RULE(reason)`` machinery the per-file phase
    uses, so one waiver syntax covers both phases).
    """
    # Imported lazily to avoid a cycle (the rule modules import this
    # module's ProgramContext).
    from repro.lint.dataflow import analyze_seed_flow
    from repro.lint.rules_ckpt import make_ckpt_rules
    from repro.lint.rules_purity import make_purity_rules
    from repro.lint.rules_seed import make_seed_rules

    graph = build_graph(files, exclude_prefixes=config.quarantine)
    roots, findings = expand_roots(graph, config)
    pure = graph.reachable(roots)
    program = ProgramContext(
        graph=graph,
        config=config,
        pure=frozenset(pure),
        seed_flow=analyze_seed_flow(graph),
        exclusions=exclusions,
    )
    for rule in make_purity_rules():
        findings.extend(rule.check_program(program))
    for seed_rule in make_seed_rules():
        findings.extend(seed_rule.check_program(program))
    for ckpt_rule in make_ckpt_rules():
        findings.extend(ckpt_rule.check_program(program))
    if durability is not None:
        # The durability family runs LAST: graph.reachable() re-roots
        # the shared witness-path parent map, so the durable region is
        # computed only after every purity-rooted rule has produced its
        # witnesses.
        from repro.lint.rules_durability import (
            expand_durable_roots,
            make_durability_rules,
        )

        durable_roots, durable_problems = expand_durable_roots(
            graph, durability
        )
        findings.extend(durable_problems)
        program.durability = durability
        program.durable = frozenset(graph.reachable(durable_roots))
        for dur_rule in make_durability_rules():
            findings.extend(dur_rule.check_program(program))
    findings.sort(key=Finding.sort_key)
    return findings

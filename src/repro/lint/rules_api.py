"""API001 — mutable default arguments.

A ``def f(x, history=[])`` default is evaluated once at function definition
time and shared across calls; in a system whose sessions must be
independent and replayable this is a state-leak hazard, not a style nit.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.lint.base import FileContext, Rule, register
from repro.lint.findings import Finding

_MUTABLE_CONSTRUCTORS = {
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
}

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


@register
class MutableDefaultRule(Rule):
    """API001 — default argument values must be immutable."""

    id = "API001"
    summary = (
        "mutable default argument: the object is shared across every call — "
        "default to None and construct inside the function"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if _is_mutable_literal(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in {name}(...) is evaluated once "
                        "and shared across calls — use None and build the "
                        "container in the body",
                    )

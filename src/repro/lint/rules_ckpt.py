"""Whole-program checkpoint-coverage rules: CKPT000–CKPT002.

A fleet checkpoint is only crash-safe if it is *complete*: every config
knob that changes the science must fold into the SHA-256 config
fingerprint (or be excluded **explicitly**, with a reason, in the
checked-in ``fingerprint-exclusions.json``), and every piece of mutable
driver state written during the run must be reconstructible from the
checkpoint.  Both contracts were previously enforced only by review;
these rules check them from the AST.

=========  ===============================================================
CKPT000    configuration error in ``fingerprint-exclusions.json`` — an
           unknown class or fingerprint function, an excluded field the
           class does not declare, or a stale exclusion for a field the
           fingerprint actually covers.  Config errors fail the run: a
           typo must never silently shrink the checked surface.  Entries
           whose *module* is not part of the linted file set are skipped,
           so partial lints stay quiet; a full-tree run is strict
CKPT001    a declared config dataclass field neither referenced by any of
           its fingerprint functions (attribute read or string key) nor
           named in the exclusion allowlist — adding a knob without
           deciding its checkpoint identity is exactly the bug class
CKPT002    mutable driver state (a ``nonlocal`` cell written by a nested
           closure) in a function that constructs a
           :class:`repro.fleet.checkpoint.FleetCheckpoint`, where the
           cell never flows into the checkpoint — resume would silently
           reset it
=========  ===============================================================

Exclusion config schema (version 1)::

    {
      "version": 1,
      "classes": {
        "repro.fleet.runner.FleetConfig": {
          "fingerprint": ["repro.fleet.runner.FleetConfig.fingerprint"],
          "exclude": {"chunk_sessions": "any cadence reproduces the dump"}
        }
      }
    }

``fingerprint`` lists the function(s) whose body defines coverage: a
field counts as covered when any listed function reads it as an
attribute (``self.field`` / ``trial.field``) or names it in a string
constant (a dict key in a ``to_dict``-style serializer).  CKPT002 needs
no configuration — it keys off ``FleetCheckpoint`` construction sites.
Waivers use the ordinary inline suppression comments
(``allow-CKPT002(reason)`` and friends).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Set, Tuple, Union

from repro.lint.base import resolve_call_target
from repro.lint.callgraph import CallGraph, FunctionInfo, FunctionNode
from repro.lint.findings import Finding
from repro.lint.purity import ProgramContext
from repro.lint.rules_purity import PurityRule, _iter_scopes, _scope_nodes
from repro.lint.rules_seed import SeedRule

EXCLUSIONS_VERSION = 1
DEFAULT_EXCLUSIONS_NAME = "fingerprint-exclusions.json"

#: Rule id for exclusion-config problems (parallel to ``PURE000``).
CKPT_CONFIG_RULE_ID = "CKPT000"

#: The checkpoint container CKPT002 keys off.
_CHECKPOINT_CLASS = "repro.fleet.checkpoint.FleetCheckpoint"


@dataclass(frozen=True)
class ClassCoverage:
    """Declared fingerprint coverage for one config dataclass."""

    fingerprint: Tuple[str, ...]
    """Qualnames of the functions whose bodies define coverage."""

    exclude: Mapping[str, str]
    """field name -> reason it deliberately stays out of the fingerprint."""


@dataclass(frozen=True)
class FingerprintExclusions:
    """Checked-in declaration of config-fingerprint coverage."""

    classes: Mapping[str, ClassCoverage] = field(default_factory=dict)
    source_path: str = "<inline>"

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FingerprintExclusions":
        data = json.loads(Path(path).read_text())
        if data.get("version") != EXCLUSIONS_VERSION:
            raise ValueError(
                f"unsupported fingerprint-exclusions version "
                f"{data.get('version')!r} in {path}"
            )
        classes: Dict[str, ClassCoverage] = {}
        for qualname, spec in dict(data.get("classes", {})).items():
            classes[str(qualname)] = ClassCoverage(
                fingerprint=tuple(
                    str(f) for f in spec.get("fingerprint", [])
                ),
                exclude={
                    str(k): str(v)
                    for k, v in dict(spec.get("exclude", {})).items()
                },
            )
        return cls(classes=classes, source_path=Path(path).as_posix())


def default_exclusions_path(start: Union[str, Path] = ".") -> Path:
    """``fingerprint-exclusions.json`` in *start* (the repo root)."""
    return Path(start) / DEFAULT_EXCLUSIONS_NAME


def _in_lint_scope(graph: "CallGraph", qualname: str) -> bool:
    """Is the module owning *qualname* part of the linted file set?

    Exclusion entries for modules outside the file set are not errors —
    a partial lint (one file, one package) must not demand the whole
    tree.  Only a qualname whose module WAS linted but lacks the named
    class/function is a genuine config error.
    """
    parts = qualname.split(".")
    return any(
        ".".join(parts[:i]) in graph.modules for i in range(1, len(parts))
    )


def _dataclass_fields(node: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
    """Declared dataclass fields, skipping ``ClassVar`` annotations."""
    out: List[Tuple[str, ast.AnnAssign]] = []
    for item in node.body:
        if not isinstance(item, ast.AnnAssign) or not isinstance(
            item.target, ast.Name
        ):
            continue
        annotation = ast.dump(item.annotation)
        if "ClassVar" in annotation:
            continue
        out.append((item.target.id, item))
    return out


def _coverage_names(fns: Iterator[FunctionInfo]) -> Set[str]:
    """Names a fingerprint function *covers*: every attribute read plus
    every string constant (dict keys in ``to_dict``-style serializers)."""
    covered: Set[str] = set()
    for fn in fns:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute):
                covered.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                covered.add(node.value)
    return covered


class CkptRule(SeedRule):
    """Base for checkpoint rules: skipped without an exclusions config
    (CKPT002 runs regardless — it needs no configuration)."""

    def config_finding(
        self, exclusions: FingerprintExclusions, message: str
    ) -> Finding:
        return Finding(
            rule=CKPT_CONFIG_RULE_ID,
            path=exclusions.source_path,
            line=1,
            col=0,
            message=message,
            source_line="",
        )


class FingerprintCoverageRule(CkptRule):
    """CKPT001 — every config field fingerprinted or excluded with reason.

    Also emits the CKPT000 config errors, so one pass over the exclusion
    file validates it completely.
    """

    id = "CKPT001"
    summary = (
        "config dataclass field is neither folded into the checkpoint "
        "fingerprint nor named in fingerprint-exclusions.json — decide "
        "its identity before it ships"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        exclusions = program.exclusions
        if exclusions is None:
            return
        graph = program.graph
        for class_qual in sorted(exclusions.classes):
            coverage = exclusions.classes[class_qual]
            info = graph.classes.get(class_qual)
            if info is None:
                if _in_lint_scope(graph, class_qual):
                    yield self.config_finding(
                        exclusions,
                        f"declared config class {class_qual!r} was not "
                        "found in the linted tree — fix "
                        "fingerprint-exclusions.json or restore the class",
                    )
                continue
            fingerprint_fns: List[FunctionInfo] = []
            skip_class = False
            for fn_qual in coverage.fingerprint:
                fn = graph.functions.get(fn_qual)
                if fn is None:
                    skip_class = True
                    if _in_lint_scope(graph, fn_qual):
                        yield self.config_finding(
                            exclusions,
                            f"fingerprint function {fn_qual!r} declared "
                            f"for {class_qual!r} was not found in the "
                            "linted tree",
                        )
                else:
                    fingerprint_fns.append(fn)
            if skip_class:
                continue
            covered = _coverage_names(iter(fingerprint_fns))
            fields = _dataclass_fields(info.node)
            field_names = {name for name, _ in fields}
            for excluded in sorted(coverage.exclude):
                if excluded not in field_names:
                    yield self.config_finding(
                        exclusions,
                        f"excluded field {excluded!r} does not exist on "
                        f"{class_qual!r} — remove the stale exclusion",
                    )
                elif excluded in covered:
                    yield self.config_finding(
                        exclusions,
                        f"excluded field {excluded!r} of {class_qual!r} is "
                        "actually covered by the fingerprint — remove the "
                        "stale exclusion",
                    )
            for name, node in fields:
                if name in covered or name in coverage.exclude:
                    continue
                yield self.site_finding(
                    program,
                    (info.path, int(node.lineno), int(node.col_offset)),
                    f"field {name!r} of {class_qual} is neither folded "
                    "into the checkpoint fingerprint nor excluded in "
                    f"{exclusions.source_path} — an undeclared knob lets "
                    "a resumed run silently mix configurations",
                )


class CheckpointStateRule(CkptRule):
    """CKPT002 — nonlocal driver state missing from the checkpoint."""

    id = "CKPT002"
    summary = (
        "mutable driver state (nonlocal cell) written during the run but "
        "absent from the FleetCheckpoint — resume would silently reset it"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        graph = program.graph
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if fn.class_name is not None:
                continue
            checkpoint_calls = self._checkpoint_calls(program, fn)
            if not checkpoint_calls:
                continue
            covered = self._covered_names(program, fn, checkpoint_calls)
            for scope in _iter_scopes(fn.node):
                if scope is fn.node:
                    continue
                for node in _scope_nodes(scope):
                    if not isinstance(node, ast.Nonlocal):
                        continue
                    for name in node.names:
                        if name in covered:
                            continue
                        yield self.site_finding(
                            program,
                            (
                                fn.path,
                                int(node.lineno),
                                int(node.col_offset),
                            ),
                            f"driver state {name!r} is written via "
                            f"nonlocal in {fn.qualname} but never flows "
                            "into the FleetCheckpoint constructed there — "
                            "a resumed run would silently reset it; "
                            "thread it into the checkpoint (extra={...}) "
                            "or waive it with a reasoned allow comment",
                        )

    @staticmethod
    def _checkpoint_calls(
        program: ProgramContext, fn: FunctionInfo
    ) -> List[ast.Call]:
        parsed = program.graph.modules.get(fn.module)
        if parsed is None:
            return []
        from repro.lint.base import collect_imports

        imports = collect_imports(parsed.tree)
        calls: List[ast.Call] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                if resolve_call_target(node, imports) == _CHECKPOINT_CLASS:
                    calls.append(node)
        return calls

    def _covered_names(
        self,
        program: ProgramContext,
        fn: FunctionInfo,
        calls: List[ast.Call],
    ) -> Set[str]:
        helpers: Dict[str, FunctionNode] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not fn.node:
                    helpers[node.name] = node
        for qualname, other in program.graph.functions.items():
            if other.module == fn.module and other.class_name is None:
                helpers.setdefault(other.name, other.node)

        covered: Set[str] = set()
        arg_nodes: List[ast.expr] = []
        for call in calls:
            arg_nodes.extend(call.args)
            arg_nodes.extend(kw.value for kw in call.keywords)
        for arg in arg_nodes:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Name):
                    covered.add(sub.id)
                elif isinstance(sub, ast.Call) and isinstance(
                    sub.func, ast.Name
                ):
                    helper = helpers.get(sub.func.id)
                    if helper is not None:
                        for inner in ast.walk(helper):
                            if isinstance(inner, ast.Name):
                                covered.add(inner.id)
        return covered


def make_ckpt_rules() -> List[CkptRule]:
    """Fresh instances of every checkpoint rule, in id order."""
    return [FingerprintCoverageRule(), CheckpointStateRule()]

"""Determinism rules: DET001 (unseeded RNG), DET002 (wall clock), DET003
(unordered iteration).

These enforce the experiment's determinism contract: every random draw flows
from ``TrialConfig.seed``, no wall-clock value leaks into simulated time,
and nothing that feeds RNG draws, session ordering, or serialized output
iterates in hash order.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.lint.base import (
    FileContext,
    Rule,
    collect_imports,
    register,
    resolve_call_target,
)
from repro.lint.findings import Finding

# The numpy.random attributes that are legitimate *constructors* of seeded
# state (flagged only when called without arguments — an unseeded draw from
# OS entropy).  Everything else on numpy.random is the legacy module-global
# RNG and is flagged unconditionally.
_NP_SEEDABLE_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

# stdlib ``random`` module functions whose module-level form uses the hidden
# global Mersenne Twister.  ``random.Random(seed)`` is fine.
_STDLIB_RANDOM_GLOBALS = {
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "seed", "getrandbits", "normalvariate", "gauss",
    "expovariate", "betavariate", "gammavariate", "lognormvariate",
    "paretovariate", "weibullvariate", "triangular", "vonmisesvariate",
    "binomialvariate", "setstate", "getstate",
}


@register
class UnseededRngRule(Rule):
    """DET001 — every RNG must be constructed from an explicit seed."""

    id = "DET001"
    summary = (
        "unseeded or module-global RNG: seed default_rng()/Random(), and "
        "never draw from numpy's or random's hidden global state"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        imports = collect_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target is None:
                continue
            message = self._diagnose(node, target)
            if message is not None:
                yield self.finding(ctx, node, message)

    def _diagnose(self, node: ast.Call, target: str) -> Optional[str]:
        if target.startswith("numpy.random."):
            attr = target[len("numpy.random."):]
            if attr in _NP_SEEDABLE_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    return (
                        f"numpy.random.{attr}() called without a seed — "
                        "derive the generator from TrialConfig.seed (or an "
                        "explicit seed parameter)"
                    )
                return None
            if "." not in attr and attr[:1].islower():
                return (
                    f"numpy.random.{attr}() draws from numpy's module-global "
                    "RNG — use a seeded numpy.random.Generator instead"
                )
            return None
        if target == "random.Random":
            if not node.args and not node.keywords:
                return (
                    "random.Random() without a seed is nondeterministic — "
                    "pass an explicit seed"
                )
            return None
        if target.startswith("random."):
            attr = target[len("random."):]
            if "." not in attr and attr in _STDLIB_RANDOM_GLOBALS:
                return (
                    f"random.{attr}() uses the stdlib's hidden global RNG — "
                    "use a seeded random.Random or numpy Generator"
                )
        return None


# Wall-clock call targets (after import resolution).
_WALL_CLOCK_TARGETS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

# Modules whose wall-clock use is quarantined by design: profiling output is
# tagged nondeterministic and excluded from bit-identical dumps.
_DET002_QUARANTINE: Tuple[str, ...] = ("repro.obs",)


@register
class WallClockRule(Rule):
    """DET002 — wall-clock reads are confined to quarantined profiling."""

    id = "DET002"
    summary = (
        "wall-clock read in a simulation path: simulated time must come "
        "from the event loop, not time.time()/perf_counter()/datetime.now()"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_package(*_DET002_QUARANTINE):
            return
        imports = collect_imports(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target in _WALL_CLOCK_TARGETS:
                yield self.finding(
                    ctx,
                    node,
                    f"{target}() reads the wall clock — simulation state "
                    "must only depend on simulated time (quarantine "
                    "profiling uses in repro.obs or suppress with a reason)",
                )


def _unwrap_order_preserving(node: ast.expr) -> ast.expr:
    """Strip wrappers that preserve (lack of) ordering: list(), tuple(),
    enumerate(), reversed(), iter()."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"list", "tuple", "enumerate", "reversed", "iter"}
        and node.args
    ):
        node = node.args[0]
    return node


def _is_unordered_iterable(node: ast.expr) -> Optional[str]:
    """Describe *node* if it iterates in hash order, else ``None``."""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return "a set"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {
            "set",
            "frozenset",
        }:
            return f"{node.func.id}(...)"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
        ):
            return ".keys()"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: a | b, a & b, a - b, a ^ b — only flag when either
        # operand is itself recognizably a set.
        if _is_unordered_iterable(node.left) or _is_unordered_iterable(
            node.right
        ):
            return "a set expression"
    return None


@register
class UnorderedIterationRule(Rule):
    """DET003 — iteration over sets / dict views must be sorted."""

    id = "DET003"
    summary = (
        "iterating a set or .keys() view without sorted(...): hash order "
        "leaks into RNG draws, session ordering, or serialized output"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        sorted_args: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"sorted", "min", "max", "sum", "len",
                                     "any", "all", "frozenset", "set"}
            ):
                # Arguments of order-insensitive consumers are fine.
                for arg in ast.walk(node):
                    if arg is not node:
                        sorted_args.add(id(arg))
        for node in ast.walk(ctx.tree):
            iterables = []
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    iterables.append(gen.iter)
            for it in iterables:
                if id(it) in sorted_args:
                    continue
                unwrapped = _unwrap_order_preserving(it)
                desc = _is_unordered_iterable(unwrapped)
                if desc is not None:
                    yield self.finding(
                        ctx,
                        it,
                        f"iterating over {desc} in hash order — wrap the "
                        "iterable in sorted(...) so downstream RNG draws, "
                        "ordering, and serialized output are deterministic",
                    )

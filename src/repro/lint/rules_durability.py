"""Whole-program durability rules: DUR000–DUR004.

The crash-consistency counterpart of the purity analysis: where the
purity rules guard what the *pure region* may read, these guard how the
**durable region** — every function reachable from the declared durable
roots (checkpoint save, registry commit, archive flush/truncate, fleet
dump) — may touch the filesystem.  Each mutation is classified by the
write-effect pass (:mod:`repro.lint.effects`) and findings carry the
call chain from a durable root, so the report explains *why* a function
is held to the durable contract.

=========  ===============================================================
DUR000     configuration error in ``durable-roots.json`` — a declared
           root, atomic helper or commit-order member not found in the
           linted tree.  Config errors fail the run: a typo must never
           silently shrink the checked region.  Entries whose module is
           outside the linted file set are skipped (partial lints stay
           quiet)
DUR001     raw write (``open(..., "w"/"a"/"x")``, ``Path.write_text``/
           ``write_bytes``) in the durable region not routed through the
           blessed atomic helper — a crash mid-write leaves a torn file
DUR002     tmp+rename without an ``os.fsync`` of the written file before
           the rename, or without a directory fsync after it — the
           rename can publish an empty/torn file, or itself vanish on
           power loss
DUR003     multi-file commit-order violation: a pointer/manifest write
           precedes the data write it references (the ordered pairs —
           registry generation before manifest, archive flush before
           checkpoint save — are declared in ``durable-roots.json``)
DUR004     in-place read-modify-write of a durable file outside a commit
           section: an update-mode open, or reading and raw-rewriting
           the same path in one function — a crash between truncate and
           rewrite loses both versions
=========  ===============================================================

Config schema (version 1, checked in as ``durable-roots.json`` beside
``purity-roots.json``)::

    {
      "version": 1,
      "roots": ["repro.fleet.checkpoint.CheckpointManager.save", ...],
      "atomic_helpers": ["repro.atomio.atomic_write_bytes", ...],
      "exempt": ["repro.atomio", "repro.crashpoints"],
      "commit_order": [
        {"first": "<data write>", "then": "<pointer write>",
         "reason": "why the pointer must land second"}
      ]
    }

``exempt`` lists the module(s) implementing the blessed protocol itself:
their raw opens/renames/fsyncs ARE the helper, so the rules skip them.
DUR001/002/004 run over the durable region; DUR003 scans every linted
function (the callers that sequence two durable commits usually sit
*above* the roots, not below them).  Waivers use the ordinary inline
``# repro: allow-DURxxx(reason)`` comments.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.lint.callgraph import CallGraph, FunctionInfo
from repro.lint.effects import (
    FSYNC_FILE,
    FSYNC_OTHER,
    HELPER,
    OPEN_READ,
    OPEN_UPDATE,
    OPEN_WRITE,
    PATH_READ,
    PATH_WRITE,
    RENAME,
    CallSite,
    WriteEffect,
    function_calls,
    function_effects,
)
from repro.lint.findings import Finding
from repro.lint.purity import ProgramContext
from repro.lint.rules_ckpt import _in_lint_scope
from repro.lint.rules_purity import PurityRule

DURABLE_ROOTS_VERSION = 1
DEFAULT_DURABLE_ROOTS_NAME = "durable-roots.json"

#: Rule id for durable-roots config problems (parallel to ``PURE000``).
DUR_CONFIG_RULE_ID = "DUR000"


@dataclass(frozen=True)
class CommitOrderPair:
    """Declared write-order invariant: *first* (the data) must be issued
    before *then* (the pointer/manifest that references it) within any
    one function that calls both."""

    first: str
    then: str
    reason: str


@dataclass(frozen=True)
class DurabilityConfig:
    """Checked-in declaration of the durable roots and blessed helpers."""

    roots: Tuple[str, ...] = ()
    atomic_helpers: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()
    commit_order: Tuple[CommitOrderPair, ...] = ()
    source_path: str = "<inline>"

    @classmethod
    def load(cls, path: Union[str, Path]) -> "DurabilityConfig":
        data = json.loads(Path(path).read_text())
        if data.get("version") != DURABLE_ROOTS_VERSION:
            raise ValueError(
                f"unsupported durable-roots version "
                f"{data.get('version')!r} in {path}"
            )
        pairs: List[CommitOrderPair] = []
        for entry in list(data.get("commit_order", [])):
            pairs.append(
                CommitOrderPair(
                    first=str(entry["first"]),
                    then=str(entry["then"]),
                    reason=str(entry.get("reason", "")),
                )
            )
        return cls(
            roots=tuple(str(r) for r in data.get("roots", [])),
            atomic_helpers=tuple(
                str(h) for h in data.get("atomic_helpers", [])
            ),
            exempt=tuple(str(e) for e in data.get("exempt", [])),
            commit_order=tuple(pairs),
            source_path=Path(path).as_posix(),
        )


def default_durable_roots_path(start: Union[str, Path] = ".") -> Path:
    """``durable-roots.json`` in *start* (the conventional repo root)."""
    return Path(start) / DEFAULT_DURABLE_ROOTS_NAME


def expand_durable_roots(
    graph: CallGraph, config: DurabilityConfig
) -> Tuple[List[str], List[Finding]]:
    """Resolve declared roots against the graph; missing ones are DUR000.

    Also validates the atomic helpers and commit-order members, so one
    pass over ``durable-roots.json`` checks it completely.
    """
    roots: List[str] = []
    problems: List[Finding] = []

    def config_error(message: str) -> Finding:
        return Finding(
            rule=DUR_CONFIG_RULE_ID,
            path=config.source_path,
            line=1,
            col=0,
            message=message,
            source_line="",
        )

    for root in config.roots:
        if root in graph.functions:
            roots.append(root)
        elif _in_lint_scope(graph, root):
            problems.append(
                config_error(
                    f"declared durable root {root!r} was not found in the "
                    "linted tree — fix durable-roots.json or restore the "
                    "function"
                )
            )
    for helper in config.atomic_helpers:
        if helper not in graph.functions and _in_lint_scope(graph, helper):
            problems.append(
                config_error(
                    f"declared atomic helper {helper!r} was not found in "
                    "the linted tree"
                )
            )
    for pair in config.commit_order:
        for member in (pair.first, pair.then):
            if member not in graph.functions and _in_lint_scope(
                graph, member
            ):
                problems.append(
                    config_error(
                        f"commit-order member {member!r} was not found in "
                        "the linted tree"
                    )
                )
    return sorted(set(roots)), problems


class DurabilityRule(PurityRule):
    """Base for durability rules: runs only with a durability config."""

    def durable_finding(
        self,
        fn: FunctionInfo,
        effect_line: int,
        effect_col: int,
        message: str,
        program: ProgramContext,
    ) -> Finding:
        """A finding with the ``durable via root -> ... -> fn`` witness."""
        chain = program.graph.witness_path(fn.qualname)
        if len(chain) > 1:
            short = [part.rsplit(".", 2)[-1] for part in chain[:4]]
            if len(chain) > 4:
                short.append("…")
            via = " (durable via " + " -> ".join(short) + ")"
        else:
            via = ""
        parsed = program.graph.modules.get(fn.module)
        source_line = ""
        if parsed is not None and 1 <= effect_line <= len(parsed.lines):
            source_line = parsed.lines[effect_line - 1]
        return Finding(
            rule=self.id,
            path=fn.path,
            line=effect_line,
            col=effect_col,
            message=message + via,
            source_line=source_line,
        )

    @staticmethod
    def _exempt(config: DurabilityConfig, fn: FunctionInfo) -> bool:
        return any(
            fn.module == prefix or fn.module.startswith(prefix + ".")
            for prefix in config.exempt
        )

    @classmethod
    def _durable_functions(
        cls, program: ProgramContext
    ) -> Iterator[Tuple[FunctionInfo, List[WriteEffect]]]:
        """Durable-region functions (exempt modules and the helpers
        themselves skipped), with their write effects."""
        config = program.durability
        if config is None:
            return
        helpers = frozenset(config.atomic_helpers)
        for qualname in sorted(program.durable):
            fn = program.graph.functions.get(qualname)
            if fn is None:
                continue
            if qualname in helpers or cls._exempt(config, fn):
                continue
            imports = cls._imports_for(program, fn)
            yield fn, function_effects(fn, imports, helpers)


class RawDurableWriteRule(DurabilityRule):
    """DUR001 — raw writes on durable paths bypass the atomic helper."""

    id = "DUR001"
    summary = (
        "raw write in the durable region not routed through the blessed "
        "atomic-write helper — a crash mid-write leaves a torn file"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        for fn, effects in self._durable_functions(program):
            if any(e.kind == RENAME for e in effects):
                # The function implements a publish protocol inline
                # (write-tmp-then-rename); DUR002 judges that protocol,
                # so the tmp write is not a raw in-place write.
                continue
            for effect in effects:
                if effect.kind == OPEN_WRITE:
                    yield self.durable_finding(
                        fn,
                        effect.line,
                        effect.col,
                        f"raw open(..., {effect.detail!r}) of "
                        f"{effect.target or 'a durable path'} in the "
                        "durable region — route the write through "
                        "repro.atomio.atomic_write_bytes/atomic_write_text",
                        program,
                    )
                elif effect.kind == PATH_WRITE:
                    yield self.durable_finding(
                        fn,
                        effect.line,
                        effect.col,
                        f"raw {effect.target}.{effect.detail}(...) in the "
                        "durable region — route the write through "
                        "repro.atomio.atomic_write_bytes/atomic_write_text",
                        program,
                    )


class RenameFsyncRule(DurabilityRule):
    """DUR002 — tmp+rename published without the fsync bracket."""

    id = "DUR002"
    summary = (
        "rename-publish without fsync of the written file before the "
        "rename or of the directory after it — power loss can publish a "
        "torn file or undo the publish"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        for fn, effects in self._durable_functions(program):
            renames = [e for e in effects if e.kind == RENAME]
            if not renames:
                continue
            file_syncs = [e for e in effects if e.kind == FSYNC_FILE]
            dir_syncs = [e for e in effects if e.kind == FSYNC_OTHER]
            for rename in renames:
                if not any(s.line <= rename.line for s in file_syncs):
                    yield self.durable_finding(
                        fn,
                        rename.line,
                        rename.col,
                        f"{rename.detail} publishes "
                        f"{rename.target or 'a durable file'} without an "
                        "os.fsync of the written file first — a crash "
                        "just after the rename can publish an empty or "
                        "torn file",
                        program,
                    )
                elif not any(s.line >= rename.line for s in dir_syncs):
                    yield self.durable_finding(
                        fn,
                        rename.line,
                        rename.col,
                        f"{rename.detail} publishes "
                        f"{rename.target or 'a durable file'} without a "
                        "directory fsync after it — the rename itself "
                        "may not survive power loss",
                        program,
                    )


class CommitOrderRule(DurabilityRule):
    """DUR003 — pointer durably written before the data it references.

    Scans every linted function (not just the durable region: the
    function that sequences two durable commits is normally a *caller*
    of the roots).  A call site matches a declared pair member by
    resolved qualname or, failing resolution, by bare method name — an
    over-approximation; false pairings carry a reasoned
    ``allow-DUR003`` comment.
    """

    id = "DUR003"
    summary = (
        "commit-order violation: the pointer/manifest write precedes "
        "the data write it references"
    )

    @staticmethod
    def _matches(site: CallSite, member: str) -> bool:
        if site.resolved == member:
            return True
        return site.name == member.rsplit(".", 1)[-1]

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        config = program.durability
        if config is None or not config.commit_order:
            return
        graph = program.graph
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if self._exempt(config, fn):
                continue
            imports = self._imports_for(program, fn)
            sites = function_calls(fn, imports)
            for pair in config.commit_order:
                first_lines = [
                    s.line for s in sites if self._matches(s, pair.first)
                ]
                then_sites = [
                    s for s in sites if self._matches(s, pair.then)
                ]
                if not first_lines or not then_sites:
                    continue
                offender = min(
                    then_sites, key=lambda s: (s.line, s.col)
                )
                if offender.line < min(first_lines):
                    reason = f" ({pair.reason})" if pair.reason else ""
                    yield self.durable_finding(
                        fn,
                        offender.line,
                        offender.col,
                        f"{pair.then} is issued before {pair.first} in "
                        f"{fn.qualname} — the pointer would durably "
                        "reference data that a crash can still lose"
                        + reason,
                        program,
                    )


class ReadModifyWriteRule(DurabilityRule):
    """DUR004 — in-place read-modify-write of a durable file."""

    id = "DUR004"
    summary = (
        "in-place read-modify-write of a durable file outside a commit "
        "section — a crash mid-rewrite loses both versions"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        for fn, effects in self._durable_functions(program):
            for effect in effects:
                if effect.kind == OPEN_UPDATE:
                    yield self.durable_finding(
                        fn,
                        effect.line,
                        effect.col,
                        f"opens {effect.target or 'a durable file'} in "
                        f"update mode {effect.detail!r} — in-place "
                        "mutation of a durable file; rewrite it through "
                        "the atomic helper instead",
                        program,
                    )
            read_targets = {
                e.target
                for e in effects
                if e.kind in (OPEN_READ, PATH_READ) and e.target
            }
            for effect in effects:
                if (
                    effect.kind in (OPEN_WRITE, PATH_WRITE)
                    and effect.target in read_targets
                ):
                    yield self.durable_finding(
                        fn,
                        effect.line,
                        effect.col,
                        f"reads and raw-rewrites {effect.target} in "
                        "place — a crash between truncate and rewrite "
                        "loses both the old and the new version; "
                        "publish the new version through the atomic "
                        "helper",
                        program,
                    )


def make_durability_rules() -> List[DurabilityRule]:
    """Fresh instances of every durability rule, in id order."""
    return [
        RawDurableWriteRule(),
        RenameFsyncRule(),
        CommitOrderRule(),
        ReadModifyWriteRule(),
    ]

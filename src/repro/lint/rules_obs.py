"""OBS001 — metric/trace emission must sit behind the ``obs.ENABLED`` guard.

The observability layer's hot-path contract (PR 2) is: when disabled, an
instrumented call site costs one attribute load and one branch.  That only
holds if every ``obs.counter_inc`` / ``obs.observe`` / ``obs.gauge_set`` /
``obs.emit`` call is lexically inside a branch on ``obs.ENABLED`` — the
helpers themselves bail early, but the *argument construction* (f-strings,
``float(...)`` casts) would still run on every event.

Recognized guard shapes::

    if obs.ENABLED:
        obs.counter_inc(...)          # guarded

    if shortfall > 0 and obs.ENABLED:
        obs.observe(...)              # guarded (ENABLED anywhere in test)

    if not obs.ENABLED:
        return
    obs.emit(...)                     # guarded (early-exit form)

``obs.span`` and ``obs.timed`` are exempt: they are engineered to be
no-op-cheap unguarded.  The ``repro.obs`` package itself is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.lint.base import FileContext, Rule, register
from repro.lint.findings import Finding

_EMISSION_ATTRS = {"counter_inc", "gauge_set", "observe", "emit"}


def _mentions_enabled(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "ENABLED":
            return True
        if isinstance(sub, ast.Name) and sub.id == "ENABLED":
            return True
    return False


def _is_negated_enabled(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.Not)
        and _mentions_enabled(node.operand)
    )


def _exits(stmt: ast.stmt) -> bool:
    return isinstance(stmt, (ast.Return, ast.Raise, ast.Continue, ast.Break))


class _GuardVisitor(ast.NodeVisitor):
    """Collect ids of all nodes lexically inside an ENABLED-guarded region."""

    def __init__(self) -> None:
        self.guarded: Set[int] = set()

    def _mark(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            self.guarded.add(id(sub))

    def visit_If(self, node: ast.If) -> None:
        if _mentions_enabled(node.test) and not _is_negated_enabled(node.test):
            for stmt in node.body:
                self._mark(stmt)
        if _is_negated_enabled(node.test):
            for stmt in node.orelse:
                self._mark(stmt)
        self.generic_visit(node)

    def _visit_body(self, body: List[ast.stmt]) -> None:
        # Early-exit form: everything after `if not obs.ENABLED: return`.
        for index, stmt in enumerate(body):
            if (
                isinstance(stmt, ast.If)
                and _is_negated_enabled(stmt.test)
                and stmt.body
                and _exits(stmt.body[-1])
                and not stmt.orelse
            ):
                for later in body[index + 1:]:
                    self._mark(later)
                break

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_body(node.body)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_body(node.body)
        self.generic_visit(node)


@register
class UnguardedEmissionRule(Rule):
    """OBS001 — emission helpers outside an ``obs.ENABLED`` branch."""

    id = "OBS001"
    summary = (
        "obs.counter_inc/observe/gauge_set/emit outside `if obs.ENABLED:` — "
        "argument construction would run even with observability off"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.in_package("repro.obs"):
            return
        guards = _GuardVisitor()
        guards.visit(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _EMISSION_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id == "obs"
            ):
                continue
            if id(node) in guards.guarded:
                continue
            yield self.finding(
                ctx,
                node,
                f"obs.{func.attr}(...) is not behind `if obs.ENABLED:` — "
                "guard it so disabled runs pay one branch, not argument "
                "construction",
            )

"""Whole-program purity rules: PURE001, PURE002, PURE003.

These run in the engine's *whole-program phase* (``repro lint
--whole-program``), not per file: each inspects only functions inside the
**pure region** — the transitive closure of the declared purity roots over
the :mod:`repro.lint.callgraph` call graph.

=========  ===============================================================
PURE001    a pure-region function writes module-level state: rebinding a
           ``global``, mutating a module-level container (subscript /
           ``.append()``-style), writing a class-level attribute, or
           writing an enclosing-scope cell via ``nonlocal``
PURE002    a pure-region function calls a known-impure stdlib surface:
           wall clock (``time.time``/``perf_counter``/…), the stdlib or
           numpy module-global RNG, ``os.environ`` writes /
           ``os.putenv``, ``os.urandom``, ``uuid.uuid1/uuid4``,
           ``secrets.*``
PURE003    a pure-region function *accepts* an RNG parameter but also
           constructs one (the ``rng if rng is not None else
           default_rng(seed)`` fallback idiom is recognized and exempt)
=========  ===============================================================

Findings are attributed to the offending call/statement in the file where
it lives, and the message carries the shortest known call chain from a
purity root so the report explains *why* that function is in the region.
Waivers use the ordinary inline suppression syntax — the two legitimate
cases in the tree (the fork-pool workers' per-process scheme caches) carry
reasoned ``# repro: allow-PURE001(...)`` comments.

Unlike the per-file rules these are **not** in the :func:`repro.lint.base
.register` registry (they cannot run on a single file in isolation); the
engine invokes them through :func:`make_purity_rules`.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, List, Optional, Set

from repro.lint.base import ImportMap, collect_imports, resolve_call_target
from repro.lint.callgraph import (
    MUTATING_METHODS,
    FunctionInfo,
    FunctionNode,
)
from repro.lint.findings import Finding
from repro.lint.purity import ProgramContext
from repro.lint.rules_det import _STDLIB_RANDOM_GLOBALS, _WALL_CLOCK_TARGETS

#: RNG constructors for PURE003.
_RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: Known-impure call targets beyond the wall clock (PURE002).
_EXTRA_IMPURE_TARGETS = frozenset(
    {
        "os.putenv",
        "os.unsetenv",
        "os.urandom",
        "os.getenv",  # reads ambient process state the harness never set
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)


class PurityRule:
    """Base class for whole-program rules (parallel to per-file ``Rule``)."""

    id: str = ""
    summary: str = ""

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, fn: FunctionInfo, node: ast.AST, message: str,
        program: ProgramContext,
    ) -> Finding:
        lineno = int(getattr(node, "lineno", fn.node.lineno))
        col = int(getattr(node, "col_offset", 0))
        chain = program.graph.witness_path(fn.qualname)
        if len(chain) > 1:
            short = [part.rsplit(".", 2)[-1] for part in chain[:4]]
            if len(chain) > 4:
                short.append("…")
            via = " (pure via " + " -> ".join(short) + ")"
        else:
            via = ""
        parsed = program.graph.modules.get(fn.module)
        source_line = ""
        if parsed is not None and 1 <= lineno <= len(parsed.lines):
            source_line = parsed.lines[lineno - 1]
        return Finding(
            rule=self.id,
            path=fn.path,
            line=lineno,
            col=col,
            message=message + via,
            source_line=source_line,
        )

    # -- shared helpers ----------------------------------------------------
    @staticmethod
    def _iter_pure_functions(
        program: ProgramContext,
    ) -> Iterator[FunctionInfo]:
        for qualname in program.pure_functions():
            yield program.graph.functions[qualname]

    @staticmethod
    def _imports_for(program: ProgramContext, fn: FunctionInfo) -> ImportMap:
        parsed = program.graph.modules.get(fn.module)
        if parsed is None:
            return ImportMap()
        return collect_imports(parsed.tree)


def _local_names(node: ast.AST) -> Set[str]:
    """Names bound locally inside a function (params + stores + targets)."""
    out: Set[str] = set()
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        out.add(arg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(
            sub.ctx, (ast.Store, ast.Del)
        ):
            out.add(sub.id)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            for target in ast.walk(sub.target):
                if isinstance(target, ast.Name):
                    out.add(target.id)
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            for target in ast.walk(sub.optional_vars):
                if isinstance(target, ast.Name):
                    out.add(target.id)
    # A `global` declaration un-localizes the name again.
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            out.difference_update(sub.names)
    return out


def _iter_scopes(root: FunctionNode) -> Iterator[FunctionNode]:
    """The function itself plus every def nested anywhere inside it."""
    for node in ast.walk(root):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_nodes(scope: FunctionNode) -> Iterator[ast.AST]:
    """Nodes belonging to *scope*'s own body, pruning nested defs/classes.

    ``global``/``nonlocal`` declarations are scope-local, so rules that
    care about them must not mix statements across nesting levels.
    """
    stack: List[ast.AST] = list(scope.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _module_level_bindings(tree: ast.Module) -> Set[str]:
    """Names assigned at module top level (the mutable module state)."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
    return names


def _module_level_classes(tree: ast.Module) -> Set[str]:
    return {
        node.name for node in tree.body if isinstance(node, ast.ClassDef)
    }


class PureGlobalWriteRule(PurityRule):
    """PURE001 — no writes to module globals from inside the pure region."""

    id = "PURE001"
    summary = (
        "pure-region function writes shared module state (global rebind, "
        "module-level container mutation, class attribute, nonlocal cell)"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        for fn in self._iter_pure_functions(program):
            yield from self._check_function(program, fn)

    def _check_function(
        self, program: ProgramContext, fn: FunctionInfo
    ) -> Iterator[Finding]:
        parsed = program.graph.modules.get(fn.module)
        if parsed is None:
            return
        module_names = _module_level_bindings(parsed.tree)
        class_names = _module_level_classes(parsed.tree)
        imports = self._imports_for(program, fn)
        # Class names visible via `from x import Cls` count too.
        imported_classes = {
            alias
            for alias, origin in imports.names.items()
            if origin.rsplit(".", 1)[-1][:1].isupper()
        }
        local = _local_names(fn.node)

        def module_binding(name: str) -> bool:
            return (
                name in module_names
                and name not in local
                and name not in {"self", "cls"}
            )

        # (a) rebinding a declared global / nonlocal.  ``global``/``nonlocal``
        # declarations only affect the scope they appear in, so each def in
        # the subtree is analysed as its own scope — an outer function that
        # merely *binds* a name some nested closure later declares nonlocal
        # is not itself writing a cell.
        for scope in _iter_scopes(fn.node):
            declared_global: Set[str] = set()
            declared_nonlocal: Set[str] = set()
            scope_nodes = list(_scope_nodes(scope))
            for node in scope_nodes:
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
                elif isinstance(node, ast.Nonlocal):
                    declared_nonlocal.update(node.names)
            if not declared_global and not declared_nonlocal:
                continue
            for node in scope_nodes:
                if not (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Store)
                ):
                    continue
                if node.id in declared_global:
                    yield self.finding(
                        fn, node,
                        f"writes module global {node.id!r} from the pure "
                        "region — session results must not depend on or "
                        "mutate cross-session process state",
                        program,
                    )
                elif node.id in declared_nonlocal:
                    yield self.finding(
                        fn, node,
                        f"writes enclosing-scope cell {node.id!r} from the "
                        "pure region — closures over mutable cells leak "
                        "state between sessions",
                        program,
                    )

        for node in ast.walk(fn.node):
            # (b) mutating a module-level container: X[k] = v / X.attr = v.
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    list(node.targets)
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_store_target(
                        fn, target, module_binding, class_names,
                        imported_classes, program,
                    )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    yield from self._check_store_target(
                        fn, target, module_binding, class_names,
                        imported_classes, program,
                    )
            # (c) mutating method call on a module-level binding.
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.attr in MUTATING_METHODS
                    and module_binding(func.value.id)
                ):
                    yield self.finding(
                        fn, node,
                        f"mutates module-level {func.value.id!r} via "
                        f".{func.attr}() from the pure region — "
                        "per-session state must live on the session, not "
                        "the module",
                        program,
                    )

    def _check_store_target(
        self,
        fn: FunctionInfo,
        target: ast.expr,
        module_binding: "Callable[[str], bool]",
        class_names: Set[str],
        imported_classes: Set[str],
        program: ProgramContext,
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            if module_binding(target.value.id):
                yield self.finding(
                    fn, target,
                    f"assigns into module-level {target.value.id!r} from "
                    "the pure region — a cross-session cache breaks "
                    "session independence",
                    program,
                )
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            base = target.value.id
            if base in class_names or base in imported_classes:
                yield self.finding(
                    fn, target,
                    f"writes class-level attribute {base}.{target.attr} "
                    "from the pure region — class attributes are shared "
                    "across every session in the process",
                    program,
                )
            elif module_binding(base):
                yield self.finding(
                    fn, target,
                    f"writes attribute .{target.attr} of module-level "
                    f"{base!r} from the pure region — shared singleton "
                    "state leaks between sessions",
                    program,
                )


class PureImpureCallRule(PurityRule):
    """PURE002 — no known-impure stdlib calls inside the pure region."""

    id = "PURE002"
    summary = (
        "pure-region function calls an impure stdlib surface (wall clock, "
        "module-global RNG, os.environ writes, entropy sources)"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        for fn in self._iter_pure_functions(program):
            imports = self._imports_for(program, fn)
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    message = self._diagnose_call(node, imports)
                    if message is not None:
                        yield self.finding(fn, node, message, program)
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        list(node.targets)
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if self._is_environ_store(target, imports):
                            yield self.finding(
                                fn, node,
                                "writes os.environ from the pure region — "
                                "environment mutations are process-global "
                                "and survive the session",
                                program,
                            )

    def _diagnose_call(
        self, node: ast.Call, imports: ImportMap
    ) -> Optional[str]:
        target = resolve_call_target(node, imports)
        if target is None:
            return None
        if target in _WALL_CLOCK_TARGETS:
            return (
                f"{target}() reads the wall clock inside the pure region — "
                "nothing reachable from a purity root may observe real time"
            )
        if target in _EXTRA_IMPURE_TARGETS:
            return (
                f"{target}() is impure (ambient process state or OS "
                "entropy) — forbidden inside the pure region"
            )
        if target.startswith("random."):
            attr = target[len("random."):]
            if "." not in attr and attr in _STDLIB_RANDOM_GLOBALS:
                return (
                    f"random.{attr}() draws from the stdlib's hidden global "
                    "RNG inside the pure region — every draw must flow from "
                    "an explicitly passed generator"
                )
        if target.startswith("numpy.random."):
            attr = target[len("numpy.random."):]
            if "." not in attr and attr[:1].islower() and attr not in {
                "default_rng",
            }:
                return (
                    f"numpy.random.{attr}() draws from numpy's module-"
                    "global RNG inside the pure region — use a seeded "
                    "Generator passed in from the session"
                )
            if attr == "default_rng" and not node.args and not node.keywords:
                return (
                    "numpy.random.default_rng() without a seed pulls OS "
                    "entropy inside the pure region"
                )
        if target.startswith("os.environ."):
            method = target[len("os.environ."):]
            if method in {"update", "setdefault", "pop", "clear",
                          "__setitem__", "__delitem__"}:
                return (
                    f"os.environ.{method}() mutates the process "
                    "environment inside the pure region"
                )
        return None

    @staticmethod
    def _is_environ_store(target: ast.expr, imports: ImportMap) -> bool:
        """``os.environ[...] = v`` (through any import alias of ``os``)."""
        if not isinstance(target, ast.Subscript):
            return False
        value = target.value
        if not (
            isinstance(value, ast.Attribute) and value.attr == "environ"
        ):
            return False
        base = value.value
        if not isinstance(base, ast.Name):
            return False
        resolved = imports.modules.get(base.id, base.id)
        return resolved == "os"


class PureRngDualityRule(PurityRule):
    """PURE003 — a function given an RNG must not construct another one."""

    id = "PURE003"
    summary = (
        "pure-region function accepts an RNG parameter but also constructs "
        "one (two generators in one scope defeats seed-flow auditing)"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        for fn in self._iter_pure_functions(program):
            rng_params = _rng_parameters(fn.node)
            if not rng_params:
                continue
            imports = self._imports_for(program, fn)
            exempt = _none_fallback_nodes(fn.node, rng_params)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call) or id(node) in exempt:
                    continue
                target = resolve_call_target(node, imports)
                if target in _RNG_CONSTRUCTORS:
                    yield self.finding(
                        fn, node,
                        f"constructs {target}(...) although the function "
                        f"already receives {sorted(rng_params)[0]!r} — "
                        "derive sub-streams from the passed generator (or "
                        "an explicit seed parameter) instead of creating "
                        "an independent one",
                        program,
                    )


def _rng_parameters(node: FunctionNode) -> Set[str]:
    names: Set[str] = set()
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
    ):
        if arg.arg == "rng" or arg.arg.endswith("_rng"):
            names.add(arg.arg)
    return names


def _none_fallback_nodes(fn: FunctionNode, rng_params: Set[str]) -> Set[int]:
    """Node ids exempt from PURE003: the ``rng if rng is not None else
    default_rng(seed)`` fallback idiom (conditional expression or ``if``
    statement testing the RNG parameter against ``None``)."""

    def mentions_param_and_none(test: ast.expr) -> bool:
        has_param = any(
            isinstance(sub, ast.Name) and sub.id in rng_params
            for sub in ast.walk(test)
        )
        has_none = any(
            isinstance(sub, ast.Constant) and sub.value is None
            for sub in ast.walk(test)
        )
        return has_param and has_none

    exempt: Set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.IfExp) and mentions_param_and_none(node.test):
            for branch in (node.body, node.orelse):
                exempt.update(id(sub) for sub in ast.walk(branch))
        elif isinstance(node, ast.If) and mentions_param_and_none(node.test):
            for stmt in list(node.body) + list(node.orelse):
                exempt.update(id(sub) for sub in ast.walk(stmt))
        elif isinstance(node, ast.BoolOp):
            # `rng = rng or default_rng(seed)` — weaker but same intent.
            if any(
                isinstance(v, ast.Name) and v.id in rng_params
                for v in node.values
            ):
                exempt.update(id(sub) for sub in ast.walk(node))
    return exempt


def make_purity_rules() -> List[PurityRule]:
    """Fresh instances of every whole-program rule, in id order."""
    return [PureGlobalWriteRule(), PureImpureCallRule(), PureRngDualityRule()]

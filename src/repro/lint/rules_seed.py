"""Whole-program seed-lineage rules: SEED001–SEED004.

These interpret the :class:`repro.lint.dataflow.SeedFlow` event stream
computed once per whole-program run (see ``ProgramContext.seed_flow``).
Unlike the purity rules they scan **every** function in the graph, not
only the pure region: seed discipline is a tree-wide contract — a
correlated stream constructed outside the pure region still biases the
experiment arms it feeds.

=========  ===============================================================
SEED001    arithmetic seed derivation (``seed + k``, ``seed * p + i``)
           folding in a free variable without tuple /
           ``SeedSequence.spawn`` domain separation — injectivity of the
           derived stream depends on unchecked arithmetic over the free
           index
SEED002    one derived seed value reaching two or more independent
           RNG-consuming sinks — the streams are *identical*, not merely
           correlated (the ``insitu.py`` bug class)
SEED003    a tuple seed fold that omits a domain-separation constant
           (``(seed, i)``): two call sites folding different indices at
           the same position collide under permutation
SEED004    a ``numpy.random.Generator`` crossing a chunk/process boundary
           (``fork_map``, pool methods) — generators must cross as seed
           tuples and be rebuilt on the far side
=========  ===============================================================

Findings attribute to the *derivation* (SEED001/002), the *fold*
(SEED003), or the *crossing* (SEED004) — the line a developer must edit —
and carry the consumer sites in the message.  Waivers use the ordinary
inline suppression comments (``allow-SEED001(reason)`` and friends).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.dataflow import SeedEvent, Site
from repro.lint.findings import Finding
from repro.lint.purity import ProgramContext
from repro.lint.rules_purity import PurityRule


class SeedRule(PurityRule):
    """Base for seed-lineage rules: site-attributed findings."""

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        raise NotImplementedError

    @staticmethod
    def _events(program: ProgramContext) -> List[SeedEvent]:
        if program.seed_flow is None:
            return []
        return program.seed_flow.events

    def site_finding(
        self,
        program: ProgramContext,
        site: Site,
        message: str,
    ) -> Finding:
        path, line, col = site
        source_line = ""
        for parsed in program.graph.modules.values():
            if parsed.path == path:
                if 1 <= line <= len(parsed.lines):
                    source_line = parsed.lines[line - 1]
                break
        return Finding(
            rule=self.id,
            path=path,
            line=line,
            col=col,
            message=message,
            source_line=source_line,
        )


def _describe_site(site: Site) -> str:
    return f"{site[0]}:{site[1]}"


class SeedArithmeticDerivationRule(SeedRule):
    """SEED001 — arithmetic seed derivation over a free variable."""

    id = "SEED001"
    summary = (
        "seed derived arithmetically over a free index without domain "
        "separation — use a tuple seed with a stream constant "
        "(``(seed, _STREAM, i)``) or SeedSequence.spawn"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        seen: Set[Tuple[Site, Tuple[str, ...]]] = set()
        for event in self._events(program):
            if event.kind not in ("sink", "handoff"):
                continue
            lin = event.lineage
            if (
                not lin.derived
                or lin.domain_separated
                or not lin.free_vars
                or lin.derive_site is None
            ):
                continue
            key = (lin.derive_site, lin.free_vars)
            if key in seen:
                continue
            seen.add(key)
            free = ", ".join(repr(v) for v in lin.free_vars)
            yield self.site_finding(
                program,
                lin.derive_site,
                f"seed {lin.root!r} is derived arithmetically over free "
                f"variable(s) {free} and reaches {event.target} at "
                f"{_describe_site(event.site)} without domain separation — "
                "collisions between derived streams are unchecked; fold the "
                "index into a tuple seed with a stream constant instead",
            )


class SeedSharedConsumerRule(SeedRule):
    """SEED002 — one derived seed feeding ≥2 independent sinks."""

    id = "SEED002"
    summary = (
        "one derived seed value reaches two or more independent "
        "RNG-consuming sinks — the streams are identical; give each "
        "consumer its own domain-separated seed"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        by_derivation: Dict[
            Tuple[Site, str], Dict[Tuple[str, int], SeedEvent]
        ] = {}
        for event in self._events(program):
            if event.kind not in ("sink", "handoff"):
                continue
            lin = event.lineage
            if (
                not lin.derived
                or lin.domain_separated
                or lin.derive_site is None
            ):
                continue
            consumers = by_derivation.setdefault(
                (lin.derive_site, lin.root), {}
            )
            consumers.setdefault((event.site[0], event.site[1]), event)
        for (derive_site, root), consumers in sorted(by_derivation.items()):
            if len(consumers) < 2:
                continue
            ordered = sorted(consumers.values(), key=lambda e: e.site)
            described = "; ".join(
                f"{e.target} at {_describe_site(e.site)}" for e in ordered
            )
            yield self.site_finding(
                program,
                derive_site,
                f"seed {root!r} derived here feeds {len(ordered)} "
                f"independent RNG consumers ({described}) — they draw "
                "identical streams; derive a distinct tuple seed per "
                "consumer",
            )


class SeedTupleFoldRule(SeedRule):
    """SEED003 — tuple fold without a domain-separation constant."""

    id = "SEED003"
    summary = (
        "tuple seed fold omits a domain-separation constant — "
        "``(seed, i)`` collides with any other ``(seed, j)`` fold under "
        "permutation of the free indices"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        seen: Set[Site] = set()
        for event in self._events(program):
            if event.kind not in ("sink", "handoff"):
                continue
            lin = event.lineage
            if lin.domain_separated or lin.fold_site is None:
                continue
            if lin.fold_site in seen:
                continue
            seen.add(lin.fold_site)
            yield self.site_finding(
                program,
                lin.fold_site,
                f"seed {lin.root!r} is folded into a tuple without a "
                f"domain-separation constant and reaches {event.target} at "
                f"{_describe_site(event.site)} — two such folds collide "
                "whenever their free indices permute; add a distinct "
                "stream constant element",
            )


class GeneratorBoundaryRule(SeedRule):
    """SEED004 — a Generator crossing a process boundary."""

    id = "SEED004"
    summary = (
        "numpy Generator crosses a chunk/process boundary — pass a seed "
        "tuple and rebuild the generator on the far side"
    )

    def check_program(self, program: ProgramContext) -> Iterator[Finding]:
        seen: Set[Tuple[Site, str]] = set()
        for event in self._events(program):
            if event.kind != "boundary":
                continue
            key = (event.site, event.lineage.root)
            if key in seen:
                continue
            seen.add(key)
            yield self.site_finding(
                program,
                event.site,
                f"RNG {event.lineage.root!r} crosses a process boundary via "
                f"{event.target} — a Generator cannot reproduce its stream "
                "identity across processes; pass a domain-separated seed "
                "tuple and construct the generator in the worker",
            )


def make_seed_rules() -> List[SeedRule]:
    """Fresh instances of every seed-lineage rule, in id order."""
    return [
        SeedArithmeticDerivationRule(),
        SeedSharedConsumerRule(),
        SeedTupleFoldRule(),
        GeneratorBoundaryRule(),
    ]

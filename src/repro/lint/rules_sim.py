"""SIM001 — float equality in simulation control flow.

Simulated clocks, buffer levels, and rate estimates are floats accumulated
over thousands of events; branching on exact equality (``t == limit``)
makes behaviour depend on the least-significant bit of an accumulation
order.  In the packages that implement the simulator's dynamics —
``repro.net``, ``repro.streaming``, ``repro.core`` — any ``==``/``!=``
whose operands look float-typed inside a control-flow condition is flagged.

The rule has no type inference; it uses a conservative syntactic notion of
"float-typed": float literals, ``float(...)`` casts, true division, and
arithmetic expressions containing a float literal.  Integer comparisons
(``steps == 0``) and string/enum comparisons never match.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.base import (
    FileContext,
    Rule,
    register,
    walk_condition_expressions,
)
from repro.lint.findings import Finding

_SIM001_SCOPE: Tuple[str, ...] = (
    "repro.net",
    "repro.streaming",
    "repro.core",
)


def _looks_float(node: ast.expr) -> bool:
    """Conservative: only expressions that are float-typed by construction."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _looks_float(node.operand)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _looks_float(node.left) or _looks_float(node.right)
    return False


@register
class FloatEqualityRule(Rule):
    """SIM001 — no exact float equality in simulator control flow."""

    id = "SIM001"
    summary = (
        "float ==/!= in a control-flow condition inside net/, streaming/, "
        "core/: compare with a tolerance (math.isclose) or restructure"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*_SIM001_SCOPE):
            return
        for condition in walk_condition_expressions(ctx.tree):
            for node in ast.walk(condition):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left] + list(node.comparators)
                for op, left, right in zip(
                    node.ops, operands[:-1], operands[1:]
                ):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    if _looks_float(left) or _looks_float(right):
                        kind = "==" if isinstance(op, ast.Eq) else "!="
                        yield self.finding(
                            ctx,
                            node,
                            f"exact float {kind} in a simulation branch — "
                            "accumulated floats differ in the last ulp; use "
                            "a tolerance (math.isclose / abs diff < eps) or "
                            "compare integers",
                        )
                        break

"""Inline suppression comments.

Syntax::

    some_call()  # repro: allow-DET002(wall-clock throughput report)

A suppression silences findings of the named rule on its own physical line;
a comment that stands alone on a line silences the *next* non-blank,
non-comment line as well, so long call chains can carry the annotation
above them.  The parenthesized reason is mandatory — a suppression without
one is itself reported as ``LINT000`` so the waiver trail stays auditable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding

MALFORMED_RULE_ID = "LINT000"

_SUPPRESSION = re.compile(
    r"repro:\s*allow-(?P<rule>[A-Z]+[0-9]+)"
    r"(?:\((?P<reason>[^)]*)\))?"
)
_COMMENT_ONLY = re.compile(r"^\s*#")
_BLANK = re.compile(r"^\s*$")


@dataclass(frozen=True)
class Suppression:
    rule: str
    reason: str
    line: int
    """Physical line the comment sits on (1-based)."""


def parse_suppressions(
    lines: Sequence[str], path: str
) -> Tuple[Dict[int, List[Suppression]], List[Finding]]:
    """Map ``line -> suppressions effective there``; plus malformed findings.

    The map contains the comment's own line and, for standalone comment
    lines, the next non-blank non-comment line.
    """
    effective: Dict[int, List[Suppression]] = {}
    malformed: List[Finding] = []
    for index, raw in enumerate(lines):
        lineno = index + 1
        # Only look inside the comment portion of the line; several
        # suppressions may share one `#`:
        #   x()  # repro: allow-A(a) repro: allow-B(b)
        hash_index = raw.find("#")
        if hash_index < 0:
            continue
        comment = raw[hash_index:]
        for match in _SUPPRESSION.finditer(comment):
            reason = match.group("reason")
            if reason is None or not reason.strip():
                malformed.append(
                    Finding(
                        rule=MALFORMED_RULE_ID,
                        path=path,
                        line=lineno,
                        col=hash_index + match.start(),
                        message=(
                            f"suppression of {match.group('rule')} is "
                            "missing its reason — write "
                            f"`# repro: allow-{match.group('rule')}"
                            "(why this is safe)`"
                        ),
                        source_line=raw,
                    )
                )
                continue
            supp = Suppression(
                rule=match.group("rule"),
                reason=reason.strip(),
                line=lineno,
            )
            effective.setdefault(lineno, []).append(supp)
            if _COMMENT_ONLY.match(raw):
                target = _next_code_line(lines, index)
                if target is not None:
                    effective.setdefault(target, []).append(supp)
    return effective, malformed


def _next_code_line(lines: Sequence[str], comment_index: int) -> Optional[int]:
    for later in range(comment_index + 1, len(lines)):
        if _BLANK.match(lines[later]) or _COMMENT_ONLY.match(lines[later]):
            continue
        return later + 1
    return None


def apply_suppressions(
    findings: Sequence[Finding],
    effective: Dict[int, List[Suppression]],
) -> List[Finding]:
    """Return findings with matching ones marked ``suppressed``."""
    out: List[Finding] = []
    for finding in findings:
        matched = None
        for supp in effective.get(finding.line, []):
            if supp.rule == finding.rule:
                matched = supp
                break
        if matched is None:
            out.append(finding)
        else:
            out.append(
                Finding(
                    rule=finding.rule,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                    source_line=finding.source_line,
                    suppressed=True,
                    suppression_reason=matched.reason,
                )
            )
    return out

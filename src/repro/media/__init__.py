"""Video substrate: encoding ladder, VBR encoder model, and SSIM quality model.

Puffer's back end (§3.1) decodes six over-the-air TV channels and encodes
each 2.002-second chunk into ten H.264 versions (240p/CRF 26 ≈ 200 kbps up to
1080p/CRF 20 ≈ 5,500 kbps), then computes each encoded chunk's SSIM against
the canonical source. This package replaces the antenna + libx264 + ffmpeg
pipeline with a stochastic model that reproduces the properties ABR
algorithms actually observe:

* chunk sizes vary widely within a stream under VBR encoding (Fig. 3a);
* picture quality (SSIM) varies chunk-by-chunk as well (Fig. 3b);
* the bitrate/quality relationship differs per chunk, so maximizing bitrate
  is not the same as maximizing SSIM (Fig. 4).
"""

from repro.media.chunk import ChunkMenu, EncodedChunk
from repro.media.ladder import EncodingLadder, EncodingProfile, PUFFER_LADDER
from repro.media.source import Channel, SceneComplexityProcess, VideoSource
from repro.media.encoder import VbrEncoder, encode_clip
from repro.media.ssim import ssim_db_to_index, ssim_index_to_db

CHUNK_DURATION = 2.002
"""Video chunk length in seconds (NTSC 2.002 s, §3.1)."""

__all__ = [
    "CHUNK_DURATION",
    "EncodedChunk",
    "ChunkMenu",
    "EncodingProfile",
    "EncodingLadder",
    "PUFFER_LADDER",
    "SceneComplexityProcess",
    "Channel",
    "VideoSource",
    "VbrEncoder",
    "encode_clip",
    "ssim_index_to_db",
    "ssim_db_to_index",
]

"""Chunk data structures.

An :class:`EncodedChunk` is one (chunk, rung) pair with its compressed size
and SSIM; a :class:`ChunkMenu` is the set of alternative versions of one
chunk the ABR algorithm chooses among — the "limited menu" of §2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.media.ladder import EncodingProfile


@dataclass(frozen=True)
class EncodedChunk:
    """One encoded version of one video chunk.

    Attributes
    ----------
    chunk_index:
        Position of the chunk within its stream, starting at 0.
    profile:
        The ladder rung this version was encoded with.
    size_bytes:
        Compressed size (VBR: varies chunk to chunk within a rung).
    ssim_db:
        Quality versus the canonical source, in decibels.
    duration:
        Playback duration in seconds (2.002 s on Puffer).
    """

    chunk_index: int
    profile: EncodingProfile
    size_bytes: float
    ssim_db: float
    duration: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("chunk size must be positive")
        if self.duration <= 0:
            raise ValueError("chunk duration must be positive")

    @property
    def size_bits(self) -> float:
        return self.size_bytes * 8.0

    @property
    def bitrate(self) -> float:
        """Actual compressed bitrate of this version, bits per second."""
        return self.size_bits / self.duration


class ChunkMenu:
    """All encoded versions of a single chunk, ordered lowest-bitrate first.

    Indexing follows ladder order, so ``menu[0]`` is the 240p version and
    ``menu[-1]`` the 1080p/CRF-20 version on the default ladder.
    """

    def __init__(self, versions: Sequence[EncodedChunk]) -> None:
        if not versions:
            raise ValueError("menu must contain at least one version")
        indices = {v.chunk_index for v in versions}
        if len(indices) != 1:
            raise ValueError("all versions in a menu must share a chunk index")
        self.versions: Tuple[EncodedChunk, ...] = tuple(
            sorted(versions, key=lambda v: v.profile.target_bitrate)
        )
        self.chunk_index = self.versions[0].chunk_index
        self.duration = self.versions[0].duration

    def __len__(self) -> int:
        return len(self.versions)

    def __iter__(self) -> Iterator[EncodedChunk]:
        return iter(self.versions)

    def __getitem__(self, index: int) -> EncodedChunk:
        return self.versions[index]

    @property
    def sizes(self) -> Tuple[float, ...]:
        return tuple(v.size_bytes for v in self.versions)

    @property
    def ssims_db(self) -> Tuple[float, ...]:
        return tuple(v.ssim_db for v in self.versions)

    def version_for_profile(self, profile: EncodingProfile) -> EncodedChunk:
        for version in self.versions:
            if version.profile == profile:
                return version
        raise KeyError(f"menu has no version for profile {profile.name!r}")

"""VBR encoder model.

Maps a chunk's scene complexity to the (size, SSIM) pair each ladder rung
would produce, standing in for libx264 + ffmpeg-SSIM in the Puffer back end.

The model captures three empirical facts the paper leans on:

1. **VBR size variability** (Fig. 3a): at fixed CRF, compressed size scales
   roughly linearly with content complexity, with residual noise.
2. **Quality variability** (Fig. 3b): CRF holds quality only approximately
   constant; complex chunks lose some SSIM at every rung, and low-resolution
   rungs are capped by upsampling loss.
3. **Diminishing returns**: each rung's SSIM gain over the previous rung
   shrinks at the top of the ladder, so "maximize bitrate" and "maximize
   SSIM" are different objectives (Fig. 4).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.media.chunk import ChunkMenu, EncodedChunk
from repro.media.ladder import EncodingLadder, PUFFER_LADDER
from repro.media.source import Channel, VideoSource

CHUNK_DURATION = 2.002

_MIN_SSIM_DB = 2.0
_MAX_SSIM_DB = 25.0


class VbrEncoder:
    """Produces a :class:`ChunkMenu` per chunk from a complexity value.

    Parameters
    ----------
    ladder:
        Encoding ladder (defaults to the ten-rung Puffer ladder).
    size_noise_sigma:
        Residual lognormal noise on chunk size beyond what complexity
        explains (encoder rate-control slack).
    quality_complexity_slope:
        SSIM dB lost per doubling of complexity at fixed CRF.
    quality_noise_sigma:
        Per-(chunk, rung) SSIM noise in dB.
    """

    def __init__(
        self,
        ladder: EncodingLadder = PUFFER_LADDER,
        size_noise_sigma: float = 0.12,
        quality_complexity_slope: float = 1.6,
        quality_noise_sigma: float = 0.25,
        chunk_duration: float = CHUNK_DURATION,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if size_noise_sigma < 0 or quality_noise_sigma < 0:
            raise ValueError("noise sigmas must be non-negative")
        if chunk_duration <= 0:
            raise ValueError("chunk duration must be positive")
        self.ladder = ladder
        self.size_noise_sigma = size_noise_sigma
        self.quality_complexity_slope = quality_complexity_slope
        self.quality_noise_sigma = quality_noise_sigma
        self.chunk_duration = chunk_duration
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def encode_chunk(self, chunk_index: int, complexity: float) -> ChunkMenu:
        """Encode one chunk of the given complexity at every rung."""
        if complexity <= 0:
            raise ValueError("complexity must be positive")
        # The same rate-control slack applies across rungs of one chunk:
        # libx264 sees the same frames at every rung.
        size_noise = float(
            self.rng.lognormal(
                -0.5 * self.size_noise_sigma**2, self.size_noise_sigma
            )
        )
        versions: List[EncodedChunk] = []
        for profile in self.ladder:
            size_bits = (
                profile.target_bitrate
                * self.chunk_duration
                * complexity
                * size_noise
            )
            ssim_db = (
                profile.base_ssim_db
                - self.quality_complexity_slope * np.log2(complexity)
                + float(self.rng.normal(0.0, self.quality_noise_sigma))
            )
            ssim_db = float(np.clip(ssim_db, _MIN_SSIM_DB, _MAX_SSIM_DB))
            versions.append(
                EncodedChunk(
                    chunk_index=chunk_index,
                    profile=profile,
                    size_bytes=max(size_bits / 8.0, 1.0),
                    ssim_db=ssim_db,
                    duration=self.chunk_duration,
                )
            )
        # Enforce ladder monotonicity in quality: a strictly larger encoding
        # of the same frames never looks worse after the shared noise draw.
        for i in range(1, len(versions)):
            if versions[i].ssim_db < versions[i - 1].ssim_db:
                versions[i] = EncodedChunk(
                    chunk_index=versions[i].chunk_index,
                    profile=versions[i].profile,
                    size_bytes=versions[i].size_bytes,
                    ssim_db=versions[i - 1].ssim_db,
                    duration=versions[i].duration,
                )
        return ChunkMenu(versions)

    def encode_source(
        self, source: VideoSource, n_chunks: int, start_index: int = 0
    ) -> List[ChunkMenu]:
        """Encode a bounded clip from a video source."""
        return [
            self.encode_chunk(start_index + i, complexity)
            for i, complexity in enumerate(source.take(n_chunks))
        ]

    def stream(self, source: VideoSource, start_index: int = 0) -> Iterator[ChunkMenu]:
        """Endless encoded stream (live TV)."""
        index = start_index
        for complexity in source:
            yield self.encode_chunk(index, complexity)
            index += 1


def encode_clip(
    channel: Channel,
    n_chunks: int,
    seed: int = 0,
    ladder: EncodingLadder = PUFFER_LADDER,
) -> List[ChunkMenu]:
    """Convenience: encode an ``n_chunks`` clip of ``channel`` with one seed."""
    rng = np.random.default_rng(seed)
    source = VideoSource(channel, rng=rng)
    encoder = VbrEncoder(ladder=ladder, rng=rng)
    return encoder.encode_source(source, n_chunks)

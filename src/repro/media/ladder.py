"""The encoding ladder.

Puffer encodes each chunk in ten H.264 versions ranging from 240p60 at
CRF 26 (about 200 kbps) to 1080p60 at CRF 20 (about 5,500 kbps) (§3.1).
:data:`PUFFER_LADDER` reconstructs that ladder with geometrically spaced
target bitrates and the resolutions Puffer's player exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class EncodingProfile:
    """One rung of the ladder: a resolution/CRF pair with its empirical
    average bitrate.

    Attributes
    ----------
    name:
        Human-readable label, e.g. ``"720p60-crf23"``.
    width, height:
        Encoded frame dimensions.
    crf:
        x264 constant rate factor; lower is higher quality.
    target_bitrate:
        Long-run average bitrate in bits per second for typical content.
    base_ssim_db:
        SSIM (dB, vs. the 1080p canonical source) this rung achieves on a
        chunk of average complexity. Low resolutions are capped well below
        high ones because SSIM is computed after upscaling to the canonical
        resolution.
    """

    name: str
    width: int
    height: int
    crf: int
    target_bitrate: float
    base_ssim_db: float

    @property
    def pixels_per_frame(self) -> int:
        return self.width * self.height

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class EncodingLadder:
    """An ordered set of encoding profiles, lowest bitrate first."""

    def __init__(self, profiles: Sequence[EncodingProfile]) -> None:
        if not profiles:
            raise ValueError("ladder must contain at least one profile")
        ordered = sorted(profiles, key=lambda p: p.target_bitrate)
        names = [p.name for p in ordered]
        if len(set(names)) != len(names):
            raise ValueError("ladder profiles must have unique names")
        self.profiles: Tuple[EncodingProfile, ...] = tuple(ordered)

    def __len__(self) -> int:
        return len(self.profiles)

    def __iter__(self) -> Iterator[EncodingProfile]:
        return iter(self.profiles)

    def __getitem__(self, index: int) -> EncodingProfile:
        return self.profiles[index]

    @property
    def lowest(self) -> EncodingProfile:
        return self.profiles[0]

    @property
    def highest(self) -> EncodingProfile:
        return self.profiles[-1]

    @property
    def bitrates(self) -> List[float]:
        return [p.target_bitrate for p in self.profiles]

    def index_of(self, name: str) -> int:
        for i, profile in enumerate(self.profiles):
            if profile.name == name:
                return i
        raise KeyError(f"no profile named {name!r}")


def _kbps(value: float) -> float:
    return value * 1000.0


PUFFER_LADDER = EncodingLadder(
    [
        EncodingProfile("240p60-crf26", 426, 240, 26, _kbps(200), 6.8),
        EncodingProfile("360p60-crf26", 640, 360, 26, _kbps(400), 9.0),
        EncodingProfile("480p60-crf25", 854, 480, 25, _kbps(700), 10.9),
        EncodingProfile("576p60-crf25", 1024, 576, 25, _kbps(1000), 12.2),
        EncodingProfile("720p60-crf25", 1280, 720, 25, _kbps(1400), 13.4),
        EncodingProfile("720p60-crf23", 1280, 720, 23, _kbps(1900), 14.5),
        EncodingProfile("720p60-crf21", 1280, 720, 21, _kbps(2500), 15.4),
        EncodingProfile("1080p60-crf24", 1920, 1080, 24, _kbps(3300), 16.3),
        EncodingProfile("1080p60-crf22", 1920, 1080, 22, _kbps(4300), 17.1),
        EncodingProfile("1080p60-crf20", 1920, 1080, 20, _kbps(5500), 17.9),
    ]
)
"""Ten-rung ladder matching Puffer's §3.1 description (200 kbps to 5.5 Mbps)."""

"""Video sources: live-TV channels modeled as a scene-complexity process.

Under CRF (constant-rate-factor) encoding, the encoder holds perceptual
quality roughly constant and lets the bitrate float with content complexity,
so compressed chunk sizes track how "busy" the video is. We model each
channel as a mean-reverting log-complexity process punctuated by scene cuts
and program changes, which reproduces the within-stream variability of
Fig. 3: quiet talking-head segments compress tightly while sports or action
segments inflate chunk sizes several-fold at the same rung.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np


@dataclass(frozen=True)
class Channel:
    """A live TV channel with its characteristic content statistics.

    Attributes
    ----------
    name:
        Channel label (Puffer carries six over-the-air channels).
    complexity_sigma:
        Stationary standard deviation of log-complexity; sports channels
        have larger swings than news channels.
    scene_cut_rate:
        Probability per chunk of a scene cut (a jump in complexity).
    mean_reversion:
        Per-chunk pull of log-complexity back toward 0 (rate in (0, 1]).
    """

    name: str
    complexity_sigma: float = 0.35
    scene_cut_rate: float = 0.08
    mean_reversion: float = 0.10

    def __post_init__(self) -> None:
        if self.complexity_sigma < 0:
            raise ValueError("complexity_sigma must be non-negative")
        if not 0.0 <= self.scene_cut_rate <= 1.0:
            raise ValueError("scene_cut_rate must lie in [0, 1]")
        if not 0.0 < self.mean_reversion <= 1.0:
            raise ValueError("mean_reversion must lie in (0, 1]")


DEFAULT_CHANNELS: List[Channel] = [
    Channel("abc", complexity_sigma=0.32, scene_cut_rate=0.07),
    Channel("cbs", complexity_sigma=0.30, scene_cut_rate=0.06),
    Channel("nbc", complexity_sigma=0.35, scene_cut_rate=0.08),
    Channel("fox", complexity_sigma=0.40, scene_cut_rate=0.10),
    Channel("pbs", complexity_sigma=0.25, scene_cut_rate=0.05),
    Channel("cw", complexity_sigma=0.33, scene_cut_rate=0.07),
]
"""Six channels standing in for Puffer's over-the-air lineup."""


class SceneComplexityProcess:
    """Mean-reverting log-complexity process with scene cuts.

    ``complexity`` is normalized so its long-run mean is 1.0; a value of 2.0
    means the chunk needs about twice the bits of an average chunk at the
    same quality.
    """

    def __init__(self, channel: Channel, rng: np.random.Generator) -> None:
        self.channel = channel
        self.rng = rng
        self._log_c = float(rng.normal(0.0, channel.complexity_sigma))

    @property
    def complexity(self) -> float:
        return float(np.exp(self._log_c))

    def step(self) -> float:
        """Advance one chunk and return the new complexity."""
        ch = self.channel
        # Innovation scaled so the stationary std is complexity_sigma.
        innovation_sigma = ch.complexity_sigma * np.sqrt(
            1.0 - (1.0 - ch.mean_reversion) ** 2
        )
        if self.rng.random() < ch.scene_cut_rate:
            # A cut re-draws complexity from the stationary distribution.
            self._log_c = float(self.rng.normal(0.0, ch.complexity_sigma))
        else:
            self._log_c = float(
                (1.0 - ch.mean_reversion) * self._log_c
                + self.rng.normal(0.0, innovation_sigma)
            )
        return self.complexity


class VideoSource:
    """An endless sequence of per-chunk complexities for one channel.

    Live TV never ends ("we modified Pensieve ... so that Pensieve does not
    expect the video to end"), so the source is an infinite iterator; use
    :meth:`take` when a bounded clip is needed (e.g., the 10-minute NBC clip
    of the emulation experiment, §5.2).
    """

    def __init__(
        self,
        channel: Channel,
        seed: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.channel = channel
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self._process = SceneComplexityProcess(self.channel, self.rng)

    def __iter__(self) -> Iterator[float]:
        while True:
            yield self._process.step()

    def take(self, n_chunks: int) -> List[float]:
        """Return the next ``n_chunks`` complexities."""
        if n_chunks < 0:
            raise ValueError("n_chunks must be non-negative")
        return [self._process.step() for _ in range(n_chunks)]

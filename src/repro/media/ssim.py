"""SSIM helpers.

Puffer reports video quality as SSIM in decibels: ``10 * log10(1 / (1 - s))``
for an SSIM index ``s`` in [0, 1). The paper's evaluation tables use dB
throughout (e.g., Fugu's mean SSIM of 16.9 dB corresponds to an SSIM index of
about 0.9796), so both representations are needed.
"""

from __future__ import annotations

import math

MAX_SSIM_DB = 60.0
"""Cap used for numerically perfect chunks (SSIM index of exactly 1.0)."""


def ssim_index_to_db(index: float) -> float:
    """Convert an SSIM index in [0, 1] to decibels.

    A perfect index of 1.0 maps to :data:`MAX_SSIM_DB` rather than infinity,
    matching how streaming telemetry pipelines clamp the value.
    """
    if not 0.0 <= index <= 1.0:
        raise ValueError(f"SSIM index must lie in [0, 1], got {index}")
    if index >= 1.0 - 1e-12:
        return MAX_SSIM_DB
    return min(10.0 * math.log10(1.0 / (1.0 - index)), MAX_SSIM_DB)


def ssim_db_to_index(db: float) -> float:
    """Convert SSIM in decibels back to an index in [0, 1)."""
    if db < 0.0:
        raise ValueError(f"SSIM dB must be non-negative, got {db}")
    return 1.0 - 10.0 ** (-db / 10.0)

"""Network substrate: link models and a fluid TCP model with ``tcp_info``.

The paper streams over real wide-area TCP (BBR) connections and feeds the
sender-side Linux ``tcp_info`` structure to Fugu's predictor. This package
replaces the real Internet with:

* :class:`LinkModel` subclasses — time-varying bottleneck capacity processes,
  including the heavy-tailed continuous evolution Puffer observes
  (:class:`HeavyTailLink`) and the discrete-state Markov behaviour CS2P
  assumes (:class:`MarkovLink`) so Fig. 2 can be reproduced;
* a per-RTT-round fluid TCP model (:class:`TcpConnection`) with pluggable
  congestion control (:class:`BbrLike`, :class:`CubicLike`) whose chunk
  transmission times exhibit the slow-start ramp and idle-restart effects
  that make transmission time a *non-linear* function of chunk size — the
  effect the Transmission Time Predictor exploits (§4.2);
* :class:`TcpInfo` snapshots matching the fields of the ``video_sent``
  telemetry record (Appendix B): cwnd, in-flight, RTT, min-RTT,
  delivery-rate.
"""

from repro.net.link import (
    ConstantLink,
    HeavyTailLink,
    LinkModel,
    MarkovLink,
    TraceLink,
)
from repro.net.tcp import TcpConnection, TcpInfo
from repro.net.cc import BbrLike, CongestionControl, CubicLike
from repro.net.path import NetworkPath, PathSampler, PopulationModel

__all__ = [
    "LinkModel",
    "ConstantLink",
    "TraceLink",
    "MarkovLink",
    "HeavyTailLink",
    "TcpConnection",
    "TcpInfo",
    "CongestionControl",
    "BbrLike",
    "CubicLike",
    "NetworkPath",
    "PathSampler",
    "PopulationModel",
]

"""Congestion-control models for the fluid TCP connection.

Puffer's primary experiment ran every scheme over BBR (§3.2); a CUBIC-like
loss-based controller is provided as well because part of the study's traffic
was assigned CUBIC (Fig. A1) and because the two produce different
``tcp_info`` signatures for the TTP to learn from.
"""

from repro.net.cc.base import CongestionControl, RoundSample
from repro.net.cc.bbr import BbrLike
from repro.net.cc.cubic import CubicLike

__all__ = ["CongestionControl", "RoundSample", "BbrLike", "CubicLike"]

"""Congestion-control interface.

The fluid TCP model advances in *rounds* of roughly one RTT. After each round
it hands the controller a :class:`RoundSample` describing what was delivered;
the controller updates its congestion window in response. This is the same
shape as the Linux CC module interface (cong_avoid / cong_control callbacks),
reduced to what a chunk-level simulation needs.
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_MSS = 1460
"""Sender maximum segment size in bytes."""

INITIAL_CWND_SEGMENTS = 10
"""Linux default initial window (RFC 6928)."""


@dataclass(frozen=True)
class RoundSample:
    """What happened during one RTT round of transmission.

    Attributes
    ----------
    delivered_bytes:
        Bytes acked during this round.
    duration:
        Wall-clock length of the round in seconds.
    rtt:
        RTT sample observed this round (base propagation + queueing).
    delivery_rate_bps:
        Delivered bytes over the round, as a rate in bits/s.
    link_limited:
        True when the send rate was clamped by bottleneck capacity rather
        than by the window (i.e., a queue formed at the bottleneck).
    loss:
        True when the round experienced a loss event (loss-based CC reacts;
        BBR largely ignores it).
    app_limited:
        True when the round's send was limited by available application
        data rather than by the congestion window (the final, partial round
        of a chunk).  Mirrors Linux's ``rate_sample.is_app_limited``: such
        samples understate the path's capacity and must not lower
        delivery-rate estimates.
    """

    delivered_bytes: float
    duration: float
    rtt: float
    delivery_rate_bps: float
    link_limited: bool
    loss: bool
    app_limited: bool = False


class CongestionControl:
    """Base class owning the congestion window in bytes."""

    name = "base"

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        if mss <= 0:
            raise ValueError("mss must be positive")
        self.mss = mss
        self.cwnd_bytes = float(INITIAL_CWND_SEGMENTS * mss)

    @property
    def cwnd_segments(self) -> float:
        return self.cwnd_bytes / self.mss

    def on_round(self, sample: RoundSample) -> None:
        """Update the window from one round's delivery sample."""
        raise NotImplementedError

    def on_idle(self, idle_time: float, rtt: float) -> None:
        """Slow-start-after-idle: Linux decays the window while the
        application is quiescent, halving it per RTO. This is what makes a
        chunk sent after a long buffer-full pause start slow — a key source
        of the size/time non-linearity the TTP models."""
        if idle_time <= 0:
            return
        rto = max(2.0 * rtt, 0.2)
        if idle_time < rto:
            return
        floor = float(INITIAL_CWND_SEGMENTS * self.mss)
        decay = 0.5 ** (idle_time / rto)
        self.cwnd_bytes = max(floor, self.cwnd_bytes * decay)

    def _clamp(self, max_cwnd_bytes: float = 64 * 1024 * 1024) -> None:
        floor = 2.0 * self.mss
        self.cwnd_bytes = float(min(max(self.cwnd_bytes, floor), max_cwnd_bytes))

"""BBR-like congestion control.

A rate-based model of BBR v1 [Cardwell et al. 2016] at round granularity:

* a windowed-max filter estimates bottleneck bandwidth from delivery-rate
  samples;
* during STARTUP the window grows by 2x per round until bandwidth stops
  growing (three rounds without ~25% growth), as in BBR's full-pipe check;
* in steady state (PROBE_BW) the window is pinned to ``cwnd_gain`` times the
  estimated bandwidth-delay product, which keeps queues small;
* loss is ignored (BBR v1 is not loss-based).
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro import obs
from repro.net.cc.base import CongestionControl, RoundSample, DEFAULT_MSS

_BW_FILTER_ROUNDS = 10
_FULL_PIPE_GROWTH = 1.25
_FULL_PIPE_ROUNDS = 3


class BbrLike(CongestionControl):
    """Round-granularity BBR model."""

    name = "bbr"

    def __init__(self, mss: int = DEFAULT_MSS, cwnd_gain: float = 2.0) -> None:
        super().__init__(mss)
        if cwnd_gain <= 0:
            raise ValueError("cwnd_gain must be positive")
        self.cwnd_gain = cwnd_gain
        self._bw_samples: Deque[float] = deque(maxlen=_BW_FILTER_ROUNDS)
        self._min_rtt = float("inf")
        self._in_startup = True
        self._full_pipe_baseline = 0.0
        self._stale_rounds = 0

    @property
    def bandwidth_estimate_bps(self) -> float:
        """Windowed-max bottleneck bandwidth estimate."""
        return max(self._bw_samples) if self._bw_samples else 0.0

    @property
    def in_startup(self) -> bool:
        return self._in_startup

    def on_round(self, sample: RoundSample) -> None:
        # As in Linux BBR, app-limited rate samples are ignored unless they
        # exceed the current estimate: a partial final round says nothing
        # about the bottleneck (and appending it would also evict a genuine
        # sample from the windowed-max filter).
        if not sample.app_limited or (
            sample.delivery_rate_bps > self.bandwidth_estimate_bps
        ):
            self._bw_samples.append(sample.delivery_rate_bps)
            if obs.ENABLED:
                obs.counter_inc("cc.bbr.bw_samples")
        elif obs.ENABLED:
            obs.counter_inc("cc.bbr.bw_samples_app_limited_skipped")
        self._min_rtt = min(self._min_rtt, sample.rtt)
        bw = self.bandwidth_estimate_bps
        if self._in_startup:
            if bw > self._full_pipe_baseline * _FULL_PIPE_GROWTH:
                self._full_pipe_baseline = bw
                self._stale_rounds = 0
            elif not sample.app_limited:
                # App-limited rounds are no evidence the pipe is full
                # (Linux: bbr_check_full_bw_reached bails on app-limited
                # samples), so they don't age the full-pipe check.
                self._stale_rounds += 1
                if self._stale_rounds >= _FULL_PIPE_ROUNDS:
                    self._in_startup = False
                    if obs.ENABLED:
                        obs.counter_inc("cc.bbr.startup_exits")
            if not sample.app_limited:
                # Congestion-window validation (RFC 7661): the window does
                # not grow on rounds the application could not fill —
                # otherwise streaming small chunks would double cwnd
                # without bound while staying in STARTUP.
                self.cwnd_bytes *= 2.0
        if not self._in_startup and bw > 0 and self._min_rtt < float("inf"):
            bdp_bytes = bw / 8.0 * self._min_rtt
            self.cwnd_bytes = self.cwnd_gain * bdp_bytes
        self._clamp()

    def on_idle(self, idle_time: float, rtt: float) -> None:
        super().on_idle(idle_time, rtt)
        if idle_time <= 0:
            return
        # After a long idle the pipe state is stale: BBR must re-probe, so
        # re-enter startup and age out old bandwidth samples.
        rto = max(2.0 * rtt, 0.2)
        if idle_time >= 4.0 * rto:
            if obs.ENABLED and not self._in_startup:
                obs.counter_inc("cc.bbr.idle_restarts")
            self._in_startup = True
            self._full_pipe_baseline = self.bandwidth_estimate_bps * 0.5
            self._stale_rounds = 0
            # Keep one (discounted) sample as institutional memory.
            if self._bw_samples:
                last = self._bw_samples[-1]
                self._bw_samples.clear()
                self._bw_samples.append(last * 0.7)

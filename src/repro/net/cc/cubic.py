"""CUBIC-like loss-based congestion control.

Round-granularity model of Linux CUBIC (RFC 8312): exponential slow start
until ``ssthresh`` or loss, then window growth following the cubic function
``W(t) = C (t - K)^3 + W_max`` of elapsed time since the last loss, with
multiplicative decrease by ``beta`` on loss events.
"""

from __future__ import annotations

from repro import obs
from repro.net.cc.base import CongestionControl, RoundSample, DEFAULT_MSS

_CUBIC_C = 0.4
"""Cubic scaling constant, in segments/second^3 as in RFC 8312."""

_CUBIC_BETA = 0.7
"""Multiplicative decrease factor."""


class CubicLike(CongestionControl):
    """Round-granularity CUBIC model."""

    name = "cubic"

    def __init__(self, mss: int = DEFAULT_MSS) -> None:
        super().__init__(mss)
        self.ssthresh_bytes = float("inf")
        self._w_max_segments = 0.0
        self._epoch_elapsed = 0.0
        self._k = 0.0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd_bytes < self.ssthresh_bytes

    def _enter_recovery(self) -> None:
        self._w_max_segments = self.cwnd_segments
        self.cwnd_bytes *= _CUBIC_BETA
        # Linux floors ssthresh at two segments (tcp_recalc_ssthresh);
        # without the floor, repeated losses drive ssthresh below the
        # window clamp and the controller can never leave "slow start".
        self.ssthresh_bytes = max(self.cwnd_bytes, 2.0 * self.mss)
        self._epoch_elapsed = 0.0
        self._k = (self._w_max_segments * (1.0 - _CUBIC_BETA) / _CUBIC_C) ** (
            1.0 / 3.0
        )

    def on_round(self, sample: RoundSample) -> None:
        if sample.loss:
            if obs.ENABLED:
                obs.counter_inc("cc.cubic.loss_events")
            self._enter_recovery()
            self._clamp()
            return
        if sample.app_limited:
            # Congestion-window validation (RFC 7661), as Linux applies to
            # CUBIC via tcp_cwnd_validate: a round whose send was capped by
            # available application data — the short final round of a chunk
            # — says nothing about the path, so it must not grow the window.
            # Without this, streaming small chunks would double cwnd every
            # app-limited slow-start round without ever filling the pipe.
            if obs.ENABLED:
                obs.counter_inc("cc.cubic.app_limited_skipped")
            return
        if self.in_slow_start:
            self.cwnd_bytes *= 2.0
            if self.cwnd_bytes >= self.ssthresh_bytes:
                # Exiting slow start without loss: start a cubic epoch here.
                self._w_max_segments = self.cwnd_segments
                self._epoch_elapsed = 0.0
                self._k = 0.0
                if obs.ENABLED:
                    obs.counter_inc("cc.cubic.slow_start_exits")
        else:
            self._epoch_elapsed += sample.duration
            target_segments = (
                _CUBIC_C * (self._epoch_elapsed - self._k) ** 3
                + self._w_max_segments
            )
            # Growth only; the cubic function dips below W_max before K.
            if target_segments * self.mss > self.cwnd_bytes:
                self.cwnd_bytes = target_segments * self.mss
            else:
                # TCP-friendly region: at least Reno-like linear growth.
                self.cwnd_bytes += self.mss * max(
                    sample.duration / max(sample.rtt, 1e-3), 0.0
                )
        self._clamp()

    def on_idle(self, idle_time: float, rtt: float) -> None:
        super().on_idle(idle_time, rtt)
        if idle_time > 0:
            rto = max(2.0 * rtt, 0.2)
            if idle_time >= rto:
                # Restarting after idle begins a fresh cubic epoch.
                self._epoch_elapsed = 0.0

"""Bottleneck link models.

A link model is a capacity process: ``capacity_at(t)`` returns the bottleneck
rate in bits per second at absolute time ``t``. All stochastic links generate
their capacity lazily, epoch by epoch, from a seeded generator, so a link is
deterministic given its construction arguments and can be queried at
arbitrary (non-decreasing or random-access) times.

Two families matter for the paper:

* :class:`MarkovLink` — the CS2P world view: throughput sits in one of a few
  discrete states and jumps between them (Fig. 2a).
* :class:`HeavyTailLink` — what Puffer actually observes: continuous,
  mean-reverting evolution around a per-session level drawn from a
  heavy-tailed population, with occasional deep fades/outages (Fig. 2b).
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

MIN_CAPACITY = 1_000.0
"""Floor on link capacity (bits/s) so transmissions always terminate."""


def epoch_index(t: float, epoch: float) -> int:
    """Index of the epoch containing time ``t`` under width ``epoch``.

    The naive ``int(t / epoch)`` is wrong exactly at epoch boundaries when
    ``epoch`` is not representable in binary: for ``t = k * epoch`` the
    division ``t / epoch`` can land just below ``k`` (it does so ~6% of the
    time for ``epoch = 0.3``), silently returning the *previous* epoch's
    capacity at the instant a new epoch begins.  Epoch ``i`` owns the
    half-open interval ``[i * epoch, (i + 1) * epoch)``; this helper
    truncates and then corrects by at most one step in either direction so
    the interval rule holds exactly in float arithmetic.
    """
    if t < 0:
        raise ValueError("time must be non-negative")
    i = int(t / epoch)
    if (i + 1) * epoch <= t:
        i += 1
    elif i > 0 and i * epoch > t:
        i -= 1
    return i


def epoch_index_array(times: np.ndarray, epoch: float) -> np.ndarray:
    """Vectorized :func:`epoch_index` (bit-identical for every element)."""
    t = np.asarray(times, dtype=np.float64)
    if t.size and float(t.min()) < 0:
        raise ValueError("time must be non-negative")
    idx = (t / epoch).astype(np.int64)
    idx = np.where((idx + 1) * epoch <= t, idx + 1, idx)
    idx = np.where((idx > 0) & (idx * epoch > t), idx - 1, idx)
    return idx


class LinkModel:
    """Abstract time-varying bottleneck."""

    def capacity_at(self, t: float) -> float:
        """Instantaneous capacity in bits/s at absolute time ``t >= 0``."""
        raise NotImplementedError

    def next_change_after(self, t: float) -> float:
        """Earliest time strictly after ``t`` at which capacity may change.

        Event-driven co-simulation (:mod:`repro.edge.engine`) advances
        fluid flows at constant rates between change points and re-solves
        shares at each one; this is how a link declares its change points.
        The default declares the capacity constant (``inf``) — every
        epoch-based link in this package overrides it; a custom
        continuously-varying subclass should too, or the co-simulation
        will treat its capacity as frozen between flow events.
        """
        if t < 0:
            raise ValueError("time must be non-negative")
        return math.inf

    def capacity_batch(self, times: np.ndarray) -> np.ndarray:
        """Capacities at a 1-D array of times (bit-identical to looping
        :meth:`capacity_at`; subclasses override with vectorized math)."""
        t = np.asarray(times, dtype=np.float64)
        return np.array(
            [self.capacity_at(float(v)) for v in t], dtype=np.float64
        )

    def mean_capacity(self, horizon: float = 300.0, dt: float = 1.0) -> float:
        """Empirical mean capacity over ``[0, horizon)`` (diagnostics)."""
        times = np.arange(0.0, horizon, dt)
        return float(np.mean([self.capacity_at(t) for t in times]))

    def sample_epochs(self, n_epochs: int, epoch: float = 6.0) -> List[float]:
        """Capacity sampled every ``epoch`` seconds — the 6-second epochs of
        Fig. 2."""
        return [self.capacity_at(i * epoch) for i in range(n_epochs)]


class ConstantLink(LinkModel):
    """Fixed-rate link, mostly for tests and calibration."""

    def __init__(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = float(rate_bps)

    def capacity_at(self, t: float) -> float:
        if t < 0:
            raise ValueError("time must be non-negative")
        return max(self.rate_bps, MIN_CAPACITY)

    def capacity_batch(self, times: np.ndarray) -> np.ndarray:
        t = np.asarray(times, dtype=np.float64)
        if t.size and float(t.min()) < 0:
            raise ValueError("time must be non-negative")
        return np.full(t.shape, max(self.rate_bps, MIN_CAPACITY))


class TraceLink(LinkModel):
    """Piecewise-constant capacity from a throughput trace.

    ``rates_bps[i]`` holds over ``[i * epoch, (i + 1) * epoch)``. The trace
    loops by default, matching how mahimahi replays packet-time traces in
    the emulation experiments (§5.2).
    """

    def __init__(
        self, rates_bps: Sequence[float], epoch: float = 1.0, loop: bool = True
    ) -> None:
        if not rates_bps:
            raise ValueError("trace must contain at least one epoch")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        self.rates_bps = [max(float(r), MIN_CAPACITY) for r in rates_bps]
        self.epoch = epoch
        self.loop = loop

    @property
    def duration(self) -> float:
        return len(self.rates_bps) * self.epoch

    def next_change_after(self, t: float) -> float:
        if t < 0:
            raise ValueError("time must be non-negative")
        if not self.loop and t >= self.duration:
            return math.inf  # holds its last rate forever
        return (epoch_index(t, self.epoch) + 1) * self.epoch

    def capacity_at(self, t: float) -> float:
        if t < 0:
            raise ValueError("time must be non-negative")
        index = epoch_index(t, self.epoch)
        if self.loop:
            index %= len(self.rates_bps)
        else:
            # Past the end of a non-looping trace the link holds its last
            # recorded rate (mahimahi would stall; holding keeps sessions
            # terminating and is the documented contract).
            index = min(index, len(self.rates_bps) - 1)
        return self.rates_bps[index]

    def capacity_batch(self, times: np.ndarray) -> np.ndarray:
        idx = epoch_index_array(times, self.epoch)
        n = len(self.rates_bps)
        if self.loop:
            idx = idx % n
        else:
            idx = np.minimum(idx, n - 1)
        return np.asarray(self.rates_bps, dtype=np.float64)[idx]


class _LazyEpochLink(LinkModel):
    """Base for stochastic links that realize capacity one epoch at a time."""

    def __init__(self, epoch: float, seed: "int | tuple") -> None:
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        self.epoch = epoch
        self.rng = np.random.default_rng(seed)
        self._realized: List[float] = []

    def next_change_after(self, t: float) -> float:
        if t < 0:
            raise ValueError("time must be non-negative")
        return (epoch_index(t, self.epoch) + 1) * self.epoch

    def _next_epoch_capacity(self) -> float:
        raise NotImplementedError

    def realize_through(self, index: int) -> None:
        """Materialize epochs up to and including ``index``.

        Realizing ahead is unobservable: the per-epoch generator is consumed
        in the same order regardless of when epochs are materialized, so a
        batch caller may prefetch a whole horizon at once.
        """
        while len(self._realized) <= index:
            self._realized.append(max(self._next_epoch_capacity(), MIN_CAPACITY))

    def capacity_at(self, t: float) -> float:
        if t < 0:
            raise ValueError("time must be non-negative")
        index = epoch_index(t, self.epoch)
        self.realize_through(index)
        return self._realized[index]

    def capacity_batch(self, times: np.ndarray) -> np.ndarray:
        idx = epoch_index_array(times, self.epoch)
        if idx.size:
            self.realize_through(int(idx.max()))
        return np.asarray(self._realized, dtype=np.float64)[idx]


class MarkovLink(_LazyEpochLink):
    """CS2P-style link: a small set of discrete throughput states with
    geometric dwell times (Fig. 2a).

    Parameters
    ----------
    states_bps:
        The discrete throughput levels.
    switch_probability:
        Per-epoch probability of jumping to a different state.
    jitter_sigma:
        Small relative noise within a state (CS2P's states are bands, not
        exact constants).
    """

    def __init__(
        self,
        states_bps: Sequence[float],
        switch_probability: float = 0.05,
        jitter_sigma: float = 0.02,
        epoch: float = 1.0,
        seed: "int | tuple" = 0,
    ) -> None:
        super().__init__(epoch, seed)
        if not states_bps:
            raise ValueError("need at least one state")
        if not 0.0 <= switch_probability <= 1.0:
            raise ValueError("switch_probability must lie in [0, 1]")
        self.states_bps = [float(s) for s in states_bps]
        self.switch_probability = switch_probability
        self.jitter_sigma = jitter_sigma
        self._state = int(self.rng.integers(len(self.states_bps)))

    def _next_epoch_capacity(self) -> float:
        if len(self.states_bps) > 1 and self.rng.random() < self.switch_probability:
            choices = [
                i for i in range(len(self.states_bps)) if i != self._state
            ]
            self._state = int(self.rng.choice(choices))
        base = self.states_bps[self._state]
        return base * float(np.exp(self.rng.normal(0.0, self.jitter_sigma)))


class HeavyTailLink(_LazyEpochLink):
    """Puffer-style link: continuous mean-reverting evolution with deep fades.

    Log-capacity follows an Ornstein–Uhlenbeck process around a per-session
    base level; independently, the link occasionally enters a multi-epoch
    *fade* during which capacity collapses by 1–2 orders of magnitude. Fades
    are what make rebuffering a rare-but-heavy-tailed phenomenon: only ~3% of
    Puffer streams stall at all, but those that do can stall badly (§3.4).

    Parameters
    ----------
    base_bps:
        Session-level mean capacity.
    sigma:
        Stationary std of log-capacity fluctuations.
    reversion:
        Per-epoch mean-reversion rate in (0, 1].
    fade_rate:
        Per-epoch probability of entering a fade.
    fade_depth_log:
        Mean of the (exponential) log-attenuation during fades; 2.3 ≈ 10×.
    fade_duration_epochs:
        Mean geometric duration of a fade, in epochs.
    fade_floor_median_bps / fade_floor_sigma:
        Fades bottom out at a per-fade residual capacity drawn log-normally
        around the median — a congested link rarely delivers literally
        nothing, so the lowest ladder rung usually remains (barely)
        streamable and recovery behaviour differentiates the schemes.
    """

    def __init__(
        self,
        base_bps: float,
        sigma: float = 0.35,
        reversion: float = 0.12,
        fade_rate: float = 0.004,
        fade_depth_log: float = 2.3,
        fade_duration_epochs: float = 8.0,
        fade_floor_median_bps: float = 3e5,
        fade_floor_sigma: float = 0.8,
        fade_onset_epochs: int = 3,
        epoch: float = 1.0,
        seed: "int | tuple" = 0,
    ) -> None:
        super().__init__(epoch, seed)
        if base_bps <= 0:
            raise ValueError("base capacity must be positive")
        if not 0.0 < reversion <= 1.0:
            raise ValueError("reversion must lie in (0, 1]")
        if not 0.0 <= fade_rate <= 1.0:
            raise ValueError("fade_rate must lie in [0, 1]")
        if fade_duration_epochs < 1.0:
            raise ValueError("fade duration must be at least one epoch")
        self.base_bps = float(base_bps)
        self.sigma = sigma
        self.reversion = reversion
        self.fade_rate = fade_rate
        self.fade_depth_log = fade_depth_log
        self.fade_duration_epochs = fade_duration_epochs
        self.fade_floor_median_bps = fade_floor_median_bps
        self.fade_floor_sigma = fade_floor_sigma
        self.fade_onset_epochs = int(fade_onset_epochs)
        self._log_dev = float(self.rng.normal(0.0, sigma))
        self._fade_schedule: List[float] = []
        self._fade_floor_bps = 0.0

    def _start_fade(self) -> None:
        """Schedule a fade: a gradual onset ramp, the deep phase, recovery.

        Real congestion events have precursors — queues build and delivery
        rates sag before throughput collapses — which is what lets
        congestion-aware predictors (Fugu's TCP statistics) react a chunk
        or two before buffer-occupancy signals do.
        """
        depth = float(self.rng.exponential(self.fade_depth_log))
        attenuation = float(np.exp(-max(depth, 0.7)))
        self._fade_floor_bps = float(
            self.rng.lognormal(
                np.log(self.fade_floor_median_bps), self.fade_floor_sigma
            )
        )
        deep_epochs = 1 + int(self.rng.geometric(1.0 / self.fade_duration_epochs))
        schedule: List[float] = []
        for step in range(1, self.fade_onset_epochs + 1):
            schedule.append(attenuation ** (step / (self.fade_onset_epochs + 1)))
        schedule.extend([attenuation] * deep_epochs)
        # Recovery is quicker than onset (congestion clears abruptly).
        schedule.append(float(np.sqrt(attenuation)))
        self._fade_schedule = schedule

    def _next_epoch_capacity(self) -> float:
        innovation_sigma = self.sigma * np.sqrt(1.0 - (1.0 - self.reversion) ** 2)
        self._log_dev = float(
            (1.0 - self.reversion) * self._log_dev
            + self.rng.normal(0.0, innovation_sigma)
        )
        if self._fade_schedule:
            attenuation = self._fade_schedule.pop(0)
        else:
            attenuation = 1.0
            if self.rng.random() < self.fade_rate:
                self._start_fade()
        capacity = self.base_bps * float(np.exp(self._log_dev)) * attenuation
        if attenuation < 1.0:
            capacity = max(capacity, min(self._fade_floor_bps, self.base_bps))
        return capacity

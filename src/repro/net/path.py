"""Network paths and the client-population model.

Puffer's clients connect over tens of thousands of distinct wide-area paths.
:class:`PopulationModel` captures the population-level facts the paper's
statistics depend on:

* per-session mean throughput is heavy-tailed (log-normal across sessions),
  calibrated so that "slow" paths (mean delivery rate below 6 Mbit/s, the
  Fig. 8 cut) account for roughly 16% of viewing time;
* RTT is negatively correlated with throughput (cellular and long paths are
  both slower and farther), which is what lets Fugu bootstrap cold-start
  decisions from the handshake RTT (Fig. 9);
* within a session, throughput evolves as the heavy-tailed continuous
  process of :class:`repro.net.link.HeavyTailLink` (Fig. 2b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.net.cc.base import CongestionControl
from repro.net.cc.bbr import BbrLike
from repro.net.cc.cubic import CubicLike
from repro.net.link import HeavyTailLink, LinkModel
from repro.net.tcp import TcpConnection

SLOW_PATH_THRESHOLD_BPS = 6e6
"""Fig. 8's definition of a "slow" network path."""


@dataclass
class NetworkPath:
    """One client's path: a capacity process plus propagation delay."""

    link: LinkModel
    base_rtt: float
    cc_name: str = "bbr"

    def __post_init__(self) -> None:
        if self.base_rtt <= 0:
            raise ValueError("base RTT must be positive")
        if self.cc_name not in ("bbr", "cubic"):
            raise ValueError(f"unknown congestion control {self.cc_name!r}")

    def make_cc(self) -> CongestionControl:
        if self.cc_name == "bbr":
            return BbrLike()
        return CubicLike()

    def connect(self, seed: "int | tuple" = 0) -> TcpConnection:
        """Open a fresh TCP connection over this path.

        ``seed`` feeds the connection's loss process; any value accepted by
        :func:`numpy.random.default_rng` works (the trial harness passes an
        entropy tuple folding the trial seed and session id together).
        """
        return TcpConnection(
            self.link,
            self.base_rtt,
            cc=self.make_cc(),
            loss_rng=np.random.default_rng(seed),
        )


@dataclass
class PopulationModel:
    """Distribution over client paths.

    Parameters
    ----------
    median_throughput_bps:
        Median of the per-session mean-throughput distribution.
    log_sigma:
        Std of log-throughput across sessions. The default ≈1.0 puts ~16%
        of sessions below 6 Mbit/s when the median is 16 Mbit/s.
    median_rtt:
        Median propagation RTT across sessions.
    rtt_log_sigma:
        Residual spread of log-RTT.
    rtt_throughput_exponent:
        Strength of the negative RTT/throughput correlation:
        ``rtt ∝ (median_tput / tput) ** exponent``.
    cubic_fraction:
        Fraction of sessions served over the CUBIC daemon (Fig. A1 shows a
        minority of streams were assigned CUBIC; the primary analysis is
        BBR-only, so the default is 0).
    """

    median_throughput_bps: float = 16e6
    log_sigma: float = 1.0
    median_rtt: float = 0.045
    rtt_log_sigma: float = 0.45
    rtt_throughput_exponent: float = 0.25
    cubic_fraction: float = 0.0
    link_sigma: float = 0.35
    fade_rate: float = 0.004

    def __post_init__(self) -> None:
        if self.median_throughput_bps <= 0 or self.median_rtt <= 0:
            raise ValueError("medians must be positive")
        if not 0.0 <= self.cubic_fraction <= 1.0:
            raise ValueError("cubic_fraction must lie in [0, 1]")

    def sample_path(self, rng: np.random.Generator, seed: int = 0) -> NetworkPath:
        """Draw one client path."""
        base_bps = float(
            self.median_throughput_bps
            * np.exp(rng.normal(0.0, self.log_sigma))
        )
        base_bps = float(np.clip(base_bps, 1e5, 1e9))
        ratio = self.median_throughput_bps / base_bps
        rtt = float(
            self.median_rtt
            * ratio**self.rtt_throughput_exponent
            * np.exp(rng.normal(0.0, self.rtt_log_sigma))
        )
        rtt = float(np.clip(rtt, 0.005, 0.8))
        link = HeavyTailLink(
            base_bps=base_bps,
            sigma=self.link_sigma,
            fade_rate=self.fade_rate,
            seed=int(rng.integers(2**31)) + seed,
        )
        cc_name = "cubic" if rng.random() < self.cubic_fraction else "bbr"
        return NetworkPath(link=link, base_rtt=rtt, cc_name=cc_name)


class PathSampler:
    """Seeded stream of paths drawn from a :class:`PopulationModel`."""

    def __init__(
        self,
        population: Optional[PopulationModel] = None,
        seed: int = 0,
        path_factory: Optional[Callable[[np.random.Generator], NetworkPath]] = None,
    ) -> None:
        self.population = population if population is not None else PopulationModel()
        self.rng = np.random.default_rng(seed)
        self._factory = path_factory
        self._count = 0

    def next_path(self) -> NetworkPath:
        self._count += 1
        if self._factory is not None:
            return self._factory(self.rng)
        return self.population.sample_path(self.rng, seed=self._count)

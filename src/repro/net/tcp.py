"""Fluid TCP connection model.

:class:`TcpConnection` transmits video chunks over a :class:`LinkModel` at
RTT-round granularity and maintains the sender-side state that Linux exposes
as ``tcp_info`` — the statistics Fugu's TTP consumes (§4.2) and Puffer logs
in every ``video_sent`` record (Appendix B).

The model deliberately reproduces the effects that make *transmission time a
non-linear function of chunk size*:

* **slow-start ramp** — a fresh or idle-restarted window takes several RTTs
  of exponential growth to fill the pipe, so small chunks observe a lower
  effective throughput than large ones;
* **idle restart** — when the client's playback buffer is full the server
  pauses, the kernel decays the window, and the next chunk ramps up again;
* **RTT quantization** — a chunk smaller than one window still costs ~1 RTT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import obs
from repro.net.cc.base import CongestionControl, RoundSample, DEFAULT_MSS
from repro.net.cc.bbr import BbrLike
from repro.net.link import LinkModel

_MAX_ROUNDS_PER_CHUNK = 100_000
_SRTT_GAIN = 0.125  # RFC 6298 smoothing
_QUEUE_LOSS_THRESHOLD = 1.5  # queue > 1.5 BDP-equivalents risks drops


@dataclass(frozen=True)
class TcpInfo:
    """Snapshot of sender-side TCP statistics (subset of Linux ``tcp_info``).

    Field names follow the open-data description in Appendix B.
    """

    cwnd: float
    """Congestion window in segments (``tcpi_snd_cwnd``)."""

    in_flight: float
    """Unacknowledged segments in flight."""

    min_rtt: float
    """Minimum observed RTT in seconds (``tcpi_min_rtt``)."""

    rtt: float
    """Smoothed RTT estimate in seconds (``tcpi_rtt``)."""

    delivery_rate: float
    """Most recent delivery-rate estimate in bits/s
    (``tcpi_delivery_rate``)."""


@dataclass(frozen=True)
class TransmissionResult:
    """Outcome of sending one chunk."""

    transmission_time: float
    """Seconds from first byte sent to last byte acknowledged."""

    info_at_send: TcpInfo
    """The ``tcp_info`` snapshot taken when the send began — what the
    ``video_sent`` record logs and what the TTP sees."""

    rounds: int
    """Number of RTT rounds the transfer took."""


class TcpConnection:
    """A long-lived connection carrying one video session's chunks.

    Parameters
    ----------
    link:
        Bottleneck capacity process.
    base_rtt:
        Two-way propagation delay in seconds (no queueing).
    cc:
        Congestion controller; defaults to a fresh :class:`BbrLike`, matching
        the primary experiment (§3.2).
    loss_rng:
        Generator for stochastic loss events (used by loss-based CC).
    """

    def __init__(
        self,
        link: LinkModel,
        base_rtt: float,
        cc: Optional[CongestionControl] = None,
        mss: int = DEFAULT_MSS,
        loss_rng: Optional[np.random.Generator] = None,
    ) -> None:
        if base_rtt <= 0:
            raise ValueError("base RTT must be positive")
        self.link = link
        self.base_rtt = float(base_rtt)
        self.cc = cc if cc is not None else BbrLike(mss=mss)
        self.mss = mss
        self.loss_rng = loss_rng if loss_rng is not None else np.random.default_rng(0)
        self.srtt = self.base_rtt
        self.min_rtt = self.base_rtt
        self.delivery_rate_bps = 0.0
        self._in_flight_bytes = 0.0
        self._last_activity_end = 0.0
        self._total_bytes_sent = 0.0
        self._queue_bytes = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def tcp_info(self) -> TcpInfo:
        """Current sender statistics (the ``video_sent`` fields)."""
        return TcpInfo(
            cwnd=self.cc.cwnd_bytes / self.mss,
            in_flight=self._in_flight_bytes / self.mss,
            min_rtt=self.min_rtt,
            rtt=self.srtt,
            delivery_rate=self.delivery_rate_bps,
        )

    @property
    def total_bytes_sent(self) -> float:
        return self._total_bytes_sent

    @property
    def busy_until(self) -> float:
        """Absolute time at which the last transmission completes. A new
        transmit may not start earlier (chunks are serialized in order on
        the one connection)."""
        return self._last_activity_end

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _handle_idle(self, at_time: float) -> None:
        idle = at_time - self._last_activity_end
        if idle <= 0:
            return
        if obs.ENABLED:
            obs.counter_inc("tcp.idle_gaps")
            obs.observe("tcp.idle_s", idle, spec=obs.TIME_SPEC)
        self.cc.on_idle(idle, self.srtt)
        # In-flight data drains within an RTT of going quiet.
        self._in_flight_bytes *= float(np.exp(-idle / max(self.srtt, 1e-3)))
        if self._in_flight_bytes < self.mss:
            self._in_flight_bytes = 0.0
        self._queue_bytes *= float(np.exp(-idle / max(self.srtt, 1e-3)))

    def transmit(self, size_bytes: float, at_time: float) -> TransmissionResult:
        """Send ``size_bytes`` starting at absolute time ``at_time``.

        ``at_time`` must not precede the end of the previous transmission
        (the server sends chunks back to back on one connection).
        """
        if size_bytes <= 0:
            raise ValueError("chunk size must be positive")
        if at_time < self._last_activity_end - 1e-9:
            raise ValueError(
                "transmission requested before previous one finished "
                f"({at_time:.3f} < {self._last_activity_end:.3f})"
            )
        self._handle_idle(at_time)
        info_at_send = self.tcp_info()

        remaining = float(size_bytes)
        elapsed = 0.0
        rounds = 0
        while remaining > 0:
            rounds += 1
            if rounds > _MAX_ROUNDS_PER_CHUNK:
                raise RuntimeError("transmission did not terminate")
            capacity_bps = self.link.capacity_at(at_time + elapsed)
            capacity_Bps = capacity_bps / 8.0
            window = min(self.cc.cwnd_bytes, remaining)
            # App-limited round (Linux `app_limited`): the send was capped
            # by remaining application data, not the congestion window, so
            # the delivery-rate sample understates what the path can carry.
            app_limited = remaining < self.cc.cwnd_bytes
            drain_time = window / capacity_Bps
            # Queueing delay from data the bottleneck hasn't drained yet.
            queue_delay = self._queue_bytes / capacity_Bps
            rtt_sample = self.base_rtt + queue_delay
            link_limited = drain_time > rtt_sample
            duration = max(rtt_sample, drain_time)
            if link_limited:
                # The excess of window over one BDP sits in the queue.
                bdp = capacity_Bps * self.base_rtt
                self._queue_bytes = max(window - bdp, 0.0)
            else:
                self._queue_bytes = 0.0
            loss = False
            if link_limited:
                bdp = max(capacity_Bps * self.base_rtt, self.mss)
                if self._queue_bytes > _QUEUE_LOSS_THRESHOLD * bdp:
                    overflow = self._queue_bytes / bdp - _QUEUE_LOSS_THRESHOLD
                    loss = bool(self.loss_rng.random() < min(0.8, 0.3 * overflow))
            delivery_rate = window * 8.0 / duration
            sample = RoundSample(
                delivered_bytes=window,
                duration=duration,
                rtt=rtt_sample,
                delivery_rate_bps=delivery_rate,
                link_limited=link_limited,
                loss=loss,
                app_limited=app_limited,
            )
            self.cc.on_round(sample)
            if obs.ENABLED:
                # Per-round accounting: the counters Appendix B's tcp_info
                # telemetry cannot expose (it snapshots state, not flux).
                obs.counter_inc("tcp.rounds")
                if app_limited:
                    obs.counter_inc("tcp.rounds_app_limited")
                if link_limited:
                    obs.counter_inc("tcp.rounds_link_limited")
                if loss:
                    obs.counter_inc("tcp.loss_events")
                obs.observe(
                    "tcp.round_delivery_rate_bps",
                    delivery_rate,
                    spec=obs.RATE_SPEC,
                )
            self.srtt = (1.0 - _SRTT_GAIN) * self.srtt + _SRTT_GAIN * rtt_sample
            self.min_rtt = min(self.min_rtt, rtt_sample)
            # Linux semantics: app-limited samples may only *raise* the
            # estimate — a short final round must not make the TTP's
            # `delivery_rate` feature claim the path got slower.
            if not app_limited or delivery_rate > self.delivery_rate_bps:
                self.delivery_rate_bps = delivery_rate
            self._in_flight_bytes = window
            remaining -= window
            elapsed += duration

        self._total_bytes_sent += size_bytes
        self._last_activity_end = at_time + elapsed
        if obs.ENABLED:
            obs.counter_inc("tcp.transmissions")
            obs.counter_inc("tcp.bytes_sent", float(size_bytes))
            obs.observe("tcp.transmission_s", elapsed, spec=obs.TIME_SPEC)
            obs.observe(
                "tcp.chunk_size_bytes", float(size_bytes), spec=obs.SIZE_SPEC
            )
        return TransmissionResult(
            transmission_time=elapsed, info_at_send=info_at_send, rounds=rounds
        )

"""repro.obs — zero-dependency observability for the simulator.

Three pieces, all no-op-cheap when disabled:

* :class:`MetricsRegistry` — process-local counters, gauges, and histograms
  with **fixed log-spaced bins**, so shard registries merge exactly
  (:mod:`repro.obs.registry`);
* :class:`EventTracer` — typed, simulation-timestamped events in bounded
  ring buffers (:mod:`repro.obs.tracing`);
* ``@timed`` / ``span()`` — wall-clock profiling hooks whose output is
  tagged nondeterministic and quarantined from the bit-identical dump.

Instrumented modules use the module-level helpers behind a single guard::

    from repro import obs
    ...
    if obs.ENABLED:
        obs.counter_inc("tcp.rounds")

``obs.ENABLED`` is a plain module attribute: when observability is off (the
default) an instrumented hot path pays one attribute load and one branch —
nothing else.  The guard is maintained by :func:`enable` / :func:`disable` /
:func:`activate`, which also manage the *active context* the helpers write
into.

Scoping model
-------------
There is one active :class:`ObsContext` per process at a time.  The trial
harness activates a fresh context around every session
(:func:`repro.experiment.harness.run_session`), ships it back on the
session's shard, and merges shards in session-id order — which is what makes
the merged metrics bit-identical between the serial loop and the process
pool.  Outside a trial, :func:`enable` installs a process-global context
(also what ``REPRO_OBS=1`` does at import time) so ad-hoc simulations can be
inspected.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from functools import wraps
from typing import Any, Callable, Iterator, Optional, TypeVar, Union, cast

from repro.obs.context import (
    ObsContext,
    SCHEMA_VERSION,
    format_summary,
    merge_contexts,
)
from repro.obs.registry import (
    RATE_SPEC,
    SIZE_SPEC,
    TIME_SPEC,
    Histogram,
    HistogramSpec,
    MetricsRegistry,
)
from repro.obs.tracing import (
    DEFAULT_CAPACITY,
    MERGED_CAPACITY,
    EventTracer,
    TraceEvent,
)

__all__ = [
    "ENABLED",
    "ObsContext",
    "MetricsRegistry",
    "HistogramSpec",
    "Histogram",
    "EventTracer",
    "TraceEvent",
    "TIME_SPEC",
    "SIZE_SPEC",
    "RATE_SPEC",
    "SCHEMA_VERSION",
    "enable",
    "disable",
    "active",
    "activate",
    "counter_inc",
    "gauge_set",
    "observe",
    "emit",
    "span",
    "timed",
    "merge_contexts",
    "format_summary",
]

ENABLED: bool = False
"""Fast-path guard.  Instrumented code checks this before doing anything;
managed by :func:`enable`, :func:`disable`, and :func:`activate`."""

_ACTIVE: Optional[ObsContext] = None


def enable(context: Optional[ObsContext] = None) -> ObsContext:
    """Install ``context`` (or a fresh one) as the process-global active
    context and turn instrumentation on.  Returns the active context."""
    global ENABLED, _ACTIVE
    _ACTIVE = context if context is not None else ObsContext()
    ENABLED = True
    return _ACTIVE


def disable() -> None:
    """Turn instrumentation off and drop the active context."""
    global ENABLED, _ACTIVE
    ENABLED = False
    _ACTIVE = None


def active() -> Optional[ObsContext]:
    """The context instrumentation currently writes into (``None`` = off)."""
    return _ACTIVE


@contextmanager
def activate(context: Optional[ObsContext]) -> Iterator[Optional[ObsContext]]:
    """Scope ``context`` as the active one, restoring the previous state on
    exit.  ``activate(None)`` is a true no-op — whatever was active (a
    process-global context, or nothing) stays in effect — so callers can
    write ``with obs.activate(ctx_or_none):`` unconditionally."""
    global ENABLED, _ACTIVE
    if context is None:
        yield _ACTIVE
        return
    prev_enabled, prev_active = ENABLED, _ACTIVE
    ENABLED, _ACTIVE = True, context
    try:
        yield context
    finally:
        ENABLED, _ACTIVE = prev_enabled, prev_active


# ---------------------------------------------------------------------------
# Recording helpers — the surface instrumented modules call.  Each bails
# immediately when no context is active, so even an unguarded call is cheap;
# hot loops should still guard with ``if obs.ENABLED`` to skip argument
# construction entirely.
# ---------------------------------------------------------------------------
def counter_inc(name: str, amount: float = 1.0) -> None:
    ctx = _ACTIVE
    if ctx is not None:
        ctx.metrics.inc(name, amount)


def gauge_set(name: str, value: float) -> None:
    ctx = _ACTIVE
    if ctx is not None:
        ctx.metrics.set_gauge(name, value)


def observe(
    name: str,
    value: float,
    spec: Optional[HistogramSpec] = None,
    wallclock: bool = False,
) -> None:
    ctx = _ACTIVE
    if ctx is not None:
        ctx.metrics.observe(name, value, spec=spec, wallclock=wallclock)


def emit(kind: str, time: float, **fields: Any) -> None:
    """Emit a trace event at *simulated* time ``time``."""
    ctx = _ACTIVE
    if ctx is not None:
        ctx.tracer.emit(kind, time, **fields)


# ---------------------------------------------------------------------------
# Profiling hooks.  Wall-clock by nature, so everything they record lands in
# ``profile.*`` histograms tagged ``wallclock`` (excluded from deterministic
# dumps).
# ---------------------------------------------------------------------------
class _NullSpan:
    """Shared do-nothing span returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_name", "_ctx", "_start")

    def __init__(self, name: str, ctx: ObsContext) -> None:
        self._name = name
        self._ctx = ctx

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._ctx.metrics.observe(
            f"profile.{self._name}_s", elapsed, spec=TIME_SPEC, wallclock=True
        )


def span(name: str) -> Union["_NullSpan", "_Span"]:
    """Context manager timing a block into the wall-clock histogram
    ``profile.<name>_s``.  Returns a shared null object when observability is
    disabled, so ``with obs.span("x"):`` costs one call + one branch."""
    ctx = _ACTIVE
    if not ENABLED or ctx is None:
        return _NULL_SPAN
    return _Span(name, ctx)


_F = TypeVar("_F", bound=Callable[..., Any])


def timed(name: str) -> Callable[[_F], _F]:
    """Decorator form of :func:`span` — times every call of the wrapped
    function into ``profile.<name>_s`` when observability is enabled."""

    def decorate(fn: _F) -> _F:
        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            ctx = _ACTIVE
            if not ENABLED or ctx is None:
                return fn(*args, **kwargs)
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                ctx.metrics.observe(
                    f"profile.{name}_s",
                    time.perf_counter() - start,
                    spec=TIME_SPEC,
                    wallclock=True,
                )

        return cast(_F, wrapper)

    return decorate


# ``REPRO_OBS=1`` turns observability on for the whole process (CI runs the
# tier-1 suite both ways to prove the instrumentation is behavior-neutral).
if os.environ.get("REPRO_OBS", "") not in ("", "0"):  # pragma: no cover
    enable()

"""The per-shard observability bundle: one registry + one tracer.

A trial hands every session its own :class:`ObsContext`; the engine merges
them back in session-id order, so the merged context is bit-identical
between the serial loop and any worker count (for the deterministic part of
the dump — wall-clock metrics are tagged and excluded, see
:mod:`repro.obs.registry`).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import DEFAULT_CAPACITY, MERGED_CAPACITY, EventTracer

SCHEMA_VERSION = 1
"""Version of the metrics-dump JSON layout.  Bump on breaking changes; the
dump is the contract dashboards and regression tooling build on."""


class ObsContext:
    """Metrics + events for one scope (a session, or a whole merged trial)."""

    __slots__ = ("metrics", "tracer")

    def __init__(self, event_capacity: int = DEFAULT_CAPACITY) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = EventTracer(capacity=event_capacity)

    def merge(self, other: "ObsContext") -> None:
        self.metrics.merge(other.metrics)
        self.tracer.merge(other.tracer)

    def to_dict(self, include_wallclock: bool = True) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "metrics": self.metrics.to_dict(include_wallclock=include_wallclock),
            "events": self.tracer.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ObsContext":
        ctx = cls.__new__(cls)
        ctx.metrics = MetricsRegistry.from_dict(data.get("metrics", {}))
        events = data.get("events")
        ctx.tracer = (
            EventTracer.from_dict(events) if events else EventTracer()
        )
        return ctx


def merge_contexts(
    contexts: Iterable[ObsContext],
    event_capacity: int = MERGED_CAPACITY,
) -> Optional[ObsContext]:
    """Fold shard contexts (already ordered by session id) into one.

    Returns ``None`` for an empty iterable so callers can propagate "no
    observability was collected" unchanged.
    """
    merged: Optional[ObsContext] = None
    for ctx in contexts:
        if merged is None:
            merged = ObsContext(event_capacity=event_capacity)
        merged.merge(ctx)
    return merged


def format_summary(dump: dict, max_events: int = 5) -> str:
    """Human-readable view of a metrics dump (the ``repro obs summary`` CLI).

    Accepts the dict produced by :meth:`ObsContext.to_dict` (or a registry
    dump alone) and renders counters, gauges, histogram quantiles, and the
    tail of the event trace.
    """
    from repro.obs.registry import Histogram

    metrics = dump.get("metrics", dump)
    lines = []
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(k) for k in counters)
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:<{width}}  {shown}")
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(k) for k in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:g}")
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms (count / mean / p50 / p95):")
        width = max(len(k) for k in histograms)
        for name in sorted(histograms):
            hist = Histogram.from_dict(histograms[name])
            lines.append(
                f"  {name:<{width}}  n={hist.count}  mean={hist.mean:.4g}  "
                f"p50={hist.quantile(0.5):.4g}  p95={hist.quantile(0.95):.4g}"
            )
    events = dump.get("events")
    if events is not None:
        records = events.get("records", [])
        lines.append(
            f"events: {len(records)} recorded, {events.get('dropped', 0)} "
            f"dropped (ring capacity {events.get('capacity', '?')})"
        )
        for record in records[-max_events:]:
            extra = ", ".join(
                f"{k}={v}"
                for k, v in sorted(record.items())
                if k not in ("kind", "time")
            )
            lines.append(
                f"  t={record['time']:.3f}  {record['kind']}"
                + (f"  [{extra}]" if extra else "")
            )
    if not lines:
        lines.append("(empty dump)")
    return "\n".join(lines)

"""Process-local metrics registry: counters, gauges, histograms.

Design constraints (they drive every decision here):

* **Zero dependencies.**  The registry is imported by the hottest modules in
  the simulator (``net/tcp.py`` runs it once per RTT round), so it must not
  drag numpy — plain ``math`` and dicts only.

* **Exact shard merging.**  The parallel trial engine gives every session its
  own registry and folds them back in session-id order.  For the merged
  result to be *bit-identical* to the serial loop, merging must be exact:
  histogram bins are **fixed log-spaced** (derived only from the
  :class:`HistogramSpec`, never from the data), so two shards' bins line up
  and merging is integer addition; counters and histogram sums are float
  additions performed in the same (session-id) order on both paths.

* **Wall-clock quarantine.**  Metrics that record wall-clock time (profiling
  spans, per-session wall time) are inherently nondeterministic.  They are
  tagged ``wallclock`` at record time and excluded from the *deterministic*
  dump (``to_dict(include_wallclock=False)``), which is the surface the
  serial-vs-parallel equivalence tests compare and the contract future
  dashboards build on.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Set


@dataclass(frozen=True)
class HistogramSpec:
    """Fixed log-spaced binning: ``n_bins`` bins geometrically spanning
    ``[lo, hi)``, plus an underflow and an overflow bucket.

    Because the bin edges are a pure function of ``(lo, hi, n_bins)``, every
    shard that observes into a histogram of the same name uses identical
    edges and shard merging reduces to adding bin counts.
    """

    lo: float = 1e-6
    hi: float = 1e6
    n_bins: int = 96

    def __post_init__(self) -> None:
        if not (0 < self.lo < self.hi):
            raise ValueError("need 0 < lo < hi")
        if self.n_bins < 1:
            raise ValueError("n_bins must be >= 1")

    def bin_index(self, value: float) -> int:
        """Bin for ``value``: -1 underflow, ``n_bins`` overflow."""
        if value < self.lo:
            return -1
        if value >= self.hi:
            return self.n_bins
        span = math.log(self.hi) - math.log(self.lo)
        idx = int((math.log(value) - math.log(self.lo)) / span * self.n_bins)
        return min(idx, self.n_bins - 1)

    def edges(self) -> List[float]:
        """The ``n_bins + 1`` bin edges (log-spaced)."""
        log_lo, log_hi = math.log(self.lo), math.log(self.hi)
        return [
            math.exp(log_lo + (log_hi - log_lo) * i / self.n_bins)
            for i in range(self.n_bins + 1)
        ]

    def to_dict(self) -> dict:
        return {"lo": self.lo, "hi": self.hi, "n_bins": self.n_bins}

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramSpec":
        return cls(lo=data["lo"], hi=data["hi"], n_bins=data["n_bins"])


# Pre-sized specs for the quantities the simulator instruments.  Sharing
# named specs (rather than ad-hoc ranges) is what keeps histograms mergeable
# across every layer that observes into the same metric.
TIME_SPEC = HistogramSpec(lo=1e-3, hi=1e3, n_bins=60)
"""Durations in seconds: 1 ms .. 1000 s, 10 bins per decade."""

SIZE_SPEC = HistogramSpec(lo=1e2, hi=1e8, n_bins=60)
"""Byte sizes: 100 B .. 100 MB, 10 bins per decade."""

RATE_SPEC = HistogramSpec(lo=1e4, hi=1e10, n_bins=60)
"""Rates in bits/s: 10 kbit/s .. 10 Gbit/s, 10 bins per decade."""


class Histogram:
    """Counts of observations in the fixed log-spaced bins of one spec."""

    __slots__ = ("spec", "counts", "underflow", "overflow", "count", "sum")

    def __init__(self, spec: HistogramSpec = HistogramSpec()) -> None:
        self.spec = spec
        self.counts = [0] * spec.n_bins
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        idx = self.spec.bin_index(value)
        if idx < 0:
            self.underflow += 1
        elif idx >= self.spec.n_bins:
            self.overflow += 1
        else:
            self.counts[idx] += 1
        self.count += 1
        self.sum += value

    def merge(self, other: "Histogram") -> None:
        if other.spec != self.spec:
            raise ValueError(
                f"cannot merge histograms with different specs "
                f"({self.spec} vs {other.spec})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.count += other.count
        self.sum += other.sum

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bin counts (geometric bin center;
        ``lo``/``hi`` for the open under/overflow buckets)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = self.underflow
        if running >= target:
            return self.spec.lo
        edges = self.spec.edges()
        for i, c in enumerate(self.counts):
            running += c
            if running >= target:
                return math.sqrt(edges[i] * edges[i + 1])
        return self.spec.hi

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.sum,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls(HistogramSpec.from_dict(data["spec"]))
        counts = list(data["counts"])
        if len(counts) != hist.spec.n_bins:
            raise ValueError("bin count mismatch in histogram dump")
        hist.counts = counts
        hist.underflow = int(data["underflow"])
        hist.overflow = int(data["overflow"])
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        return hist


class MetricsRegistry:
    """Flat name → metric store for one shard (or one merged trial).

    Names are dotted paths (``tcp.rounds``, ``stream.stall_s``).  A name is
    permanently one kind of metric; observing a counter name as a histogram
    (or vice versa) raises, which catches instrumentation typos early.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._wallclock: Set[str] = set()

    # -- recording ------------------------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        spec: Optional[HistogramSpec] = None,
        wallclock: bool = False,
    ) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(spec if spec is not None else HistogramSpec())
            self.histograms[name] = hist
        elif spec is not None and spec != hist.spec:
            raise ValueError(f"histogram {name!r} already bound to {hist.spec}")
        if wallclock:
            self._wallclock.add(name)
        hist.observe(value)

    def mark_wallclock(self, name: str) -> None:
        """Tag ``name`` as wall-clock (excluded from deterministic dumps)."""
        self._wallclock.add(name)

    # -- merging --------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry.

        Exact for counters/histograms (addition); gauges are last-write-wins
        in merge order — the parallel engine merges shards in session-id
        order, so the result is identical to the serial loop's.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in other.gauges.items():
            self.gauges[name] = value
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = Histogram(hist.spec)
                self.histograms[name] = mine
            mine.merge(hist)
        self._wallclock.update(other._wallclock)

    # -- serialization --------------------------------------------------
    def to_dict(self, include_wallclock: bool = True) -> dict:
        """Canonical dict (keys sorted).  ``include_wallclock=False`` drops
        wall-clock metrics, yielding the deterministic surface that must be
        bit-identical between the serial and parallel engines."""

        def keep(name: str) -> bool:
            return include_wallclock or name not in self._wallclock

        return {
            "counters": {
                k: self.counters[k] for k in sorted(self.counters) if keep(k)
            },
            "gauges": {
                k: self.gauges[k] for k in sorted(self.gauges) if keep(k)
            },
            "histograms": {
                k: self.histograms[k].to_dict()
                for k in sorted(self.histograms)
                if keep(k)
            },
            "wallclock": sorted(
                n for n in self._wallclock if include_wallclock
            ),
        }

    def to_json(self, include_wallclock: bool = True, indent: int = 2) -> str:
        return json.dumps(
            self.to_dict(include_wallclock=include_wallclock),
            sort_keys=True,
            indent=indent,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        reg = cls()
        reg.counters = {k: float(v) for k, v in data.get("counters", {}).items()}
        reg.gauges = {k: float(v) for k, v in data.get("gauges", {}).items()}
        reg.histograms = {
            k: Histogram.from_dict(v)
            for k, v in data.get("histograms", {}).items()
        }
        reg._wallclock = set(data.get("wallclock", []))
        return reg

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

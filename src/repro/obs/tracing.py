"""Structured event tracing with bounded ring buffers.

A :class:`TraceEvent` is a typed, timestamped simulation event — *simulated*
time, not wall-clock, so traces are deterministic and the serial and
parallel trial engines produce bit-identical merged traces.  The buffer is a
ring: a runaway stream cannot grow a shard's memory without bound, and the
number of dropped events is accounted instead of silently lost.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Tuple, Union

FieldValue = Union[int, float, str, bool]

DEFAULT_CAPACITY = 4096
"""Per-session ring capacity (a session emits tens of events, not thousands;
the bound is a memory safety net, not an expected ceiling)."""

MERGED_CAPACITY = 262_144
"""Ring capacity of a merged (whole-trial) tracer."""


@dataclass(frozen=True)
class TraceEvent:
    """One simulation event.

    ``fields`` is a tuple of ``(key, value)`` pairs sorted by key — a
    canonical, hashable, order-deterministic representation (dict iteration
    order would depend on call-site kwargs order).
    """

    kind: str
    time: float
    fields: Tuple[Tuple[str, FieldValue], ...] = ()

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "time": self.time}
        data.update(self.fields)
        return data

    @classmethod
    def make(cls, kind: str, time: float, **fields: FieldValue) -> "TraceEvent":
        return cls(
            kind=kind, time=float(time), fields=tuple(sorted(fields.items()))
        )


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    __slots__ = ("capacity", "dropped", "_events")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, kind: str, time: float, **fields: FieldValue) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent.make(kind, time, **fields))

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def merge(self, other: "EventTracer") -> None:
        """Append ``other``'s events (callers merge shards in session-id
        order, which is what makes the merged trace deterministic)."""
        for event in other._events:
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
        self.dropped += other.dropped

    def __len__(self) -> int:
        return len(self._events)

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "dropped": self.dropped,
            "records": [event.to_dict() for event in self._events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EventTracer":
        tracer = cls(capacity=int(data["capacity"]))
        tracer.dropped = int(data["dropped"])
        for record in data["records"]:
            payload = {
                k: v for k, v in record.items() if k not in ("kind", "time")
            }
            tracer.emit(record["kind"], record["time"], **payload)
        return tracer
